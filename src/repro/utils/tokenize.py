"""Annotation-text tokenizer.

Annotations are free text (comments, article abstracts).  Nebula's signature
maps operate over a positional word sequence, so the tokenizer must:

* preserve word *positions* (the influence range is measured in words);
* keep identifier-like tokens intact (``JW0014`` must not be split);
* strip punctuation that would otherwise glue onto identifiers
  (``JW0014,`` or ``(grpC)``);
* record each token's original surface form for evidence reporting.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterator, List

#: Words too common to ever be an embedded reference on their own.  This is a
#: compact stopword list (the usual English closed-class words); NebulaMeta's
#: lexicon supplements it with domain vocabulary.
STOPWORDS = frozenset(
    """
    a about above after again against all am an and any are as at be because
    been before being below between both but by could did do does doing down
    during each few for from further had has have having he her here hers him
    his how i if in into is it its itself just me more most my no nor not of
    off on once only or other our out over own same she should so some such
    than that the their them then there these they this those through to too
    under until up very was we were what when where which while who whom why
    will with you your
    it's we're don't can't isn't seems seem seemed also may might must shall
    """.split()
)

_TOKEN_RE = re.compile(r"[A-Za-z0-9][A-Za-z0-9_\-./]*")


@dataclass(frozen=True)
class Token:
    """One word of an annotation, with its position and surface form."""

    #: Zero-based word position within the annotation.
    position: int
    #: Surface form as written in the annotation.
    surface: str
    #: Character offset of the surface form in the original text.
    offset: int

    @property
    def word(self) -> str:
        """Normalized form used for matching (case-folded, trimmed)."""
        return normalize_word(self.surface)

    @property
    def cleaned(self) -> str:
        """Surface form with stray punctuation trimmed but case preserved.

        Case-sensitive evidence (syntactic value patterns like
        ``[a-z]{3}[A-Z]``) must see the original casing.
        """
        return self.surface.strip(".-/")


def normalize_word(surface: str) -> str:
    """Normalize a surface form for matching.

    Case is folded and trailing punctuation that survived tokenization
    (dots from sentence ends, hyphens) is stripped.  Identifier-internal
    characters are preserved, so ``G-Actin`` stays intact.

    >>> normalize_word("Gene.")
    'gene'
    >>> normalize_word("JW0014")
    'jw0014'
    """
    return surface.strip(".-/").casefold()


def is_stopword(word: str) -> bool:
    """Return True when ``word`` (already normalized) is a stopword."""
    return word in STOPWORDS


def _iter_matches(text: str) -> Iterator[re.Match]:
    return _TOKEN_RE.finditer(text)


def tokenize(text: str) -> List[Token]:
    """Split annotation ``text`` into positional :class:`Token` objects.

    Tokens keep identifier punctuation (``-``, ``_``, ``.``, ``/``) so
    database identifiers survive intact; pure punctuation is discarded and
    does not consume a word position.

    >>> [t.word for t in tokenize("gene JW0014, of grpC")]
    ['gene', 'jw0014', 'of', 'grpc']
    """
    tokens: List[Token] = []
    for position, match in enumerate(_iter_matches(text)):
        tokens.append(Token(position=position, surface=match.group(), offset=match.start()))
    return tokens
