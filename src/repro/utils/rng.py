"""Deterministic random-number helpers.

Every randomized component of the reproduction (data generation, column
sampling, workload selection) draws from a seeded ``random.Random`` so that
experiments are exactly repeatable run-to-run.
"""

from __future__ import annotations

import random
from typing import Optional


def make_rng(seed: Optional[int], salt: str = "") -> random.Random:
    """Create an independent ``random.Random`` for one component.

    ``salt`` decorrelates streams derived from the same base seed so that,
    e.g., the gene-name generator and the publication-text generator do not
    consume the same underlying sequence.

    >>> make_rng(7, "a").random() == make_rng(7, "a").random()
    True
    >>> make_rng(7, "a").random() == make_rng(7, "b").random()
    False
    """
    if seed is None:
        return random.Random()
    return random.Random(f"{seed}:{salt}")
