"""Safe construction of dynamic SQL fragments.

SQLite cannot bind *identifiers* (table and column names) as ``?``
parameters, so any statement over a user-named table must interpolate the
name into the SQL text.  Every such interpolation in this codebase goes
through :func:`quote_identifier`: it validates the name and renders it as
a double-quoted SQLite identifier with embedded quotes escaped, which
neutralizes injection through crafted schema names.

The project's static analyzer (``repro.analysis``, rule NBL001) enforces
this contract: an f-string reaching ``execute()`` is accepted only when
every interpolated expression is a :func:`quote_identifier` call (or a
registered equivalent) — anything else must use ``?`` placeholders.
"""

from __future__ import annotations

from ..errors import StorageError

#: Hard cap on identifier length; SQLite itself has no practical limit,
#: but a multi-kilobyte "table name" is an attack, not a schema.
MAX_IDENTIFIER_LENGTH = 512


def quote_identifier(name: str) -> str:
    """Render ``name`` as a safely quoted SQLite identifier.

    >>> quote_identifier("Gene")
    '"Gene"'
    >>> quote_identifier('weird"name')
    '"weird""name"'

    Raises :class:`~repro.errors.StorageError` for values no legitimate
    schema object can have: empty strings, NUL bytes, or absurd lengths.
    """
    if not isinstance(name, str):
        raise StorageError(f"SQL identifier must be a string, got {type(name).__name__}")
    if not name:
        raise StorageError("SQL identifier must be non-empty")
    if "\x00" in name:
        raise StorageError("SQL identifier contains a NUL byte")
    if len(name) > MAX_IDENTIFIER_LENGTH:
        raise StorageError(
            f"SQL identifier longer than {MAX_IDENTIFIER_LENGTH} characters"
        )
    return '"' + name.replace('"', '""') + '"'


def quote_qualified(table: str, column: str) -> str:
    """Render a ``table.column`` pair with both parts safely quoted."""
    return f"{quote_identifier(table)}.{quote_identifier(column)}"
