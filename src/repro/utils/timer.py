"""Lightweight timing helpers used by the engine and the benchmarks.

The paper reports *per-phase* execution times (Figure 11a splits query
generation into map generation, context adjustment, and query formation), so
the engine instruments its stages through :class:`PhaseTimer` and surfaces
the per-phase totals on its result objects.

Since the observability subsystem landed, :class:`PhaseTimer` is a thin
adapter over tracer spans: give it a tracer and every ``phase(name)``
block also opens a span, so the Figure 11a phase totals and the trace
tree come from the *same* measurement.  Without a tracer it degrades to
the original stopwatch-only behaviour (and costs nothing extra).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterator, Mapping, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..observability.tracing import TracerLike


@dataclass
class Stopwatch:
    """Accumulating stopwatch measuring wall-clock seconds.

    Safe against the two misuse hazards of the naive implementation:
    ``stop()`` on a never-started watch is a no-op, and re-entrant
    ``start()``/``stop()`` pairs (nested ``phase()`` calls on the same
    name) accumulate the *outermost* interval exactly once — the depth
    counter keeps the watch running until the outermost ``stop()``.
    """

    elapsed: float = 0.0
    _started_at: float = field(default=0.0, repr=False)
    _depth: int = field(default=0, repr=False)

    @property
    def running(self) -> bool:
        return self._depth > 0

    def start(self) -> None:
        if self._depth == 0:
            self._started_at = time.perf_counter()
        self._depth += 1

    def stop(self) -> float:
        if self._depth == 0:
            # Never started (or already stopped): nothing to account.
            return self.elapsed
        self._depth -= 1
        if self._depth == 0:
            self.elapsed += time.perf_counter() - self._started_at
        return self.elapsed

    def reset(self) -> None:
        self.elapsed = 0.0
        self._depth = 0


class PhaseTimer:
    """Named-phase timer; each phase accumulates across repeated entries.

    >>> timer = PhaseTimer()
    >>> with timer.phase("map_generation"):
    ...     pass
    >>> sorted(timer.totals()) == ["map_generation"]
    True

    When constructed with a tracer, each phase also runs inside a span —
    named by ``span_names[name]`` when given, else ``span_prefix + name``
    — so the per-phase totals fold into the enclosing trace.
    """

    def __init__(
        self,
        tracer: Optional["TracerLike"] = None,
        span_prefix: str = "",
        span_names: Optional[Mapping[str, str]] = None,
    ) -> None:
        self._watches: Dict[str, Stopwatch] = {}
        self._tracer = tracer
        self._span_prefix = span_prefix
        self._span_names = dict(span_names or {})

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        watch = self._watches.setdefault(name, Stopwatch())
        span_context = None
        if self._tracer is not None:
            span_name = self._span_names.get(name, self._span_prefix + name)
            span_context = self._tracer.span(span_name)
        watch.start()
        try:
            if span_context is not None:
                with span_context:
                    yield
            else:
                yield
        finally:
            watch.stop()

    def totals(self) -> Dict[str, float]:
        """Snapshot of per-phase elapsed seconds."""
        return {name: watch.elapsed for name, watch in self._watches.items()}

    def total(self) -> float:
        """Sum of all phases."""
        return sum(watch.elapsed for watch in self._watches.values())
