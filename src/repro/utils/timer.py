"""Lightweight timing helpers used by the engine and the benchmarks.

The paper reports *per-phase* execution times (Figure 11a splits query
generation into map generation, context adjustment, and query formation), so
the engine instruments its stages through :class:`PhaseTimer` and surfaces
the per-phase totals on its result objects.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator


@dataclass
class Stopwatch:
    """Accumulating stopwatch measuring wall-clock seconds."""

    elapsed: float = 0.0
    _started_at: float = field(default=0.0, repr=False)
    _running: bool = field(default=False, repr=False)

    def start(self) -> None:
        if self._running:
            return
        self._started_at = time.perf_counter()
        self._running = True

    def stop(self) -> float:
        if self._running:
            self.elapsed += time.perf_counter() - self._started_at
            self._running = False
        return self.elapsed

    def reset(self) -> None:
        self.elapsed = 0.0
        self._running = False


class PhaseTimer:
    """Named-phase timer; each phase accumulates across repeated entries.

    >>> timer = PhaseTimer()
    >>> with timer.phase("map_generation"):
    ...     pass
    >>> sorted(timer.totals()) == ["map_generation"]
    True
    """

    def __init__(self) -> None:
        self._watches: Dict[str, Stopwatch] = {}

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        watch = self._watches.setdefault(name, Stopwatch())
        watch.start()
        try:
            yield
        finally:
            watch.stop()

    def totals(self) -> Dict[str, float]:
        """Snapshot of per-phase elapsed seconds."""
        return {name: watch.elapsed for name, watch in self._watches.items()}

    def total(self) -> float:
        """Sum of all phases."""
        return sum(watch.elapsed for watch in self._watches.values())
