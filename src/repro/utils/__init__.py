"""Small shared utilities: tokenization, timing, and deterministic RNG."""

from .tokenize import Token, tokenize, normalize_word, is_stopword, STOPWORDS
from .timer import Stopwatch, PhaseTimer
from .rng import make_rng

__all__ = [
    "Token",
    "tokenize",
    "normalize_word",
    "is_stopword",
    "STOPWORDS",
    "Stopwatch",
    "PhaseTimer",
    "make_rng",
]
