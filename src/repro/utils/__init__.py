"""Small shared utilities: tokenization, timing, and deterministic RNG."""

from .tokenize import Token, tokenize, normalize_word, is_stopword, STOPWORDS
from .timer import Stopwatch, PhaseTimer
from .rng import make_rng
from .sql import quote_identifier, quote_qualified

__all__ = [
    "quote_identifier",
    "quote_qualified",
    "Token",
    "tokenize",
    "normalize_word",
    "is_stopword",
    "STOPWORDS",
    "Stopwatch",
    "PhaseTimer",
    "make_rng",
]
