"""Shared value types used across subsystems.

These are deliberately tiny, hashable dataclasses: a tuple reference
(``TupleRef``) identifies one row of one table, and a scored tuple carries
the confidence the search pipeline assigned to it.  They live at package
root because the annotation store, the search engine, and Nebula's core all
exchange them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple


@dataclass(frozen=True, order=True)
class TupleRef:
    """A reference to one data tuple: ``(table, rowid)``.

    SQLite rowids are stable per table, so the pair uniquely identifies a
    tuple in the database — a node of the paper's set ``T``.
    """

    table: str
    rowid: int

    def __str__(self) -> str:
        return f"{self.table}#{self.rowid}"


@dataclass(frozen=True)
class CellRef:
    """A reference to one cell (or a whole row when ``column`` is None)."""

    table: str
    rowid: int
    column: Optional[str] = None

    @property
    def tuple_ref(self) -> TupleRef:
        return TupleRef(self.table, self.rowid)

    def __str__(self) -> str:
        suffix = f".{self.column}" if self.column else ""
        return f"{self.table}#{self.rowid}{suffix}"


@dataclass(frozen=True)
class ScoredTuple:
    """A candidate tuple with the pipeline's confidence in it.

    ``provenance`` records which keyword queries produced the tuple — it
    becomes the *evidence* of the verification task built from it.
    """

    ref: TupleRef
    confidence: float
    provenance: Tuple[str, ...] = field(default_factory=tuple)

    def scaled(self, factor: float) -> "ScoredTuple":
        """Return a copy with confidence multiplied by ``factor``."""
        return ScoredTuple(self.ref, self.confidence * factor, self.provenance)

    def rescored(self, confidence: float) -> "ScoredTuple":
        """Return a copy with confidence replaced by ``confidence``."""
        return ScoredTuple(self.ref, confidence, self.provenance)
