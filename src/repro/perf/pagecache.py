"""Bounded LRU page cache for the persistent inverted index.

:class:`PersistentValueIndex <repro.search.persist.PersistentValueIndex>`
keeps the posting lists on disk and materializes them **per token** only
when a lookup touches that token.  :class:`LruPageCache` is the bounded
in-memory layer between the two: token -> decoded page, evicting the
least-recently-used page once ``capacity`` is reached, so a long-running
service's working set of hot tokens stays resident while the full index
can be arbitrarily larger than memory.

Unlike :class:`~repro.perf.cache.AnalysisCache` this cache is *not*
generation-versioned: the index invalidates the affected token's page
eagerly on every incremental write (``add_row``), which is cheaper than
versioning every page when mutations touch exactly one token at a time.

Hit/miss counts feed the process metrics registry
(``nebula_index_page_cache_{hits,misses}_total``) and the instance-local
:class:`~repro.perf.cache.CacheStats`.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Generic, Optional, TypeVar

from ..observability.metrics import MetricsRegistry, get_metrics
from .cache import MISS, CacheStats

K = TypeVar("K")
V = TypeVar("V")


class LruPageCache(Generic[K, V]):
    """A plain bounded LRU map with cache accounting.

    ``capacity <= 0`` disables caching entirely (every :meth:`get`
    misses, :meth:`put` is a no-op) — the index then reads every page
    from the backend, which is what the cold-start benchmark's
    "uncached" mode measures.
    """

    def __init__(
        self,
        capacity: int = 4096,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.capacity = max(int(capacity), 0)
        self.stats = CacheStats()
        self._pages: "OrderedDict[K, V]" = OrderedDict()
        registry = metrics if metrics is not None else get_metrics()
        self._m_hits = registry.counter("nebula_index_page_cache_hits_total")
        self._m_misses = registry.counter("nebula_index_page_cache_misses_total")

    @property
    def enabled(self) -> bool:
        return self.capacity > 0

    def __len__(self) -> int:
        return len(self._pages)

    def __contains__(self, key: K) -> bool:
        return key in self._pages

    # ------------------------------------------------------------------

    def get(self, key: K) -> object:
        """The cached page, or :data:`~repro.perf.cache.MISS`."""
        page = self._pages.get(key, MISS)
        if page is MISS:
            self.stats.misses += 1
            self._m_misses.inc()
            return MISS
        self._pages.move_to_end(key)
        self.stats.hits += 1
        self._m_hits.inc()
        return page

    def put(self, key: K, page: V) -> None:
        if not self.enabled:
            return
        self._pages[key] = page
        self._pages.move_to_end(key)
        while len(self._pages) > self.capacity:
            self._pages.popitem(last=False)
            self.stats.evictions += 1

    def invalidate(self, key: K) -> None:
        """Drop one page (after an incremental write to its token)."""
        if self._pages.pop(key, None) is not None:
            self.stats.invalidations += 1

    def clear(self) -> None:
        self._pages.clear()
