"""Versioned LRU memoization for the analysis hot path.

Per-annotation ingestion repeats the same expensive lookups over and over:
every keyword of every annotation is re-mapped against the schema, the
meta-repository, and the inverted value index, even though neither changes
between annotations.  :class:`AnalysisCache` memoizes those keyword-level
results and stays *correct* under mutation through versioning: every entry
records the **generation counter** of the structure it was derived from
(``InvertedValueIndex.generation``, ``NebulaMeta.generation``), and a
lookup whose stored generation no longer matches the live one is treated
as a miss and dropped — so an ``add_row`` on the index or an
``add_concept`` on the repository invalidates exactly the stale entries,
lazily, with no eager sweep.

Entries are namespaced (``"mapper"``, ``"meta.concepts"``, ...) so one
cache instance can serve several call sites without key collisions, and
bounded by an LRU policy so long-running servers cannot grow without
limit.  Hit/miss/invalidation counts feed both the instance-local
:class:`CacheStats` and the process metrics registry
(``nebula_analysis_cache_{hits,misses,invalidations}_total``).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Hashable, Optional, Tuple

from ..observability.metrics import Counter, MetricsRegistry, get_metrics

#: Sentinel distinguishing "no entry" from a cached falsy value.
MISS: object = object()


@dataclass
class CacheStats:
    """Instance-local cache accounting (also mirrored into metrics)."""

    hits: int = 0
    misses: int = 0
    invalidations: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_ratio(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


class AnalysisCache:
    """Bounded, generation-versioned memo table for analysis results.

    Values stored here must be immutable (tuples of frozen dataclasses);
    callers that hand out lists should copy on the way out.
    """

    def __init__(
        self,
        max_entries: int = 2048,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.max_entries = max(int(max_entries), 0)
        self.stats = CacheStats()
        self._entries: "OrderedDict[Tuple[str, Hashable], Tuple[Hashable, object]]" = (
            OrderedDict()
        )
        registry = metrics if metrics is not None else get_metrics()
        self._m_hits: Counter = registry.counter("nebula_analysis_cache_hits_total")
        self._m_misses: Counter = registry.counter("nebula_analysis_cache_misses_total")
        self._m_invalidations: Counter = registry.counter(
            "nebula_analysis_cache_invalidations_total"
        )

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def enabled(self) -> bool:
        return self.max_entries > 0

    # ------------------------------------------------------------------

    def get(self, namespace: str, key: Hashable, generation: Hashable) -> object:
        """The cached value, or :data:`MISS`.

        A hit requires the entry's recorded generation to equal
        ``generation``; a stale entry is discarded (counted as an
        invalidation *and* a miss) so the caller recomputes against the
        mutated structure.
        """
        if not self.enabled:
            return MISS
        full_key = (namespace, key)
        entry = self._entries.get(full_key)
        if entry is None:
            self.stats.misses += 1
            self._m_misses.inc()
            return MISS
        stored_generation, value = entry
        if stored_generation != generation:
            del self._entries[full_key]
            self.stats.invalidations += 1
            self.stats.misses += 1
            self._m_invalidations.inc()
            self._m_misses.inc()
            return MISS
        self._entries.move_to_end(full_key)
        self.stats.hits += 1
        self._m_hits.inc()
        return value

    def put(
        self, namespace: str, key: Hashable, generation: Hashable, value: object
    ) -> None:
        """Store ``value`` for ``(namespace, key)`` at ``generation``."""
        if not self.enabled:
            return
        full_key = (namespace, key)
        self._entries[full_key] = (generation, value)
        self._entries.move_to_end(full_key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    def clear(self) -> None:
        self._entries.clear()

    def snapshot(self) -> Dict[str, int]:
        """Stats as a plain dict (for reports and the CLI)."""
        return {
            "entries": len(self._entries),
            "hits": self.stats.hits,
            "misses": self.stats.misses,
            "invalidations": self.stats.invalidations,
            "evictions": self.stats.evictions,
        }
