"""Performance infrastructure for high-throughput ingestion.

Three cooperating pieces, all dependency-free:

* :mod:`~repro.perf.cache` — :class:`AnalysisCache`, a generation-
  versioned LRU memo table for keyword-level analysis results (schema
  mappings, meta-repository probes), invalidated lazily when the inverted
  index or the meta repository mutates;
* :mod:`~repro.perf.parallel` — :class:`ParallelSqlExecutor`, a thread
  pool of per-thread read-only SQLite connections for concurrent Stage-2
  statement execution (``NebulaConfig.executor_workers``);
* :mod:`~repro.perf.batch` — :class:`AnnotationRequest`, the input type
  of :meth:`repro.core.nebula.Nebula.insert_annotations`.

See ``docs/performance.md`` for the batch API contract, the cache
invalidation rules, and how to read the new metrics.
"""

from .batch import AnnotationRequest, RequestLike, coerce_request
from .cache import MISS, AnalysisCache, CacheStats
from .pagecache import LruPageCache
from .parallel import ParallelSqlExecutor, database_path

__all__ = [
    "AnalysisCache",
    "AnnotationRequest",
    "CacheStats",
    "LruPageCache",
    "MISS",
    "ParallelSqlExecutor",
    "RequestLike",
    "coerce_request",
    "database_path",
]
