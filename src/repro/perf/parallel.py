"""Parallel Stage-2 SQL execution over per-thread read-only connections.

SQLite serializes access *per connection*, but multiple connections can
read the same database file concurrently.  :class:`ParallelSqlExecutor`
exploits that: a small thread pool where each worker lazily opens its own
``mode=ro`` connection to the engine's database file, so the independent
statements of one shared-execution plan run concurrently while the main
connection's write transaction stays untouched.

Constraints, by construction:

* only available for **file-backed** databases (an in-memory database is
  private to its connection; ``available`` is False and callers stay
  sequential);
* read-only workers never see the main connection's *uncommitted* writes
  — safe for Stage 2, which only reads the user data tables that the
  annotation pipeline never modifies, but the reason spreading-search
  mini databases (uncommitted ``_minidb_*`` tables) must not be executed
  here;
* results are returned **in submission order**, so the answer assembly is
  deterministic regardless of thread scheduling.
"""

from __future__ import annotations

import sqlite3
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import List, Optional, Sequence, Tuple

from ..resilience.retry import RetryPolicy

#: One executed statement's outcome: (rows, wall-clock seconds).
StatementResult = Tuple[List[Tuple[object, ...]], float]


def database_path(connection: sqlite3.Connection) -> Optional[str]:
    """Filesystem path of ``connection``'s main database, or None for
    in-memory / temporary databases."""
    for _seq, name, path in connection.execute("PRAGMA database_list"):
        if name == "main":
            return str(path) if path else None
    return None


class ParallelSqlExecutor:
    """Runs batches of read-only statements across a thread pool."""

    def __init__(
        self,
        connection: sqlite3.Connection,
        workers: int,
        retry: Optional[RetryPolicy] = None,
    ) -> None:
        self.workers = max(int(workers), 0)
        self.retry = retry
        self._path = database_path(connection)
        self._pool: Optional[ThreadPoolExecutor] = None
        self._local = threading.local()
        self._connections: List[sqlite3.Connection] = []
        self._lock = threading.Lock()
        self._closed = False

    @property
    def available(self) -> bool:
        """Whether parallel execution can run at all (>= 2 workers and a
        file-backed database)."""
        return self.workers > 1 and self._path is not None and not self._closed

    # ------------------------------------------------------------------

    def run(self, statements: Sequence[Tuple[str, Sequence[str]]]) -> List[StatementResult]:
        """Execute every ``(sql, params)`` pair, returning per-statement
        ``(rows, elapsed)`` in submission order.

        Raises when unavailable or when any statement fails — callers are
        expected to fall back to sequential execution on error.
        """
        if not self.available:
            raise RuntimeError(
                "parallel execution unavailable (in-memory database, "
                "single worker, or executor closed)"
            )
        pool = self._ensure_pool()
        futures = [pool.submit(self._execute, sql, params) for sql, params in statements]
        return [future.result() for future in futures]

    def close(self) -> None:
        """Shut the pool down and close every worker connection."""
        self._closed = True
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        with self._lock:
            connections, self._connections = self._connections, []
        for connection in connections:
            connection.close()

    def __enter__(self) -> "ParallelSqlExecutor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------

    def _ensure_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.workers, thread_name_prefix="nebula-sql"
            )
        return self._pool

    def _execute(self, sql: str, params: Sequence[str]) -> StatementResult:
        connection = self._thread_connection()

        def run() -> List[Tuple[object, ...]]:
            return connection.execute(sql, params).fetchall()

        started = time.perf_counter()
        rows = self.retry.run(run, sql) if self.retry is not None else run()
        return rows, time.perf_counter() - started

    def _thread_connection(self) -> sqlite3.Connection:
        connection = getattr(self._local, "connection", None)
        if connection is None:
            assert self._path is not None
            uri = Path(self._path).resolve().as_uri() + "?mode=ro"
            # check_same_thread=False so close() can run from the main
            # thread after the pool has drained; each connection is still
            # only *used* by the single worker thread that opened it.
            connection = sqlite3.connect(uri, uri=True, check_same_thread=False)
            self._local.connection = connection
            with self._lock:
                self._connections.append(connection)
        return connection
