"""Parallel Stage-2 SQL execution over per-thread reader connections.

SQLite serializes access *per connection*, but multiple connections can
read the same database concurrently.  :class:`ParallelSqlExecutor`
exploits that: a small thread pool where each worker lazily opens its own
reader connection via the engine's storage backend
(:meth:`repro.storage.StorageBackend.open_reader`), so the independent
statements of one shared-execution plan run concurrently while the main
connection's write transaction stays untouched.  File backends hand out
``mode=ro`` URI connections; the shared-cache memory backend hands out
additional handles onto the same cache.

Constraints, by construction:

* only available when the backend can produce concurrent readers (a
  private ``:memory:`` connection cannot; ``available`` is False and
  callers stay sequential);
* readers never see the main connection's *uncommitted* writes — safe
  for Stage 2, which only reads the user data tables that the
  annotation pipeline never modifies, but the reason spreading-search
  mini databases (uncommitted ``_minidb_*`` tables) must not be executed
  here;
* results are returned **in submission order**, so the answer assembly is
  deterministic regardless of thread scheduling.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import List, Optional, Sequence, Tuple, Union

from ..resilience.retry import RetryPolicy
from ..storage.backends import StorageBackend, as_backend
from ..storage.compat import Connection, database_path

__all__ = ["ParallelSqlExecutor", "StatementResult", "database_path"]

#: One executed statement's outcome: (rows, wall-clock seconds).
StatementResult = Tuple[List[Tuple[object, ...]], float]


class ParallelSqlExecutor:
    """Runs batches of read-only statements across a thread pool."""

    def __init__(
        self,
        source: Union[Connection, StorageBackend],
        workers: int,
        retry: Optional[RetryPolicy] = None,
    ) -> None:
        self.workers = max(int(workers), 0)
        self.retry = retry
        self.backend = as_backend(source)
        #: Whether ``close`` also closes the backend (True only when this
        #: executor created the wrapping adapter itself).
        self._owns_backend = self.backend is not source
        self._pool: Optional[ThreadPoolExecutor] = None
        self._local = threading.local()
        self._connections: List[Connection] = []
        self._lock = threading.Lock()
        self._closed = False

    @property
    def available(self) -> bool:
        """Whether parallel execution can run at all (>= 2 workers and a
        backend that supports concurrent readers)."""
        return (
            self.workers > 1
            and not self._closed
            and self.backend.supports_concurrent_reads
        )

    # ------------------------------------------------------------------

    def run(self, statements: Sequence[Tuple[str, Sequence[str]]]) -> List[StatementResult]:
        """Execute every ``(sql, params)`` pair, returning per-statement
        ``(rows, elapsed)`` in submission order.

        Raises when unavailable or when any statement fails — callers are
        expected to fall back to sequential execution on error.
        """
        if not self.available:
            raise RuntimeError(
                "parallel execution unavailable (no concurrent readers, "
                "single worker, or executor closed)"
            )
        pool = self._ensure_pool()
        futures = [pool.submit(self._execute, sql, params) for sql, params in statements]
        return [future.result() for future in futures]

    def close(self) -> None:
        """Shut the pool down and close every worker connection."""
        self._closed = True
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        with self._lock:
            connections, self._connections = self._connections, []
        for connection in connections:
            connection.close()
        if self._owns_backend:
            self.backend.close()

    def __enter__(self) -> "ParallelSqlExecutor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------

    def _ensure_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.workers, thread_name_prefix="nebula-sql"
            )
        return self._pool

    def _execute(self, sql: str, params: Sequence[str]) -> StatementResult:
        connection = self._thread_connection()

        def run() -> List[Tuple[object, ...]]:
            return connection.execute(sql, params).fetchall()

        started = time.perf_counter()
        rows = self.retry.run(run, sql) if self.retry is not None else run()
        return rows, time.perf_counter() - started

    def _thread_connection(self) -> Connection:
        connection = getattr(self._local, "connection", None)
        if connection is None:
            connection = self.backend.open_reader()
            if connection is None:  # pragma: no cover - guarded by ``available``
                raise RuntimeError("storage backend cannot open reader connections")
            self._local.connection = connection
            with self._lock:
                self._connections.append(connection)
        return connection
