"""Input types of the batched ingestion API.

An :class:`AnnotationRequest` is one item of a
:meth:`repro.core.nebula.Nebula.insert_annotations` batch — exactly the
arguments one :meth:`insert_annotation` call would take, captured as a
value so batches can be built up front, serialized, and replayed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple, Union

from ..types import TupleRef


@dataclass(frozen=True)
class AnnotationRequest:
    """One annotation to ingest: text, manual attachments, author."""

    text: str
    focal: Tuple[TupleRef, ...] = ()
    author: Optional[str] = None

    @classmethod
    def build(
        cls,
        text: str,
        attach_to: Sequence[TupleRef] = (),
        author: Optional[str] = None,
    ) -> "AnnotationRequest":
        return cls(text=text, focal=tuple(attach_to), author=author)


#: What callers may hand to ``insert_annotations``: prepared requests or
#: bare strings (no attachments, no author).
RequestLike = Union[AnnotationRequest, str]


def coerce_request(item: RequestLike) -> AnnotationRequest:
    """Normalize one batch item into an :class:`AnnotationRequest`."""
    if isinstance(item, AnnotationRequest):
        return item
    return AnnotationRequest(text=item)
