"""SARIF 2.1.0 output for nebula-lint.

`SARIF <https://docs.oasis-open.org/sarif/sarif/v2.1.0/sarif-v2.1.0.html>`_
is the interchange format code-scanning UIs ingest (GitHub's security
tab, VS Code's SARIF viewer).  :func:`to_sarif` maps the finding list
onto one ``run``:

* the tool driver advertises every rule from
  :data:`repro.analysis.rules.RULE_DOCS`, so rule metadata renders even
  for rules with zero results;
* each finding becomes a ``result`` with ``ruleId``, a resolved
  ``ruleIndex`` into the driver's rule array, level ``error`` (every
  nebula-lint finding gates CI), the message, one physical location,
  and the baseline fingerprint under ``partialFingerprints`` so
  scanning UIs track findings across commits the same way the baseline
  file does.

The output is deterministic: findings arrive sorted from the engine and
no timestamps or absolute paths are embedded, so the same tree always
produces the same bytes.
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence

from .findings import Finding
from .rules import ALL_RULE_IDS, RULE_DOCS

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def _rules_array() -> List[Dict[str, Any]]:
    return [
        {
            "id": rule_id,
            "name": rule_id,
            "shortDescription": {"text": RULE_DOCS[rule_id]},
            "defaultConfiguration": {"level": "error"},
        }
        for rule_id in ALL_RULE_IDS
    ]


def _result(finding: Finding, rule_index: Dict[str, int]) -> Dict[str, Any]:
    message = finding.message
    if finding.fix_hint:
        message += f" [fix: {finding.fix_hint}]"
    result: Dict[str, Any] = {
        "ruleId": finding.rule_id,
        "ruleIndex": rule_index[finding.rule_id],
        "level": "error",
        "message": {"text": message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": finding.path.replace("\\", "/"),
                    },
                    "region": {
                        "startLine": finding.line,
                        "snippet": {"text": finding.snippet},
                    },
                }
            }
        ],
        "partialFingerprints": {
            "nebulaLintFingerprint/v2": finding.fingerprint,
        },
    }
    return result


def to_sarif(findings: Sequence[Finding]) -> Dict[str, Any]:
    """The findings as one SARIF 2.1.0 log dictionary."""
    rule_index = {rule_id: i for i, rule_id in enumerate(ALL_RULE_IDS)}
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "nebula-lint",
                        "rules": _rules_array(),
                    }
                },
                "results": [_result(f, rule_index) for f in findings],
            }
        ],
    }
