"""Command-line front end for nebula-lint.

Invoked as ``python -m repro.analysis [paths ...]`` or via the main CLI
as ``repro lint``.  Exit codes: 0 — clean (or all findings baselined),
1 — new findings, 2 — usage/configuration error (unknown rule id,
unreadable baseline, unparseable source file).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional, Sequence, TextIO

from .baseline import apply_baseline, load_baseline, write_baseline
from .engine import AnalysisError, analyze_paths
from .findings import Finding
from .rules import ALL_RULE_IDS, RULE_DOCS


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="nebula-lint",
        description=(
            "Project-specific static analysis for the Nebula reproduction: "
            "SQL safety, transaction discipline, paper invariants, span "
            "taxonomy, and resource hygiene."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to analyze (default: the src tree)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit findings as a JSON array instead of human-readable lines",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="ignore any baseline: every finding fails the run",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        help="suppress findings recorded in this baseline file",
    )
    parser.add_argument(
        "--write-baseline",
        metavar="FILE",
        help="write the current findings to FILE as the new baseline and exit 0",
    )
    parser.add_argument(
        "--rules",
        metavar="IDS",
        help=(
            "comma-separated rule ids to run (default: all of "
            + ", ".join(ALL_RULE_IDS)
            + ")"
        ),
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    return parser


def _default_paths() -> List[str]:
    """``src/repro`` relative to the repo the package was imported from."""
    package_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    return [package_root]


def _emit(findings: Sequence[Finding], as_json: bool, out: TextIO) -> None:
    if as_json:
        json.dump([f.to_dict() for f in findings], out, indent=2)
        out.write("\n")
    else:
        for finding in findings:
            out.write(finding.format() + "\n")


def main(
    argv: Optional[Sequence[str]] = None, out: Optional[TextIO] = None
) -> int:
    out = out if out is not None else sys.stdout
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule_id in ALL_RULE_IDS:
            out.write(f"{rule_id}  {RULE_DOCS[rule_id]}\n")
        return 0

    rules: Optional[List[str]] = None
    if args.rules:
        rules = [r.strip() for r in args.rules.split(",") if r.strip()]

    paths = list(args.paths) or _default_paths()
    try:
        findings = analyze_paths(paths, rules=rules)
    except (AnalysisError, ValueError) as exc:
        print(f"nebula-lint: error: {exc}", file=sys.stderr)
        return 2

    if args.write_baseline:
        write_baseline(args.write_baseline, findings)
        out.write(
            f"nebula-lint: wrote baseline with {len(findings)} finding(s) "
            f"to {args.write_baseline}\n"
        )
        return 0

    reported = list(findings)
    baselined = 0
    if args.baseline and not args.strict:
        try:
            baseline = load_baseline(args.baseline)
        except (OSError, ValueError, json.JSONDecodeError) as exc:
            print(f"nebula-lint: error: {exc}", file=sys.stderr)
            return 2
        reported = apply_baseline(findings, baseline)
        baselined = len(findings) - len(reported)

    _emit(reported, args.json, out)
    if not args.json:
        summary = f"nebula-lint: {len(reported)} finding(s)"
        if baselined:
            summary += f" ({baselined} baselined)"
        out.write(summary + "\n")
    return 1 if reported else 0
