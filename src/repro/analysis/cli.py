"""Command-line front end for nebula-lint.

Invoked as ``python -m repro.analysis [paths ...]`` or via the main CLI
as ``repro lint``.  Exit codes: 0 — clean (or all findings baselined),
1 — new findings, 2 — usage/configuration error (unknown rule id,
unreadable baseline, unparseable source file, or the ``--max-seconds``
runtime budget exceeded).

Output formats (``--format``): ``human`` (one line per finding plus a
summary), ``json`` (the historical ``--json`` array, byte-identical to
the old flag), and ``sarif`` (a SARIF 2.1.0 log for code-scanning
upload).  All three are deterministic for a given tree regardless of
``--jobs``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional, Sequence, TextIO

from .baseline import apply_baseline, load_baseline, write_baseline
from .engine import AnalysisError, run_analysis
from .findings import Finding
from .rules import ALL_RULE_IDS, RULE_DOCS
from .sarif import to_sarif

FORMATS = ("human", "json", "sarif")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="nebula-lint",
        description=(
            "Project-specific static analysis for the Nebula reproduction: "
            "SQL safety, transaction discipline, paper invariants, span "
            "taxonomy, resource hygiene, and interprocedural concurrency "
            "rules (lock discipline, thread affinity, blocking under lock, "
            "condition hygiene)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to analyze (default: the src tree)",
    )
    parser.add_argument(
        "--format",
        choices=FORMATS,
        default=None,
        help="output format (default: human)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="alias for --format json (kept for compatibility)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="ignore any baseline: every finding fails the run",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        help="suppress findings recorded in this baseline file",
    )
    parser.add_argument(
        "--write-baseline",
        metavar="FILE",
        help="write the current findings to FILE as the new baseline and exit 0",
    )
    parser.add_argument(
        "--rules",
        metavar="IDS",
        help=(
            "comma-separated rule ids to run (default: all of "
            + ", ".join(ALL_RULE_IDS)
            + ")"
        ),
    )
    parser.add_argument(
        "--jobs",
        type=int,
        metavar="N",
        help=(
            "worker threads for the per-file rule pass "
            "(default: CPU count, capped at 8; output is identical "
            "for any value)"
        ),
    )
    parser.add_argument(
        "--verbose",
        action="store_true",
        help="print phase timings (parse/project/rules) to stderr",
    )
    parser.add_argument(
        "--max-seconds",
        type=float,
        metavar="S",
        help=(
            "fail with exit code 2 when the analysis wall-clock exceeds "
            "S seconds (the CI lint-runtime budget)"
        ),
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    return parser


def _default_paths() -> List[str]:
    """``src/repro`` relative to the repo the package was imported from."""
    package_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    return [package_root]


def _emit(findings: Sequence[Finding], fmt: str, out: TextIO) -> None:
    if fmt == "json":
        json.dump([f.to_dict() for f in findings], out, indent=2)
        out.write("\n")
    elif fmt == "sarif":
        json.dump(to_sarif(findings), out, indent=2)
        out.write("\n")
    else:
        for finding in findings:
            out.write(finding.format() + "\n")


def main(
    argv: Optional[Sequence[str]] = None, out: Optional[TextIO] = None
) -> int:
    out = out if out is not None else sys.stdout
    parser = build_parser()
    args = parser.parse_args(argv)

    fmt = args.format or ("json" if args.json else "human")
    if args.format and args.json and args.format != "json":
        print(
            "nebula-lint: error: --json conflicts with "
            f"--format {args.format}",
            file=sys.stderr,
        )
        return 2

    if args.list_rules:
        for rule_id in ALL_RULE_IDS:
            out.write(f"{rule_id}  {RULE_DOCS[rule_id]}\n")
        return 0

    rules: Optional[List[str]] = None
    if args.rules:
        rules = [r.strip() for r in args.rules.split(",") if r.strip()]

    paths = list(args.paths) or _default_paths()
    try:
        result = run_analysis(paths, rules=rules, jobs=args.jobs)
    except (AnalysisError, ValueError) as exc:
        print(f"nebula-lint: error: {exc}", file=sys.stderr)
        return 2
    findings = result.findings

    if args.verbose:
        timings = result.timings
        print(
            "nebula-lint: {files} file(s), jobs={jobs}: "
            "parse {parse:.3f}s, project {project:.3f}s, "
            "rules {rules:.3f}s, total {total:.3f}s".format(
                files=result.file_count,
                jobs=result.jobs,
                parse=timings["parse"],
                project=timings["project"],
                rules=timings["rules"],
                total=timings["total"],
            ),
            file=sys.stderr,
        )

    if args.max_seconds is not None and result.timings["total"] > args.max_seconds:
        print(
            f"nebula-lint: error: analysis took "
            f"{result.timings['total']:.3f}s, over the --max-seconds "
            f"budget of {args.max_seconds:.3f}s",
            file=sys.stderr,
        )
        return 2

    if args.write_baseline:
        write_baseline(args.write_baseline, findings)
        out.write(
            f"nebula-lint: wrote baseline with {len(findings)} finding(s) "
            f"to {args.write_baseline}\n"
        )
        return 0

    reported = list(findings)
    baselined = 0
    if args.baseline and not args.strict:
        try:
            baseline = load_baseline(args.baseline)
        except (OSError, ValueError, json.JSONDecodeError) as exc:
            print(f"nebula-lint: error: {exc}", file=sys.stderr)
            return 2
        reported = apply_baseline(findings, baseline)
        baselined = len(findings) - len(reported)

    _emit(reported, fmt, out)
    if fmt == "human":
        summary = f"nebula-lint: {len(reported)} finding(s)"
        if baselined:
            summary += f" ({baselined} baselined)"
        out.write(summary + "\n")
    return 1 if reported else 0
