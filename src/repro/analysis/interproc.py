"""Interprocedural SQL taint: unsafe strings that cross call boundaries.

PR-3's NBL001 judged one statement at a time: an explicit string-building
expression *at* the execute site is flagged, while an opaque name is
trusted (UNKNOWN).  That trust was the documented blind spot — a string
built unsafely in a helper and passed through one or two calls before
reaching ``execute`` was invisible.  This module closes it with two
fixpoints over the call graph:

``returns_unsafe``
    Functions with at least one ``return`` whose value resolves UNSAFE.
    A :data:`~repro.analysis.resolve.CallResolver` built from this set
    makes ``sql = build_where(user)`` resolve UNSAFE at the caller, so
    the existing execute-site check fires unchanged.

``sink_params``
    Parameters whose value reaches the SQL argument of an execute call
    inside the function (directly, through local string building, or by
    being forwarded into another function's sink parameter).  Call sites
    passing an UNSAFE argument into a sink parameter are flagged at the
    call — the execute may be two hops away.

Functions in the registered SQL-construction layer
(``rules.SQL_BUILDER_WHITELIST``) are excluded from both fixpoints: that
module is *supposed* to assemble SQL dynamically, and its output is
audited by its own tests.

Passing ``call_resolver=None`` everywhere reproduces the PR-3 behavior
bit-for-bit; the regression tests rely on that to prove the old resolver
misses what this layer catches.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from .findings import Finding
from .graphs import FunctionInfo, ProjectGraph
from .resolve import (
    SAFE_MARK,
    Env,
    Resolution,
    Safety,
    build_env,
    resolve_str,
)
from .rules import (
    EXECUTE_METHODS,
    SQL_BUILDER_WHITELIST,
    _matches_any,
    _sql_argument,
)

_MAX_ROUNDS = 10  #: fixpoint bound; depth > this means a cycle, stop.


def _param_names(func: FunctionInfo) -> List[str]:
    args = func.node.args  # type: ignore[attr-defined]
    names = [a.arg for a in list(args.posonlyargs) + list(args.args)]
    if func.is_method and names and names[0] in ("self", "cls"):
        names = names[1:]
    return names


def _is_execute_call(call: ast.Call) -> bool:
    func = call.func
    return isinstance(func, ast.Attribute) and func.attr in EXECUTE_METHODS


@dataclass
class SqlFlowIndex:
    """The project-wide SQL taint facts, ready for the NBL001 pass."""

    graph: ProjectGraph
    #: qualname -> human cause ("build_where() returns string-built SQL").
    returns_unsafe: Dict[str, str] = field(default_factory=dict)
    #: Functions whose every return resolves LITERAL/SAFE_DYNAMIC —
    #: calling them inside a concatenation is vouched safe, so a clean
    #: helper does not trip the strict unknown-piece judgment.
    returns_safe: Set[str] = field(default_factory=set)
    #: qualname -> sink parameter names.
    sink_params: Dict[str, Tuple[str, ...]] = field(default_factory=dict)
    _module_envs: Dict[str, Env] = field(default_factory=dict)
    _candidates: Dict[int, Tuple[str, ...]] = field(default_factory=dict)

    # -- construction --------------------------------------------------

    @classmethod
    def build(cls, graph: ProjectGraph) -> "SqlFlowIndex":
        index = cls(graph=graph)
        for func in graph.functions.values():
            for site in func.call_sites:
                index._candidates[id(site.call)] = site.candidates
        # Safe returns first: the unsafe pass judges concatenation
        # strictly (an unresolved call piece is UNSAFE), so helpers must
        # already be vouched for regardless of definition order.
        index._compute_returns_safe()
        index._compute_returns_unsafe()
        index._compute_sink_params()
        return index

    def _analyzed(self, func: FunctionInfo) -> bool:
        return not _matches_any(func.module.path, SQL_BUILDER_WHITELIST)

    def _module_env(self, func: FunctionInfo) -> Env:
        path = func.module.path
        if path not in self._module_envs:
            self._module_envs[path] = build_env(func.module.parsed.tree.body)
        return self._module_envs[path]

    def call_resolver(self):
        """A resolver mapping project calls to their taint resolution.

        Calls whose every candidate is a known-clean project function
        stay ``None`` (default handling); a call with any
        ``returns_unsafe`` candidate resolves UNSAFE with the helper
        named as the cause.
        """

        def resolver(call: ast.Call) -> Optional[Resolution]:
            candidates = self._candidates.get(id(call), ())
            for candidate in candidates:
                cause = self.returns_unsafe.get(candidate)
                if cause is not None:
                    return Resolution(Safety.UNSAFE, cause=cause)
            if candidates and all(
                candidate in self.returns_safe for candidate in candidates
            ):
                return Resolution(Safety.SAFE_DYNAMIC, SAFE_MARK)
            return None

        return resolver

    def _function_env(self, func: FunctionInfo, seed: Optional[Env] = None) -> Env:
        base = dict(self._module_env(func))
        if seed:
            base.update(seed)
        return build_env(
            func.node.body,  # type: ignore[attr-defined]
            base,
            call_resolver=self.call_resolver(),
        )

    def _compute_returns_safe(self) -> None:
        """Grow the set of provably-safe SQL builders to a fixpoint.

        Monotone: the resolver only ever *upgrades* a call piece from
        UNKNOWN to SAFE_DYNAMIC, so once a function qualifies it stays
        qualified as members are added.
        """
        for _round in range(_MAX_ROUNDS):
            changed = False
            for qualname, func in self.graph.functions.items():
                if qualname in self.returns_safe or not self._analyzed(func):
                    continue
                env = self._function_env(func)
                returns = [
                    node
                    for node in _own_walk(func.node)
                    if isinstance(node, ast.Return) and node.value is not None
                ]
                if not returns:
                    continue
                if all(
                    resolve_str(
                        node.value, env, self.call_resolver()
                    ).is_sql_safe
                    for node in returns
                ):
                    self.returns_safe.add(qualname)
                    changed = True
            if not changed:
                return

    def _compute_returns_unsafe(self) -> None:
        for _round in range(_MAX_ROUNDS):
            changed = False
            for qualname, func in self.graph.functions.items():
                if qualname in self.returns_unsafe or not self._analyzed(func):
                    continue
                env = self._function_env(func)
                for node in _own_walk(func.node):
                    if not isinstance(node, ast.Return) or node.value is None:
                        continue
                    resolved = resolve_str(
                        node.value, env, self.call_resolver()
                    )
                    if resolved.safety is Safety.UNSAFE:
                        self.returns_unsafe[qualname] = (
                            f"{func.display}() returns string-built SQL "
                            f"(unsafe piece {resolved.cause!r})"
                        )
                        changed = True
                        break
            if not changed:
                return

    def _compute_sink_params(self) -> None:
        for _round in range(_MAX_ROUNDS):
            changed = False
            for qualname, func in self.graph.functions.items():
                if not self._analyzed(func):
                    continue
                known = set(self.sink_params.get(qualname, ()))
                for param in _param_names(func):
                    if param in known:
                        continue
                    if self._param_reaches_sink(func, param):
                        known.add(param)
                        changed = True
                if known:
                    self.sink_params[qualname] = tuple(sorted(known))
            if not changed:
                return

    def _param_reaches_sink(self, func: FunctionInfo, param: str) -> bool:
        seed = {param: Resolution(Safety.UNSAFE, cause=f"parameter {param!r}")}
        tainted = self._function_env(func, seed)
        plain = self._function_env(func)
        for site in func.call_sites:
            if _is_execute_call(site.call):
                argument = _sql_argument(site.call)
                if argument is None:
                    continue
                if (
                    resolve_str(argument, tainted).safety is Safety.UNSAFE
                    and resolve_str(argument, plain).safety
                    is not Safety.UNSAFE
                ):
                    return True
                continue
            for _callee, _callee_param, argument in self._sink_arguments(site):
                if (
                    resolve_str(argument, tainted).safety is Safety.UNSAFE
                    and resolve_str(argument, plain).safety
                    is not Safety.UNSAFE
                ):
                    return True
        return False

    def _sink_arguments(self, site):
        """(callee, param name, argument expr) for sink-param args."""
        out = []
        for candidate in site.candidates:
            sinks = self.sink_params.get(candidate, ())
            if not sinks:
                continue
            callee = self.graph.functions[candidate]
            names = _param_names(callee)
            for position, argument in enumerate(site.call.args):
                if position < len(names) and names[position] in sinks:
                    out.append((callee, names[position], argument))
            for keyword in site.call.keywords:
                if keyword.arg in sinks:
                    out.append((callee, keyword.arg, keyword.value))
        return out

    # -- findings ------------------------------------------------------

    def call_site_findings(self, path: str, snippet) -> List[Finding]:
        """NBL001 findings for unsafe values entering sink parameters.

        Execute sites themselves are covered by ``check_sql_safety``
        running with :meth:`call_resolver`; this reports the *other*
        half — a tainted argument handed to a project function whose
        parameter provably reaches an execute call.
        """
        modinfo = self.graph.by_path.get(path)
        if modinfo is None:
            return []
        findings: List[Finding] = []
        for func in modinfo.functions.values():
            if not self._analyzed(func):
                continue
            env = self._function_env(func)
            for site in func.call_sites:
                if _is_execute_call(site.call):
                    continue
                seen = set()
                for callee, param, argument in self._sink_arguments(site):
                    if param in seen:
                        continue
                    resolved = resolve_str(argument, env, self.call_resolver())
                    if resolved.safety is not Safety.UNSAFE:
                        continue
                    seen.add(param)
                    findings.append(
                        Finding(
                            rule_id="NBL001",
                            path=path,
                            line=site.lineno,
                            message=(
                                f"string-built SQL flows into "
                                f"{callee.display}({param}=...), which "
                                f"reaches execute(): unsafe piece "
                                f"{resolved.cause!r}"
                            ),
                            fix_hint=(
                                "bind values with '?' placeholders before "
                                "the call; interpolate identifiers only "
                                "through quote_identifier()"
                            ),
                            snippet=snippet(site.lineno),
                            details={
                                "callee": callee.qualname,
                                "param": param,
                                "cause": resolved.cause,
                                "end_line": getattr(
                                    site.call, "end_lineno", None
                                )
                                or site.lineno,
                            },
                        )
                    )
        return findings


def _own_walk(func_node: ast.AST):
    """Walk a function body without entering nested def/class scopes."""
    stack: List[ast.AST] = list(getattr(func_node, "body", []))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))
