"""Module, class, and call graphs over the analyzed tree.

This is the name-resolution layer of the interprocedural core.  It turns
a set of :class:`~repro.analysis.astcache.ParsedModule` records into:

* a **module graph** — dotted module names (derived by walking up the
  package tree while ``__init__.py`` exists) plus per-module import
  alias tables, including relative imports;
* a **symbol table** — every module-level function, class, method, and
  (recursively) nested function, keyed by a stable qualified name of the
  form ``repro.service.queue:SubmissionQueue.drain``;
* a **call graph** — for each function, its call sites with the set of
  project functions the callee name can resolve to.  Resolution covers
  bare local names, imported names (aliased or not), ``self.method``
  (including methods inherited from project base classes and subclass
  overrides — virtual dispatch returns *all* candidates), and
  ``obj.method`` where ``obj``'s class is inferred from parameter
  annotations, constructor assignments, or ``self._field`` types.

Unknown callees resolve to the empty candidate list; rules treat that
conservatively (an opaque call is neither trusted nor flagged).  All
records are immutable after :func:`build_project_graph` returns, so the
graph can be shared freely across the engine's worker threads.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from .astcache import ParsedModule

#: threading constructors whose results are lock-like synchronizers.
THREADING_PRIMITIVES = frozenset(
    {"Lock", "RLock", "Condition", "Event", "Semaphore", "BoundedSemaphore"}
)


def module_name_for_path(path: str) -> str:
    """Dotted module name for ``path``, walking up through packages."""
    path = os.path.abspath(path)
    directory, filename = os.path.split(path)
    stem = filename[:-3] if filename.endswith(".py") else filename
    parts: List[str] = [] if stem == "__init__" else [stem]
    while os.path.isfile(os.path.join(directory, "__init__.py")):
        directory, package = os.path.split(directory)
        parts.append(package)
    return ".".join(reversed(parts)) or stem


@dataclass
class FunctionInfo:
    """One function or method in the project."""

    qualname: str  #: e.g. ``repro.storage.pool:ConnectionPool.acquire``
    name: str
    node: ast.AST  #: the FunctionDef / AsyncFunctionDef
    module: "ModuleInfo"
    class_name: Optional[str] = None  #: owning class, if a method
    call_sites: List["CallSite"] = field(default_factory=list)

    @property
    def is_method(self) -> bool:
        return self.class_name is not None

    @property
    def display(self) -> str:
        return (
            f"{self.class_name}.{self.name}" if self.class_name else self.name
        )


@dataclass(frozen=True)
class CallSite:
    """One call expression inside a function, with resolved candidates."""

    call: ast.Call
    lineno: int
    #: Qualnames of every project function the callee may be.
    candidates: Tuple[str, ...]
    #: Best-effort source text of the callee (for messages).
    callee_text: str


@dataclass
class ClassInfo:
    """One class definition: methods, bases, and inferred field types."""

    qualname: str  #: e.g. ``repro.storage.pool:ConnectionPool``
    name: str
    node: ast.ClassDef
    module: "ModuleInfo"
    methods: Dict[str, FunctionInfo] = field(default_factory=dict)
    #: Base-class expressions as source text (resolved lazily).
    base_names: List[str] = field(default_factory=list)
    #: ``self._field`` -> type string: a project class qualname, or a
    #: dotted builtin-ish name like ``threading.Lock``.
    field_types: Dict[str, str] = field(default_factory=dict)


@dataclass
class ModuleInfo:
    """One parsed module plus its import alias table."""

    name: str
    parsed: ParsedModule
    #: local alias -> dotted target ("compat" -> "repro.storage.compat",
    #: "connect" -> "repro.storage.compat.connect").
    imports: Dict[str, str] = field(default_factory=dict)
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    classes: Dict[str, ClassInfo] = field(default_factory=dict)

    @property
    def path(self) -> str:
        return self.parsed.path


def own_nodes(func: ast.AST) -> Iterator[ast.AST]:
    """Walk a function's own body, not descending into nested scopes."""
    stack: List[ast.AST] = list(getattr(func, "body", []))
    while stack:
        node = stack.pop()
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef)
        ):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def _collect_imports(tree: ast.Module, module_name: str) -> Dict[str, str]:
    imports: Dict[str, str] = {}
    package = module_name.rsplit(".", 1)[0] if "." in module_name else ""
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                target = alias.name if alias.asname else alias.name.split(".")[0]
                imports[local] = target
                if alias.asname:
                    imports[alias.asname] = alias.name
        elif isinstance(node, ast.ImportFrom):
            base = node.module or ""
            if node.level:
                # Relative import: level 1 is the containing package.
                anchor = module_name.split(".")
                # For a module (not a package __init__), the anchor of
                # level 1 is its parent package.
                anchor = anchor[: len(anchor) - node.level]
                base = ".".join(anchor + ([node.module] if node.module else []))
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                imports[local] = f"{base}.{alias.name}" if base else alias.name
    del package
    return imports


class ProjectGraph:
    """The resolved view of every module handed to the analyzer."""

    def __init__(self) -> None:
        self.modules: Dict[str, ModuleInfo] = {}  #: dotted name -> module
        self.by_path: Dict[str, ModuleInfo] = {}
        self.functions: Dict[str, FunctionInfo] = {}  #: qualname -> func
        self.classes: Dict[str, ClassInfo] = {}  #: qualname -> class
        #: class qualname -> qualnames of direct+transitive subclasses.
        self.subclasses: Dict[str, Set[str]] = {}
        self._local_types: Dict[int, Dict[str, str]] = {}

    # -- construction --------------------------------------------------

    def _register_module(self, parsed: ParsedModule) -> ModuleInfo:
        name = module_name_for_path(parsed.path)
        info = ModuleInfo(name=name, parsed=parsed)
        info.imports = _collect_imports(parsed.tree, name)
        self.modules[name] = info
        self.by_path[parsed.path] = info

        def register_function(
            node: ast.AST,
            prefix: str,
            class_name: Optional[str],
            direct_member: bool,
        ) -> None:
            assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
            qual = f"{name}:{prefix}{node.name}"
            func = FunctionInfo(
                qualname=qual,
                name=node.name,
                node=node,
                module=info,
                class_name=class_name,
            )
            self.functions[qual] = func
            info.functions[f"{prefix}{node.name}"] = func
            if direct_member and class_name is not None and class_name in info.classes:
                info.classes[class_name].methods[node.name] = func
            # Nested defs get their own records (helpers built inside a
            # method still participate in taint/blocking propagation) but
            # are not class methods — only direct members dispatch.
            for child in node.body:
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    register_function(
                        child, f"{prefix}{node.name}.", class_name, False
                    )

        for stmt in parsed.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                register_function(stmt, "", None, False)
            elif isinstance(stmt, ast.ClassDef):
                cls = ClassInfo(
                    qualname=f"{name}:{stmt.name}",
                    name=stmt.name,
                    node=stmt,
                    module=info,
                    base_names=[ast.unparse(b) for b in stmt.bases],
                )
                info.classes[stmt.name] = cls
                self.classes[cls.qualname] = cls
                for member in stmt.body:
                    if isinstance(member, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        register_function(member, f"{stmt.name}.", stmt.name, True)
        return info

    def _resolve_dotted(self, modinfo: ModuleInfo, dotted: str) -> Optional[str]:
        """Resolve a local dotted name to a project symbol qualname.

        ``dotted`` is e.g. ``compat.connect`` or ``ConnectionPool`` as
        written in ``modinfo``'s source; the result is a qualname into
        :attr:`functions`/:attr:`classes`, or ``None`` for symbols
        outside the analyzed tree.
        """
        head, _, rest = dotted.partition(".")
        target = modinfo.imports.get(head)
        if target is None:
            # A name defined in this module itself.
            full = dotted
            if full in modinfo.functions:
                return modinfo.functions[full].qualname
            if head in modinfo.classes:
                if not rest:
                    return modinfo.classes[head].qualname
                method = modinfo.classes[head].methods.get(rest)
                return method.qualname if method else None
            return None
        full = f"{target}.{rest}" if rest else target
        # Longest module-name prefix of ``full`` wins; the remainder is
        # the symbol path inside that module.
        parts = full.split(".")
        for cut in range(len(parts), 0, -1):
            mod = self.modules.get(".".join(parts[:cut]))
            if mod is None:
                continue
            symbol = ".".join(parts[cut:])
            if not symbol:
                return None
            if symbol in mod.functions:
                return mod.functions[symbol].qualname
            cls_name, _, method = symbol.partition(".")
            if cls_name in mod.classes:
                if not method:
                    return mod.classes[cls_name].qualname
                found = mod.classes[cls_name].methods.get(method)
                return found.qualname if found else None
            return None
        return None

    def _infer_field_types(self, cls: ClassInfo) -> None:
        init = cls.methods.get("__init__")
        if init is None:
            return
        annotations = _param_annotations(init.node)
        for node in own_nodes(init.node):
            targets: List[ast.expr] = []
            value: Optional[ast.expr] = None
            if isinstance(node, ast.Assign):
                targets, value = list(node.targets), node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets, value = [node.target], node.value
            for target in targets:
                if not (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    continue
                typed = self._type_of_value(cls.module, value, annotations)
                if typed is not None:
                    cls.field_types[target.attr] = typed

    def _type_of_value(
        self,
        modinfo: ModuleInfo,
        value: Optional[ast.expr],
        local_types: Dict[str, str],
    ) -> Optional[str]:
        """Type string for an assigned value, when inferable."""
        if value is None:
            return None
        if isinstance(value, ast.Name):
            return local_types.get(value.id)
        if not isinstance(value, ast.Call):
            return None
        func = value.func
        # threading.Lock() / Condition() / ... (direct or via import).
        if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
            receiver = modinfo.imports.get(func.value.id, func.value.id)
            if receiver == "threading" and func.attr in THREADING_PRIMITIVES:
                return f"threading.{func.attr}"
        if isinstance(func, ast.Name):
            target = modinfo.imports.get(func.id, "")
            if (
                target.startswith("threading.")
                and target.split(".")[-1] in THREADING_PRIMITIVES
            ):
                return target
        # Constructor of a project class.
        dotted = _dotted_name(func)
        if dotted is not None:
            resolved = self._resolve_dotted(modinfo, dotted)
            if resolved in self.classes:
                return resolved
        return None

    def _link_hierarchy(self) -> None:
        resolved_bases: Dict[str, List[str]] = {}
        for cls in self.classes.values():
            bases: List[str] = []
            for base in cls.base_names:
                target = self._resolve_dotted(cls.module, base)
                if target in self.classes:
                    bases.append(target)  # type: ignore[arg-type]
            resolved_bases[cls.qualname] = bases
        self._resolved_bases = resolved_bases
        for qualname in self.classes:
            self.subclasses.setdefault(qualname, set())
        for qualname, bases in resolved_bases.items():
            seen: Set[str] = set()
            stack = list(bases)
            while stack:
                base = stack.pop()
                if base in seen:
                    continue
                seen.add(base)
                self.subclasses.setdefault(base, set()).add(qualname)
                stack.extend(resolved_bases.get(base, []))

    def mro(self, cls: ClassInfo) -> List[ClassInfo]:
        """The class followed by its project base classes, depth-first."""
        out: List[ClassInfo] = []
        seen: Set[str] = set()
        stack = [cls.qualname]
        while stack:
            qual = stack.pop(0)
            if qual in seen or qual not in self.classes:
                continue
            seen.add(qual)
            out.append(self.classes[qual])
            stack.extend(self._resolved_bases.get(qual, []))
        return out

    # -- call resolution ----------------------------------------------

    def local_types(self, func: FunctionInfo) -> Dict[str, str]:
        """name -> type string for ``func``'s params and simple locals."""
        cached = self._local_types.get(id(func.node))
        if cached is not None:
            return cached
        types = _param_annotations(func.node)
        resolved: Dict[str, str] = {}
        for name, annotation in types.items():
            target = self._resolve_dotted(func.module, annotation)
            if target in self.classes:
                resolved[name] = target  # type: ignore[assignment]
            elif annotation.startswith("threading."):
                resolved[name] = annotation
        for node in own_nodes(func.node):
            if (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
            ):
                typed = self._type_of_value(func.module, node.value, resolved)
                if typed is not None:
                    resolved[node.targets[0].id] = typed
        self._local_types[id(func.node)] = resolved
        return resolved

    def field_type(self, func: FunctionInfo, attr: str) -> Optional[str]:
        """Type of ``self.<attr>`` as seen from ``func``'s class."""
        if func.class_name is None:
            return None
        cls = func.module.classes.get(func.class_name)
        if cls is None:
            return None
        for klass in self.mro(cls):
            if attr in klass.field_types:
                return klass.field_types[attr]
        return None

    def _method_candidates(
        self, cls: ClassInfo, method: str, virtual: bool
    ) -> List[str]:
        found: List[str] = []
        for klass in self.mro(cls):
            if method in klass.methods:
                found.append(klass.methods[method].qualname)
                break
        if virtual:
            for sub in sorted(self.subclasses.get(cls.qualname, ())):
                override = self.classes[sub].methods.get(method)
                if override is not None and override.qualname not in found:
                    found.append(override.qualname)
        return found

    def resolve_call(
        self, call: ast.Call, caller: FunctionInfo
    ) -> Tuple[str, ...]:
        """Project-function qualnames the callee may resolve to."""
        func = call.func
        modinfo = caller.module

        # self.method(...) — own class, bases, and subclass overrides.
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id == "self"
            and caller.class_name is not None
        ):
            cls = modinfo.classes.get(caller.class_name)
            if cls is not None:
                return tuple(self._method_candidates(cls, func.attr, virtual=True))
            return ()

        # self._field.method(...) — via the field's inferred type.
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Attribute)
            and isinstance(func.value.value, ast.Name)
            and func.value.value.id == "self"
        ):
            typed = self.field_type(caller, func.value.attr)
            if typed in self.classes:
                return tuple(
                    self._method_candidates(
                        self.classes[typed], func.attr, virtual=True
                    )
                )
            return ()

        # obj.method(...) — via the local/param type environment.
        if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
            typed = self.local_types(caller).get(func.value.id)
            if typed in self.classes:
                return tuple(
                    self._method_candidates(
                        self.classes[typed], func.attr, virtual=True
                    )
                )

        # Bare or dotted names: locals of the enclosing function's
        # module, then the import table.
        dotted = _dotted_name(func)
        if dotted is None:
            return ()
        # A nested function visible from the caller: its own children
        # first (``inner`` defined inside this very function), then
        # siblings at each enclosing nesting level.
        prefix = caller.qualname.split(":", 1)[1]
        while prefix:
            # At the class level the walk stops: a bare name inside a
            # method never resolves to a sibling method (that needs
            # ``self.``), only to nested defs or module scope.
            if prefix in modinfo.classes:
                break
            nested = modinfo.functions.get(f"{prefix}.{dotted}")
            if nested is not None:
                return (nested.qualname,)
            prefix = prefix.rsplit(".", 1)[0] if "." in prefix else ""
        resolved = self._resolve_dotted(modinfo, dotted)
        if resolved in self.functions:
            return (resolved,)
        if resolved in self.classes:
            init = self.classes[resolved].methods.get("__init__")
            return (init.qualname,) if init else ()
        return ()

    def _build_call_sites(self) -> None:
        for func in self.functions.values():
            sites: List[CallSite] = []
            for node in own_nodes(func.node):
                if not isinstance(node, ast.Call):
                    continue
                candidates = self.resolve_call(node, func)
                sites.append(
                    CallSite(
                        call=node,
                        lineno=node.lineno,
                        candidates=candidates,
                        callee_text=_dotted_name(node.func)
                        or ast.unparse(node.func),
                    )
                )
            func.call_sites = sites


def _dotted_name(node: ast.expr) -> Optional[str]:
    """``a.b.c`` source text when ``node`` is a pure attribute chain."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _param_annotations(node: ast.AST) -> Dict[str, str]:
    """param name -> annotation source text (``Optional[X]`` unwrapped)."""
    out: Dict[str, str] = {}
    args = getattr(node, "args", None)
    if args is None:
        return out
    for arg in list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs):
        if arg.annotation is None:
            continue
        text = ast.unparse(arg.annotation)
        for wrapper in ("Optional[", "typing.Optional["):
            if text.startswith(wrapper) and text.endswith("]"):
                text = text[len(wrapper) : -1]
        out[arg.arg] = text.strip('"')
    return out


def build_project_graph(modules: Sequence[ParsedModule]) -> ProjectGraph:
    """Build the full graph: symbols, hierarchy, field types, call sites."""
    graph = ProjectGraph()
    for parsed in modules:
        graph._register_module(parsed)
    graph._link_hierarchy()
    for cls in graph.classes.values():
        graph._infer_field_types(cls)
    graph._build_call_sites()
    return graph
