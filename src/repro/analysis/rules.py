"""The nebula-lint rule set.

Thirteen AST-based rules over the repo's own source, each encoding an
invariant the runtime layers depend on.  NBL001–NBL008 and NBL013 are
intra-module and live here; NBL009–NBL012 reason over the interprocedural core
(:mod:`repro.analysis.graphs` / :mod:`repro.analysis.summaries`) and
live in :mod:`repro.analysis.concurrency` — they are registered in
:data:`RULE_DOCS` below so the engine and CLI see one catalog.

=========  ==========================================================
NBL001     SQL safety: no string-built SQL at ``execute`` sites —
           ``?`` placeholders for values, ``quote_identifier`` for
           identifiers.  ``repro/search/sqlgen.py`` is the registered
           SQL-construction layer and is exempt.
NBL002     Transaction discipline: every executed ``SAVEPOINT`` must
           have a matching ``RELEASE`` / ``ROLLBACK TO`` in the same
           function, unless the module is the registered boundary
           helper (``repro/resilience/boundaries.py``).
NBL003     Paper invariants (config): ``NebulaConfig`` literal
           defaults — and literal keyword overrides at construction
           sites — must satisfy β1 > β2 > β3 > 0, ε ∈ (0, 1],
           0 ≤ β_lower ≤ β_upper ≤ 1, α ≥ 1, pool_size ≥ 1.
NBL004     Paper invariants (edges): ``TRUE_EDGE_WEIGHT`` must be
           exactly 1.0; literal confidences attached with
           ``kind=PREDICTED`` (or via ``attach_predicted``) must lie
           strictly inside (0, 1); True-edge literals must be 1.0.
NBL005     Trace taxonomy: every literal ``tracer.span("...")`` name
           and every ``SPAN_NAMES`` mapping value must appear in
           :data:`repro.observability.stages.CANONICAL_STAGES`.
NBL006     Resource hygiene: driver ``connect()`` (``sqlite3`` or the
           ``repro.storage.compat`` adapter), ``.cursor()``,
           pool/backend ``.acquire()`` / ``.open_reader()``, and the
           service layer's ``acquire_reader``/``_acquire_reader``
           results bound in non-test code must be closed/released,
           managed by ``with``/``closing``, or escape (returned,
           yielded, stored on ``self``, or handed to another
           component).
NBL007     Driver isolation: ``repro/storage/`` is the only package
           allowed to import :mod:`sqlite3`; every other module goes
           through ``repro.storage.compat`` (or a backend handle), so
           swapping the engine stays a one-package change.
NBL008     Metric naming: literal instrument names at registry call
           sites (``metrics.counter/gauge/histogram``) must be
           ``nebula_``-prefixed snake_case; counters end ``_total``,
           time histograms (``TIME_BUCKETS``) end ``_seconds``, and
           the exposition-reserved suffixes ``_bucket``/``_sum``/
           ``_count`` are forbidden — so ``/metrics`` renders without
           series collisions.
NBL009     Lock discipline (interprocedural): a field the class ever
           mutates under a lock must be guarded at every mutation
           site outside ``__init__``; fields never guarded anywhere
           are a documented lock-free fast path and exempt.  Classes
           holding two locks must acquire them in one global order.
NBL010     Connection thread-affinity (interprocedural): a sqlite
           handle must not flow into closures or arguments shipped to
           another thread (``executor.submit``, ``threading.Thread``,
           executor ``.map``), directly or through a function whose
           parameter provably reaches such a sink.
NBL011     Blocking under lock (interprocedural): no ``execute``/
           ``commit``, untimed ``wait``, ``.result()``,
           ``time.sleep`` or blocking socket call while holding a
           ``threading`` lock — including transitively through
           helpers.  Designed single-writer flush sites are
           allowlisted in ``repro.analysis.concurrency``.
NBL012     Condition hygiene: ``Condition.wait`` only inside a
           while-predicate loop and only while holding the
           condition; ``notify``/``notify_all`` only with the owning
           lock held (lexically or at every call site).
NBL013     Versioned-table write discipline: no raw ``UPDATE`` /
           ``DELETE`` (or ``REPLACE``) against the versioned head
           tables (``_nebula_annotations`` / ``_nebula_attachments``)
           outside ``repro/versioning/`` — the commit log is the only
           writer that appends the paired history row.
=========  ==========================================================

Findings can be suppressed inline with ``# nebula-lint: ignore`` or
``# nebula-lint: ignore[NBL001,NBL004]`` on the flagged line, or via the
baseline file (see :mod:`repro.analysis.baseline`).
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from ..observability.stages import CANONICAL_STAGES
from ..versioning.schema import VERSIONED_TABLES
from .findings import Finding
from .resolve import (
    SAFE_MARK,
    CallResolver,
    Env,
    Safety,
    build_env,
    resolve_str,
)

#: Methods treated as SQL execution entry points.
EXECUTE_METHODS = frozenset({"execute", "executemany", "executescript"})

#: Modules allowed to assemble SQL text dynamically (the sqlgen layer).
SQL_BUILDER_WHITELIST = ("search/sqlgen.py",)

#: Registered transaction-boundary helper modules (NBL002 exemption).
BOUNDARY_HELPER_MODULES = ("resilience/boundaries.py",)

_SAVEPOINT_RE = re.compile(r"^\s*SAVEPOINT\s+(?P<name>\S+)", re.IGNORECASE)
_RELEASE_RE = re.compile(
    r"^\s*RELEASE\s+(?:SAVEPOINT\s+)?(?P<name>\S+)", re.IGNORECASE
)
_ROLLBACK_TO_RE = re.compile(
    r"^\s*ROLLBACK\s+TO\s+(?:SAVEPOINT\s+)?(?P<name>\S+)", re.IGNORECASE
)

#: β/ε/α field names whose literal defaults NBL003 validates.
_CONFIG_CLASS = "NebulaConfig"


def _is_test_path(path: str) -> bool:
    parts = path.replace("\\", "/").split("/")
    name = parts[-1]
    # Fixture modules under tests/fixtures/ are *linted as production
    # code*: they exist to exercise the rules, so the test-file
    # exemptions (NBL006 hygiene, etc.) must not apply to them.
    if "fixtures" in parts:
        return False
    return (
        "tests" in parts
        or name.startswith("test_")
        or name == "conftest.py"
    )


def _matches_any(path: str, suffixes: Sequence[str]) -> bool:
    normalized = path.replace("\\", "/")
    return any(normalized.endswith(suffix) for suffix in suffixes)


class ModuleContext:
    """Everything the rules need about one parsed module."""

    def __init__(self, path: str, tree: ast.Module, source: str) -> None:
        self.path = path
        self.tree = tree
        self.lines = source.splitlines()
        self.module_env: Env = build_env(tree.body)

    def snippet(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""


class SharedState:
    """Cross-module facts collected before the rule pass (NBL003)."""

    def __init__(self) -> None:
        #: Literal NebulaConfig field defaults: name -> (value, path, line).
        self.config_defaults: Dict[str, Tuple[float, str, int]] = {}


# ----------------------------------------------------------------------
# Function-scope walking helpers
# ----------------------------------------------------------------------


def _functions(tree: ast.Module) -> Iterator[ast.FunctionDef]:
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def _execute_calls(
    scope_body: Sequence[ast.stmt],
) -> Iterator[Tuple[ast.Call, str]]:
    """Yield (call, method_name) for execute-shaped calls in a scope.

    Covers attribute calls (``conn.execute(...)``), bare-name calls
    (local wrappers named ``execute``), and locally aliased methods
    (``run = cur.execute; run(...)``) — the alias set is resolved by the
    caller via :func:`_execute_aliases`.
    """
    aliases = _execute_aliases(scope_body)
    for node in ast.walk(_wrap(scope_body)):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr in EXECUTE_METHODS:
            yield node, func.attr
        elif isinstance(func, ast.Name) and (
            func.id in EXECUTE_METHODS or func.id in aliases
        ):
            yield node, aliases.get(func.id, func.id)


def _execute_aliases(scope_body: Sequence[ast.stmt]) -> Dict[str, str]:
    """Local names bound to an execute method: ``run = cursor.execute``."""
    aliases: Dict[str, str] = {}
    for node in ast.walk(_wrap(scope_body)):
        if (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
            and isinstance(node.value, ast.Attribute)
            and node.value.attr in EXECUTE_METHODS
        ):
            aliases[node.targets[0].id] = node.value.attr
    return aliases


def _wrap(body: Sequence[ast.stmt]) -> ast.Module:
    module = ast.Module(body=list(body), type_ignores=[])
    return module


def _sql_argument(call: ast.Call) -> Optional[ast.expr]:
    if call.args:
        return call.args[0]
    for keyword in call.keywords:
        if keyword.arg == "sql":
            return keyword.value
    return None


def _own_statements(func: ast.FunctionDef) -> List[ast.stmt]:
    """The function's statements excluding nested function/class bodies."""
    collected: List[ast.stmt] = []

    def visit(stmts: Sequence[ast.stmt]) -> None:
        for stmt in stmts:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                continue
            collected.append(stmt)
            for attr in ("body", "orelse", "finalbody"):
                block = getattr(stmt, attr, None)
                if isinstance(block, list) and block and isinstance(block[0], ast.stmt):
                    visit(block)
            for handler in getattr(stmt, "handlers", None) or []:
                visit(handler.body)

    visit(func.body)
    return collected


# ----------------------------------------------------------------------
# NBL001 — SQL safety
# ----------------------------------------------------------------------


def check_sql_safety(
    ctx: ModuleContext, call_resolver: Optional[CallResolver] = None
) -> Iterator[Finding]:
    """NBL001 at execute sites.

    With the default ``call_resolver=None`` this is the PR-3
    per-statement check, bit for bit: an opaque call at the execute
    site resolves UNKNOWN and is trusted.  The engine passes the
    :class:`~repro.analysis.interproc.SqlFlowIndex` resolver, which
    makes calls into unsafe-returning project helpers resolve UNSAFE —
    the interprocedural upgrade rides on the same check.
    """
    if _matches_any(ctx.path, SQL_BUILDER_WHITELIST):
        return
    funcs = list(_functions(ctx.tree))
    env_cache: Dict[int, Env] = {}

    def env_for(lineno: int) -> Env:
        # Innermost enclosing function scope (largest start line wins).
        best: Optional[ast.FunctionDef] = None
        for func in funcs:
            end = getattr(func, "end_lineno", None) or func.lineno
            if func.lineno <= lineno <= end:
                if best is None or func.lineno >= best.lineno:
                    best = func
        if best is None:
            return ctx.module_env
        if id(best) not in env_cache:
            env_cache[id(best)] = build_env(
                best.body, ctx.module_env, call_resolver=call_resolver
            )
        return env_cache[id(best)]

    for call, method in _execute_calls(ctx.tree.body):
        argument = _sql_argument(call)
        if argument is None:
            continue
        resolved = resolve_str(argument, env_for(call.lineno), call_resolver)
        if resolved.safety is not Safety.UNSAFE:
            continue
        yield Finding(
            rule_id="NBL001",
            path=ctx.path,
            line=call.lineno,
            message=(
                f"string-built SQL reaches {method}(): "
                f"unsafe piece {resolved.cause!r}"
            ),
            fix_hint=(
                "bind values with '?' placeholders; interpolate "
                "identifiers only through quote_identifier()"
            ),
            snippet=ctx.snippet(call.lineno),
            details={
                "method": method,
                "cause": resolved.cause,
                "end_line": getattr(call, "end_lineno", None) or call.lineno,
            },
        )


# ----------------------------------------------------------------------
# NBL002 — SAVEPOINT pairing
# ----------------------------------------------------------------------


def _savepoint_name(text: str) -> str:
    """Normalize an extracted savepoint name; safe markers are wildcards."""
    name = text.strip().strip(';"')
    if SAFE_MARK in name or not name:
        return "*"
    return name.casefold()


def check_savepoint_pairing(ctx: ModuleContext) -> Iterator[Finding]:
    if _matches_any(ctx.path, BOUNDARY_HELPER_MODULES):
        return
    for func in _functions(ctx.tree):
        env = build_env(func.body, ctx.module_env)
        opened: List[Tuple[str, int]] = []
        closed: Set[str] = set()
        for call, _method in _execute_calls(func.body):
            argument = _sql_argument(call)
            if argument is None:
                continue
            resolved = resolve_str(argument, env)
            if resolved.text is None:
                continue
            match = _SAVEPOINT_RE.match(resolved.text)
            if match and not _RELEASE_RE.match(resolved.text):
                opened.append((_savepoint_name(match.group("name")), call.lineno))
            for pattern in (_RELEASE_RE, _ROLLBACK_TO_RE):
                ended = pattern.match(resolved.text)
                if ended:
                    closed.add(_savepoint_name(ended.group("name")))
        for name, lineno in opened:
            if name in closed or "*" in closed or name == "*" and closed:
                continue
            yield Finding(
                rule_id="NBL002",
                path=ctx.path,
                line=lineno,
                message=(
                    f"SAVEPOINT {name!r} has no matching RELEASE/ROLLBACK TO "
                    f"in function {_enclosing_name(ctx, lineno)!r}"
                ),
                fix_hint=(
                    "pair the SAVEPOINT in the same function or use the "
                    "repro.resilience.boundaries.Savepoint helper"
                ),
                snippet=ctx.snippet(lineno),
                details={"savepoint": name},
            )


def _enclosing_name(ctx: ModuleContext, lineno: int) -> str:
    best = "<module>"
    for func in _functions(ctx.tree):
        end = getattr(func, "end_lineno", None) or func.lineno
        if func.lineno <= lineno <= end:
            best = func.name
    return best


# ----------------------------------------------------------------------
# NBL003 — configuration invariants
# ----------------------------------------------------------------------


def collect_config_defaults(ctx: ModuleContext, state: SharedState) -> None:
    for node in ast.walk(ctx.tree):
        if not (isinstance(node, ast.ClassDef) and node.name == _CONFIG_CLASS):
            continue
        for stmt in node.body:
            if (
                isinstance(stmt, ast.AnnAssign)
                and isinstance(stmt.target, ast.Name)
                and isinstance(stmt.value, ast.Constant)
                and isinstance(stmt.value.value, (int, float))
                and not isinstance(stmt.value.value, bool)
            ):
                state.config_defaults[stmt.target.id] = (
                    float(stmt.value.value),
                    ctx.path,
                    stmt.lineno,
                )


def _config_violations(
    values: Dict[str, float]
) -> Iterator[Tuple[str, str]]:
    """(field, message) pairs for every violated invariant in ``values``."""

    def has(*names: str) -> bool:
        return all(name in values for name in names)

    if has("beta1", "beta2") and not values["beta1"] > values["beta2"]:
        yield "beta1", (
            f"beta1 ({values['beta1']}) must exceed beta2 ({values['beta2']}) "
            "(Section 4.3 / §5.2.2: Type-1 > Type-2 context rewards)"
        )
    if has("beta2", "beta3") and not values["beta2"] > values["beta3"]:
        yield "beta2", (
            f"beta2 ({values['beta2']}) must exceed beta3 ({values['beta3']}) "
            "(Type-2 > Type-3 context rewards)"
        )
    if has("beta3") and not values["beta3"] > 0.0:
        yield "beta3", f"beta3 ({values['beta3']}) must be positive"
    if has("epsilon") and not 0.0 < values["epsilon"] <= 1.0:
        yield "epsilon", f"epsilon ({values['epsilon']}) must be in (0, 1]"
    if has("alpha") and not values["alpha"] >= 1:
        yield "alpha", f"alpha ({values['alpha']}) must be >= 1"
    if has("beta_lower", "beta_upper") and not (
        0.0 <= values["beta_lower"] <= values["beta_upper"] <= 1.0
    ):
        yield "beta_lower", (
            f"verification bands must satisfy 0 <= beta_lower "
            f"({values['beta_lower']}) <= beta_upper ({values['beta_upper']}) <= 1"
        )
    if has("pool_size") and not values["pool_size"] >= 1:
        yield "pool_size", (
            f"pool_size ({values['pool_size']}) must be >= 1 — the storage "
            "backend needs at least one pooled connection"
        )


def check_config_invariants(
    ctx: ModuleContext, state: SharedState
) -> Iterator[Finding]:
    # Class-level literal defaults (checked in the defining module only).
    defaults = {
        name: value
        for name, (value, path, _line) in state.config_defaults.items()
        if path == ctx.path
    }
    if defaults:
        for field, message in _config_violations(
            {k: v for k, (v, _p, _l) in state.config_defaults.items()}
        ):
            _value, path, line = state.config_defaults.get(
                field, (0.0, ctx.path, 1)
            )
            if path != ctx.path:
                continue
            yield Finding(
                rule_id="NBL003",
                path=ctx.path,
                line=line,
                message=message,
                fix_hint="restore the paper's ordering beta1 > beta2 > beta3 > 0",
                snippet=ctx.snippet(line),
                details={"field": field},
            )

    # Literal keyword overrides at NebulaConfig(...) construction sites,
    # merged over the known literal defaults.
    base = {name: value for name, (value, _p, _l) in state.config_defaults.items()}
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        name = func.id if isinstance(func, ast.Name) else (
            func.attr if isinstance(func, ast.Attribute) else None
        )
        if name != _CONFIG_CLASS:
            continue
        overrides: Dict[str, float] = {}
        for keyword in node.keywords:
            if (
                keyword.arg is not None
                and isinstance(keyword.value, ast.Constant)
                and isinstance(keyword.value.value, (int, float))
                and not isinstance(keyword.value.value, bool)
            ):
                overrides[keyword.arg] = float(keyword.value.value)
        if not overrides:
            continue
        merged = dict(base)
        merged.update(overrides)
        for field, message in _config_violations(merged):
            if field not in overrides and not (
                field in ("beta1", "beta2")
                and any(k in overrides for k in ("beta1", "beta2", "beta3"))
            ):
                continue
            yield Finding(
                rule_id="NBL003",
                path=ctx.path,
                line=node.lineno,
                message=f"NebulaConfig(...) override violates a paper invariant: {message}",
                fix_hint="keep beta1 > beta2 > beta3 > 0 and bands within [0, 1]",
                snippet=ctx.snippet(node.lineno),
                details={"field": field, "overrides": overrides},
            )


# ----------------------------------------------------------------------
# NBL004 — edge-weight invariants
# ----------------------------------------------------------------------


def check_edge_weights(ctx: ModuleContext) -> Iterator[Finding]:
    for node in ast.walk(ctx.tree):
        # TRUE_EDGE_WEIGHT must be exactly 1.0 wherever it is (re)defined.
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if (
                isinstance(target, ast.Name)
                and target.id == "TRUE_EDGE_WEIGHT"
                and isinstance(node.value, ast.Constant)
                and isinstance(node.value.value, (int, float))
                and float(node.value.value) != 1.0
            ):
                yield Finding(
                    rule_id="NBL004",
                    path=ctx.path,
                    line=node.lineno,
                    message=(
                        f"TRUE_EDGE_WEIGHT is {node.value.value!r}; true edges "
                        "carry weight exactly 1.0 (paper Figure 2)"
                    ),
                    fix_hint="set TRUE_EDGE_WEIGHT = 1.0",
                    snippet=ctx.snippet(node.lineno),
                )
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        method = func.attr if isinstance(func, ast.Attribute) else (
            func.id if isinstance(func, ast.Name) else None
        )
        if method not in ("attach_predicted", "attach_true", "attach"):
            continue
        confidence: Optional[float] = None
        line = node.lineno
        for keyword in node.keywords:
            if (
                keyword.arg == "confidence"
                and isinstance(keyword.value, ast.Constant)
                and isinstance(keyword.value.value, (int, float))
            ):
                confidence = float(keyword.value.value)
        if confidence is None:
            continue
        kind = method
        if method == "attach":
            kind_text = ""
            for keyword in node.keywords:
                if keyword.arg == "kind":
                    kind_text = ast.unparse(keyword.value)
            if "PREDICTED" in kind_text:
                kind = "attach_predicted"
            elif "TRUE" in kind_text:
                kind = "attach_true"
            else:
                continue
        if kind == "attach_predicted" and not 0.0 < confidence < 1.0:
            yield Finding(
                rule_id="NBL004",
                path=ctx.path,
                line=line,
                message=(
                    f"predicted attachment carries confidence {confidence}; "
                    "predicted-edge weights must lie strictly in (0, 1)"
                ),
                fix_hint="use a confidence in (0, 1), or attach a true edge",
                snippet=ctx.snippet(line),
            )
        elif kind == "attach_true" and confidence != 1.0:
            yield Finding(
                rule_id="NBL004",
                path=ctx.path,
                line=line,
                message=(
                    f"true attachment carries confidence {confidence}; "
                    "true edges carry weight exactly 1.0"
                ),
                fix_hint="drop the confidence argument (true edges are weight 1.0)",
                snippet=ctx.snippet(line),
            )


# ----------------------------------------------------------------------
# NBL005 — span-name registry
# ----------------------------------------------------------------------

_TRACER_RECEIVER_RE = re.compile(r"(^|\.)_?tracer$", re.IGNORECASE)


def check_span_registry(ctx: ModuleContext) -> Iterator[Finding]:
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr == "span"
                and _TRACER_RECEIVER_RE.search(ast.unparse(func.value))
                and node.args
                and isinstance(node.args[0], ast.Constant)
                and isinstance(node.args[0].value, str)
            ):
                name = node.args[0].value
                if name not in CANONICAL_STAGES:
                    yield Finding(
                        rule_id="NBL005",
                        path=ctx.path,
                        line=node.lineno,
                        message=(
                            f"span name {name!r} is not in the canonical stage "
                            "registry (repro.observability.stages)"
                        ),
                        fix_hint=(
                            "register the stage in CANONICAL_STAGES or reuse "
                            "an existing stage name"
                        ),
                        snippet=ctx.snippet(node.lineno),
                        details={"span": name},
                    )
        if (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
            and node.targets[0].id == "SPAN_NAMES"
            and isinstance(node.value, ast.Dict)
        ):
            for value in node.value.values:
                if isinstance(value, ast.Constant) and isinstance(value.value, str):
                    if value.value not in CANONICAL_STAGES:
                        yield Finding(
                            rule_id="NBL005",
                            path=ctx.path,
                            line=value.lineno,
                            message=(
                                f"SPAN_NAMES value {value.value!r} is not in "
                                "the canonical stage registry"
                            ),
                            fix_hint="register the stage in CANONICAL_STAGES",
                            snippet=ctx.snippet(value.lineno),
                            details={"span": value.value},
                        )


# ----------------------------------------------------------------------
# NBL006 — resource hygiene
# ----------------------------------------------------------------------


#: Receivers whose ``.acquire()`` / ``.open_reader()`` results are leased
#: storage handles (as opposed to, say, a threading lock's acquire).
_POOLISH_RECEIVER_RE = re.compile(r"(pool|backend|storage)", re.IGNORECASE)


def _is_resource_call(node: ast.expr) -> Optional[str]:
    """The resource kind when ``node`` opens a storage handle.

    Recognized shapes: driver connects (``sqlite3.connect(...)`` and the
    compatibility adapter's ``compat.connect(...)`` /
    ``open_memory_connection()``), ``.cursor()``, and the backend layer's
    leases — ``<pool-ish>.acquire(...)`` / ``<pool-ish>.open_reader()``.
    The service layer's reader-ladder helpers (``acquire_reader`` /
    ``_acquire_reader``) count on *any* receiver: the name alone marks
    the result as a held read handle that must be released.
    """
    if not isinstance(node, ast.Call):
        return None
    func = node.func
    if isinstance(func, ast.Attribute):
        if func.attr == "connect" and isinstance(func.value, ast.Name) and (
            func.value.id in ("sqlite3", "compat")
        ):
            return "connect"
        if func.attr == "cursor":
            return "cursor"
        if func.attr in ("acquire_reader", "_acquire_reader"):
            return "reader"
        if func.attr in ("acquire", "open_reader") and _POOLISH_RECEIVER_RE.search(
            ast.unparse(func.value)
        ):
            return "lease" if func.attr == "acquire" else "reader"
    elif isinstance(func, ast.Name) and func.id == "open_memory_connection":
        return "connect"
    return None


def check_resource_hygiene(ctx: ModuleContext) -> Iterator[Finding]:
    if _is_test_path(ctx.path):
        return
    for func in _functions(ctx.tree):
        statements = _own_statements(func)
        module = _wrap(statements)
        opened: Dict[str, Tuple[int, str]] = {}
        for stmt in statements:
            if (
                isinstance(stmt, ast.Assign)
                and len(stmt.targets) == 1
                and isinstance(stmt.targets[0], ast.Name)
            ):
                kind = _is_resource_call(stmt.value)
                if kind is not None:
                    opened[stmt.targets[0].id] = (stmt.lineno, kind)
        if not opened:
            continue
        escaped: Set[str] = set()
        for node in ast.walk(module):
            if isinstance(node, (ast.Return, ast.Yield, ast.YieldFrom)):
                value = node.value
                if isinstance(value, ast.Name):
                    escaped.add(value.id)
            elif isinstance(node, ast.Assign):
                if isinstance(node.targets[0], ast.Attribute) and isinstance(
                    node.value, ast.Name
                ):
                    escaped.add(node.value.id)
            elif isinstance(node, ast.Call):
                func_node = node.func
                # x.close() / x.release() — explicit cleanup (release is
                # how a pool lease returns its connection).
                if (
                    isinstance(func_node, ast.Attribute)
                    and func_node.attr in ("close", "release")
                    and isinstance(func_node.value, ast.Name)
                ):
                    escaped.add(func_node.value.id)
                    continue
                # Handed to another component (incl. contextlib.closing).
                # An attribute hand-off (``handle.connection``, a bound
                # ``handle.release``) escapes the handle too: whoever
                # received it owns the cleanup now.
                for arg in list(node.args) + [k.value for k in node.keywords]:
                    if isinstance(arg, ast.Name):
                        escaped.add(arg.id)
                    elif isinstance(arg, ast.Attribute) and isinstance(
                        arg.value, ast.Name
                    ):
                        escaped.add(arg.value.id)
            elif isinstance(node, ast.With):
                for item in node.items:
                    expr = item.context_expr
                    if isinstance(expr, ast.Name):
                        escaped.add(expr.id)
        for name, (lineno, kind) in opened.items():
            if name in escaped:
                continue
            yield Finding(
                rule_id="NBL006",
                path=ctx.path,
                line=lineno,
                message=(
                    f"storage {kind} result {name!r} in {func.name!r} is "
                    "neither closed/released, context-managed, nor handed off"
                ),
                fix_hint=(
                    "wrap in `with contextlib.closing(...)` (or use the "
                    f"lease as a context manager) or call `{name}.close()` "
                    "on every path"
                ),
                snippet=ctx.snippet(lineno),
                details={"variable": name, "kind": kind},
            )


# ----------------------------------------------------------------------
# NBL007 — driver-import isolation
# ----------------------------------------------------------------------

#: The only package allowed to import the sqlite3 driver directly.
STORAGE_PACKAGE_MARKER = "repro/storage/"


def check_driver_imports(ctx: ModuleContext) -> Iterator[Finding]:
    """Flag direct ``sqlite3`` imports (plain or ``from``-style) outside
    the storage package (tests are exempt)."""
    if _is_test_path(ctx.path):
        return
    normalized = ctx.path.replace("\\", "/")
    if STORAGE_PACKAGE_MARKER in normalized:
        return
    for node in ast.walk(ctx.tree):
        imported: Optional[str] = None
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "sqlite3" or alias.name.startswith("sqlite3."):
                    imported = alias.name
        elif isinstance(node, ast.ImportFrom):
            module = node.module or ""
            if node.level == 0 and (
                module == "sqlite3" or module.startswith("sqlite3.")
            ):
                imported = module
        if imported is None:
            continue
        yield Finding(
            rule_id="NBL007",
            path=ctx.path,
            line=node.lineno,
            message=(
                f"direct {imported!r} import outside repro/storage/ — the "
                "driver is reachable only through the storage backend layer"
            ),
            fix_hint=(
                "import Connection/Cursor/connect from repro.storage.compat "
                "(or take a StorageBackend handle) instead of sqlite3"
            ),
            snippet=ctx.snippet(node.lineno),
            details={"module": imported},
        )


# ----------------------------------------------------------------------
# NBL008 — metric naming
# ----------------------------------------------------------------------

#: Receivers whose counter/gauge/histogram calls mint registry metrics.
_METRIC_RECEIVER_RE = re.compile(
    r"(^|\.)(_?(metrics|registry)|get_metrics\(\))$", re.IGNORECASE
)

#: The exposition naming grammar: nebula_-prefixed snake_case.
_METRIC_NAME_RE = re.compile(r"^nebula_[a-z0-9]+(_[a-z0-9]+)*$")

#: Series suffixes the Prometheus exposition reserves for histogram
#: output (``render_metrics`` appends them to every histogram family).
_RESERVED_METRIC_SUFFIXES = ("_bucket", "_sum", "_count")

#: The registry's instrument factory methods.
_METRIC_FACTORIES = frozenset({"counter", "gauge", "histogram"})


def _metric_name_argument(call: ast.Call) -> Optional[str]:
    """The literal instrument name at a factory call site, if any."""
    candidates = list(call.args[:1]) + [
        keyword.value for keyword in call.keywords if keyword.arg == "name"
    ]
    for argument in candidates:
        if isinstance(argument, ast.Constant) and isinstance(argument.value, str):
            return argument.value
    return None


def _histogram_observes_time(call: ast.Call) -> bool:
    """Whether a ``histogram(...)`` call uses the time buckets.

    True when the buckets argument is (or dotted-ends with) the
    ``TIME_BUCKETS`` constant — or is omitted, since ``TIME_BUCKETS``
    is the registry's default.
    """
    candidates = list(call.args[1:2]) + [
        keyword.value for keyword in call.keywords if keyword.arg == "buckets"
    ]
    if not candidates:
        return True
    return any(
        ast.unparse(argument).endswith("TIME_BUCKETS") for argument in candidates
    )


def _metric_name_problem(name: str, factory: str, call: ast.Call) -> Optional[str]:
    """The NBL008 violation message for one (name, factory) pair, if any."""
    if not _METRIC_NAME_RE.match(name):
        return (
            f"metric name {name!r} is not nebula_-prefixed snake_case "
            "(^nebula_[a-z0-9]+(_[a-z0-9]+)*$)"
        )
    for suffix in _RESERVED_METRIC_SUFFIXES:
        if name.endswith(suffix):
            return (
                f"metric name {name!r} ends with {suffix!r}, which the "
                "exposition format reserves for histogram series"
            )
    if factory == "counter" and not name.endswith("_total"):
        return f"counter {name!r} must carry the '_total' unit suffix"
    if factory != "counter" and name.endswith("_total"):
        return f"{factory} {name!r} may not end '_total' (counters only)"
    if (
        factory == "histogram"
        and _histogram_observes_time(call)
        and not name.endswith("_seconds")
    ):
        return (
            f"time histogram {name!r} (TIME_BUCKETS) must carry the "
            "'_seconds' unit suffix"
        )
    return None


def check_metric_naming(ctx: ModuleContext) -> Iterator[Finding]:
    """Flag literal metric names that break the exposition grammar."""
    if _is_test_path(ctx.path):
        return
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not (
            isinstance(func, ast.Attribute) and func.attr in _METRIC_FACTORIES
        ):
            continue
        if not _METRIC_RECEIVER_RE.search(ast.unparse(func.value)):
            continue
        name = _metric_name_argument(node)
        if name is None:
            continue
        problem = _metric_name_problem(name, func.attr, node)
        if problem is None:
            continue
        yield Finding(
            rule_id="NBL008",
            path=ctx.path,
            line=node.lineno,
            message=problem,
            fix_hint=(
                "use nebula_<layer>_<what>[_total|_seconds|_bytes]: "
                "snake_case, '_total' on counters, '_seconds' on time "
                "histograms, and never '_bucket'/'_sum'/'_count'"
            ),
            snippet=ctx.snippet(node.lineno),
            details={"metric": name, "factory": func.attr},
        )


# ----------------------------------------------------------------------
# NBL013 — versioned-table write discipline
# ----------------------------------------------------------------------

#: The one package allowed to mutate the versioned head tables in
#: place: its :class:`~repro.versioning.log.CommitLog` appends the
#: matching history row inside the same transaction, which is exactly
#: the invariant a raw UPDATE/DELETE elsewhere would silently break.
VERSIONING_WRITER_PACKAGE = "repro/versioning/"

#: In-place writes against a versioned table.  ``REPLACE INTO`` /
#: ``INSERT OR REPLACE`` are implicit DELETEs and count; plain INSERT
#: does not (the store inserts head rows and logs them separately).
#: The table names are anchored with ``\b`` so the singular
#: ``_nebula_annotation_history`` append tables never match.
_VERSIONED_WRITE_RE = re.compile(
    r"\b(?:UPDATE|DELETE\s+FROM|REPLACE\s+INTO|INSERT\s+OR\s+REPLACE\s+INTO)\s+"
    r'["\'`]?(?P<table>' + "|".join(VERSIONED_TABLES) + r")\b",
    re.IGNORECASE,
)


def _in_versioning_package(path: str) -> bool:
    return VERSIONING_WRITER_PACKAGE in path.replace("\\", "/")


def check_versioned_writes(ctx: ModuleContext) -> Iterator[Finding]:
    """NBL013: raw UPDATE/DELETE against a versioned table.

    ``_nebula_annotations`` / ``_nebula_attachments`` are the
    materialized head of the commit log; every in-place mutation must go
    through :mod:`repro.versioning` so the history append lands in the
    same transaction.  SQL that only *reads* those tables, and plain
    INSERTs (which the store pairs with a history append), stay legal
    everywhere.  Test modules are exempt — corrupting the head on
    purpose is how the recovery paths get exercised — but fixture
    modules under ``tests/fixtures/`` are linted as production code.
    """
    if _in_versioning_package(ctx.path) or _is_test_path(ctx.path):
        return
    funcs = list(_functions(ctx.tree))
    env_cache: Dict[int, Env] = {}

    def env_for(lineno: int) -> Env:
        best: Optional[ast.FunctionDef] = None
        for func in funcs:
            end = getattr(func, "end_lineno", None) or func.lineno
            if func.lineno <= lineno <= end:
                if best is None or func.lineno >= best.lineno:
                    best = func
        if best is None:
            return ctx.module_env
        if id(best) not in env_cache:
            env_cache[id(best)] = build_env(best.body, ctx.module_env)
        return env_cache[id(best)]

    for call, method in _execute_calls(ctx.tree.body):
        argument = _sql_argument(call)
        if argument is None:
            continue
        resolved = resolve_str(argument, env_for(call.lineno))
        if resolved.text is None:
            continue
        match = _VERSIONED_WRITE_RE.search(resolved.text)
        if match is None:
            continue
        yield Finding(
            rule_id="NBL013",
            path=ctx.path,
            line=call.lineno,
            message=(
                f"raw in-place write against versioned table "
                f"{match.group('table')!r} reaches {method}() outside "
                f"repro.versioning"
            ),
            fix_hint=(
                "route the mutation through repro.versioning.CommitLog "
                "(promote_attachment / delete_attachment / record_* ) so "
                "the history row is appended in the same transaction"
            ),
            snippet=ctx.snippet(call.lineno),
            details={
                "method": method,
                "table": match.group("table"),
                "end_line": getattr(call, "end_lineno", None) or call.lineno,
            },
        )


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------

RULE_DOCS: Dict[str, str] = {
    "NBL001": "string-built SQL at an execute site",
    "NBL002": "SAVEPOINT without matching RELEASE/ROLLBACK TO",
    "NBL003": "NebulaConfig defaults violate a paper invariant",
    "NBL004": "edge-weight constants/literals violate Figure 2 semantics",
    "NBL005": "tracer span name missing from the canonical stage registry",
    "NBL006": "storage connection/cursor/lease opened without cleanup",
    "NBL007": "direct sqlite3 import outside the storage backend package",
    "NBL008": "metric name violates the exposition naming grammar",
    "NBL009": "lock-guarded field mutated without its lock / inconsistent lock order",
    "NBL010": "sqlite handle escapes into another thread (submit/Thread/map)",
    "NBL011": "blocking call (execute/commit/wait/result/sleep) while holding a lock",
    "NBL012": "Condition.wait outside a while-predicate loop, or wait/notify without the lock",
    "NBL013": "raw UPDATE/DELETE against a versioned table outside repro.versioning",
}

ALL_RULE_IDS: Tuple[str, ...] = tuple(sorted(RULE_DOCS))
