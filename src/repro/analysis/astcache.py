"""A shared parse cache: every file is read and parsed exactly once.

Before the interprocedural core landed, each rule re-walked its module
and the engine owned the only parse.  Now the module graph, the call
graph, the concurrency summaries, and every per-file rule pass all need
the same trees — so parsing moved behind :class:`AstCache`, which hands
out immutable :class:`ParsedModule` records keyed by path.

The cache is thread-safe: the engine's worker pool (see
``analyze_paths(..., jobs=N)``) may request modules concurrently while
the graph builders hold references to the same records.  Records are
never mutated after construction, so sharing them across threads is
free; the lock only guards the dictionary itself.
"""

from __future__ import annotations

import ast
import re
import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set

_IGNORE_RE = re.compile(
    r"#\s*nebula-lint:\s*ignore(?:\[(?P<rules>[A-Z0-9,\s]+)\])?"
)


class AnalysisError(Exception):
    """A file could not be read or parsed."""


def parse_inline_ignores(source: str) -> Dict[int, Optional[Set[str]]]:
    """line -> suppressed rule ids (``None`` means all rules)."""
    ignores: Dict[int, Optional[Set[str]]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _IGNORE_RE.search(line)
        if not match:
            continue
        rules = match.group("rules")
        if rules is None:
            ignores[lineno] = None
        else:
            ignores[lineno] = {r.strip() for r in rules.split(",") if r.strip()}
    return ignores


@dataclass(frozen=True)
class ParsedModule:
    """One parsed source file, shared read-only by every analysis layer."""

    path: str
    source: str
    tree: ast.Module
    lines: Sequence[str] = field(default_factory=tuple)
    #: Inline ``# nebula-lint: ignore`` map (line -> rule ids or None).
    ignores: Dict[int, Optional[Set[str]]] = field(default_factory=dict)

    def snippet(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""


def load_module(path: str) -> ParsedModule:
    """Read and parse one file (no caching)."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            source = handle.read()
    except OSError as exc:
        raise AnalysisError(f"{path}: cannot read: {exc}") from exc
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        raise AnalysisError(f"{path}: syntax error: {exc}") from exc
    return ParsedModule(
        path=path,
        source=source,
        tree=tree,
        lines=tuple(source.splitlines()),
        ignores=parse_inline_ignores(source),
    )


class AstCache:
    """Thread-safe path -> :class:`ParsedModule` cache."""

    def __init__(self) -> None:
        self._modules: Dict[str, ParsedModule] = {}
        self._lock = threading.Lock()

    def load(self, path: str) -> ParsedModule:
        """The parsed module for ``path``, parsing it on first request."""
        with self._lock:
            cached = self._modules.get(path)
        if cached is not None:
            return cached
        module = load_module(path)
        with self._lock:
            # Two threads racing on a cold path both parse; the records
            # are identical and immutable, so last-write-wins is fine.
            self._modules[path] = module
        return module

    def modules(self) -> List[ParsedModule]:
        """Every cached module, in insertion (discovery) order."""
        with self._lock:
            return list(self._modules.values())

    def __contains__(self, path: str) -> bool:
        with self._lock:
            return path in self._modules

    def __len__(self) -> int:
        with self._lock:
            return len(self._modules)
