"""Structured findings emitted by the nebula-lint rules.

A :class:`Finding` pinpoints one violation: rule id, file, line, a
human message, and a machine-checkable fix hint.  Findings serialize to
JSON (``--format json``), SARIF (``--format sarif``), and a one-line
human format, and carry a stable *fingerprint* used by the baseline
workflow.

The fingerprint (v2) hashes the rule id, the file path, the enclosing
function's display name, and the *whitespace-normalized* offending
snippet — not its line number.  Compared with the v1 scheme (rule,
path, raw snippet), v2 survives two extra classes of benign churn that
used to resurrect baselined findings:

* re-indenting or re-wrapping the offending line (normalization
  collapses all runs of whitespace), and
* the same snippet text appearing in two different functions (the
  enclosing-def component keeps their fingerprints distinct, so fixing
  one occurrence no longer silently absorbs the other).

:attr:`Finding.legacy_fingerprint` still computes the v1 hash so
version-1 baseline files keep matching until they are rewritten (see
:mod:`repro.analysis.baseline`).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Dict


def _normalize_snippet(snippet: str) -> str:
    """Collapse whitespace runs so reformatting keeps the fingerprint."""
    return " ".join(snippet.split())


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule_id: str
    path: str
    line: int
    message: str
    fix_hint: str = ""
    #: The offending source line, stripped (fingerprint input + context).
    snippet: str = ""
    #: Display name of the enclosing function/method (``Class.method``),
    #: attached by the engine; "" at module level.  Not serialized —
    #: the JSON shape predates it and stays byte-stable.
    function: str = field(default="", compare=False)
    #: Extra rule-specific details (offending name, resolved text, ...).
    details: Dict[str, Any] = field(default_factory=dict, compare=False)

    @property
    def fingerprint(self) -> str:
        """Line-number-insensitive identity for baseline suppression (v2)."""
        digest = hashlib.sha256(
            f"{self.rule_id}\x00{self.path}\x00{self.function}"
            f"\x00{_normalize_snippet(self.snippet)}".encode()
        )
        return digest.hexdigest()[:16]

    @property
    def legacy_fingerprint(self) -> str:
        """The v1 fingerprint, kept so old baseline files still match."""
        digest = hashlib.sha256(
            f"{self.rule_id}\x00{self.path}\x00{self.snippet}".encode()
        )
        return digest.hexdigest()[:16]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "rule_id": self.rule_id,
            "path": self.path,
            "line": self.line,
            "message": self.message,
            "fix_hint": self.fix_hint,
            "snippet": self.snippet,
            "fingerprint": self.fingerprint,
            "details": dict(self.details),
        }

    def format(self) -> str:
        """``path:line: RULE message (hint: ...)``."""
        text = f"{self.path}:{self.line}: {self.rule_id} {self.message}"
        if self.fix_hint:
            text += f"  [fix: {self.fix_hint}]"
        return text
