"""Structured findings emitted by the nebula-lint rules.

A :class:`Finding` pinpoints one violation: rule id, file, line, a
human message, and a machine-checkable fix hint.  Findings serialize to
JSON (``--json``) and to a one-line human format, and carry a stable
*fingerprint* used by the baseline workflow: the fingerprint hashes the
rule id, the file path, and the offending source line's text — not its
line number — so unrelated edits above a suppressed finding do not
resurrect it.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Dict


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule_id: str
    path: str
    line: int
    message: str
    fix_hint: str = ""
    #: The offending source line, stripped (fingerprint input + context).
    snippet: str = ""
    #: Extra rule-specific details (offending name, resolved text, ...).
    details: Dict[str, Any] = field(default_factory=dict, compare=False)

    @property
    def fingerprint(self) -> str:
        """Line-number-insensitive identity for baseline suppression."""
        digest = hashlib.sha256(
            f"{self.rule_id}\x00{self.path}\x00{self.snippet}".encode()
        )
        return digest.hexdigest()[:16]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "rule_id": self.rule_id,
            "path": self.path,
            "line": self.line,
            "message": self.message,
            "fix_hint": self.fix_hint,
            "snippet": self.snippet,
            "fingerprint": self.fingerprint,
            "details": dict(self.details),
        }

    def format(self) -> str:
        """``path:line: RULE message (hint: ...)``."""
        text = f"{self.path}:{self.line}: {self.rule_id} {self.message}"
        if self.fix_hint:
            text += f"  [fix: {self.fix_hint}]"
        return text
