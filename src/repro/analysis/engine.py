"""The nebula-lint analysis engine.

Walks a source tree (or explicit file list), parses each Python module
once, runs a two-pass analysis — pass one collects cross-module facts
(``NebulaConfig`` literal defaults for NBL003), pass two runs every
enabled rule — and filters the raw findings through inline ignores.

Inline suppression::

    cur.execute(sql + tail)  # nebula-lint: ignore[NBL001]
    risky_line()             # nebula-lint: ignore

The bare form suppresses every rule on that line; the bracketed form
suppresses only the listed rule ids (comma-separated).
"""

from __future__ import annotations

import ast
import os
import re
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from .findings import Finding
from .rules import (
    ALL_RULE_IDS,
    ModuleContext,
    SharedState,
    check_config_invariants,
    check_driver_imports,
    check_edge_weights,
    check_metric_naming,
    check_resource_hygiene,
    check_savepoint_pairing,
    check_span_registry,
    check_sql_safety,
    collect_config_defaults,
)

_IGNORE_RE = re.compile(
    r"#\s*nebula-lint:\s*ignore(?:\[(?P<rules>[A-Z0-9,\s]+)\])?"
)

#: Directory names never descended into.
_SKIP_DIRS = frozenset(
    {".git", "__pycache__", ".mypy_cache", ".ruff_cache", "build", "dist"}
)


def iter_python_files(paths: Sequence[str]) -> Iterator[str]:
    """Yield .py files under each path (files are yielded as-is)."""
    for path in paths:
        if os.path.isfile(path):
            if path.endswith(".py"):
                yield path
            continue
        for root, dirs, files in os.walk(path):
            dirs[:] = sorted(d for d in dirs if d not in _SKIP_DIRS)
            for name in sorted(files):
                if name.endswith(".py"):
                    yield os.path.join(root, name)


def _inline_ignores(source: str) -> Dict[int, Optional[Set[str]]]:
    """line -> suppressed rule ids (``None`` means all rules)."""
    ignores: Dict[int, Optional[Set[str]]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _IGNORE_RE.search(line)
        if not match:
            continue
        rules = match.group("rules")
        if rules is None:
            ignores[lineno] = None
        else:
            ignores[lineno] = {r.strip() for r in rules.split(",") if r.strip()}
    return ignores


def _is_suppressed(
    finding: Finding, ignores: Dict[int, Optional[Set[str]]]
) -> bool:
    """True when an inline ignore covers the finding.

    A finding anchored on a multi-line statement (``end_line`` in its
    details) is suppressed by an ignore comment on *any* line of the
    statement — the comment naturally lives next to the offending
    interpolation, which may not be the statement's first line.
    """
    end = int(finding.details.get("end_line", finding.line))
    for lineno in range(finding.line, max(finding.line, end) + 1):
        if lineno not in ignores:
            continue
        suppressed = ignores[lineno]
        if suppressed is None or finding.rule_id in suppressed:
            return True
    return False


class AnalysisError(Exception):
    """A file could not be read or parsed."""


def _load(path: str) -> Tuple[str, ast.Module]:
    try:
        with open(path, "r", encoding="utf-8") as handle:
            source = handle.read()
    except OSError as exc:
        raise AnalysisError(f"{path}: cannot read: {exc}") from exc
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        raise AnalysisError(f"{path}: syntax error: {exc}") from exc
    return source, tree


def analyze_paths(
    paths: Sequence[str],
    rules: Optional[Iterable[str]] = None,
) -> List[Finding]:
    """Run the enabled rules over every Python file under ``paths``.

    Returns findings sorted by (path, line, rule id), already filtered
    through inline ``# nebula-lint: ignore`` comments.  Unparseable
    files raise :class:`AnalysisError` — a lint run over a broken tree
    should fail loudly, not skip silently.
    """
    enabled = set(rules) if rules is not None else set(ALL_RULE_IDS)
    unknown = enabled.difference(ALL_RULE_IDS)
    if unknown:
        raise ValueError(f"unknown rule ids: {', '.join(sorted(unknown))}")

    for path in paths:
        if not os.path.exists(path):
            raise AnalysisError(f"{path}: no such file or directory")

    modules: List[Tuple[ModuleContext, Dict[int, Optional[Set[str]]]]] = []
    state = SharedState()
    for path in iter_python_files(paths):
        source, tree = _load(path)
        ctx = ModuleContext(path, tree, source)
        modules.append((ctx, _inline_ignores(source)))
        collect_config_defaults(ctx, state)

    findings: List[Finding] = []
    for ctx, ignores in modules:
        raw: List[Finding] = []
        if "NBL001" in enabled:
            raw.extend(check_sql_safety(ctx))
        if "NBL002" in enabled:
            raw.extend(check_savepoint_pairing(ctx))
        if "NBL003" in enabled:
            raw.extend(check_config_invariants(ctx, state))
        if "NBL004" in enabled:
            raw.extend(check_edge_weights(ctx))
        if "NBL005" in enabled:
            raw.extend(check_span_registry(ctx))
        if "NBL006" in enabled:
            raw.extend(check_resource_hygiene(ctx))
        if "NBL007" in enabled:
            raw.extend(check_driver_imports(ctx))
        if "NBL008" in enabled:
            raw.extend(check_metric_naming(ctx))
        for finding in raw:
            if _is_suppressed(finding, ignores):
                continue
            findings.append(finding)

    findings.sort(key=lambda f: (f.path, f.line, f.rule_id))
    return findings
