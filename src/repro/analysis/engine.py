"""The nebula-lint analysis engine.

Walks a source tree (or explicit file list) and runs the full pipeline:

1. **parse** — every file is read and parsed exactly once into the
   shared :class:`~repro.analysis.astcache.AstCache`;
2. **project pass** — cross-module facts are computed over the whole
   cache: ``NebulaConfig`` literal defaults (NBL003), the
   module/class/call graph, per-function concurrency summaries with the
   blocking and escape fixpoints (NBL009–NBL012), and the SQL taint
   fixpoints that upgrade NBL001 to interprocedural;
3. **rule pass** — per-file rule checks run independently per module,
   optionally across a thread pool (``jobs``), reading the immutable
   project indexes;
4. **filter** — raw findings flow through inline ignores and get their
   enclosing function attached (for the v2 fingerprint).

Per-file passes are embarrassingly parallel once the project indexes
exist: every shared structure is immutable after step 2, so the worker
pool needs no locking and the output is byte-identical for any ``jobs``
value (findings are sorted at the end).

Inline suppression::

    cur.execute(sql + tail)  # nebula-lint: ignore[NBL001]
    risky_line()             # nebula-lint: ignore

The bare form suppresses every rule on that line; the bracketed form
suppresses only the listed rule ids (comma-separated).
"""

from __future__ import annotations

import dataclasses
import os
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from .astcache import AnalysisError, AstCache, ParsedModule, parse_inline_ignores
from .concurrency import (
    ConcurrencyIndex,
    check_blocking_under_lock,
    check_condition_hygiene,
    check_lock_discipline,
    check_thread_affinity,
)
from .findings import Finding
from .graphs import ProjectGraph, build_project_graph
from .interproc import SqlFlowIndex
from .rules import (
    ALL_RULE_IDS,
    ModuleContext,
    SharedState,
    check_config_invariants,
    check_driver_imports,
    check_edge_weights,
    check_metric_naming,
    check_resource_hygiene,
    check_savepoint_pairing,
    check_span_registry,
    check_sql_safety,
    check_versioned_writes,
    collect_config_defaults,
)

__all__ = [
    "AnalysisError",
    "AnalysisResult",
    "ProjectState",
    "analyze_paths",
    "iter_python_files",
    "run_analysis",
]

#: Directory names never descended into.
_SKIP_DIRS = frozenset(
    {".git", "__pycache__", ".mypy_cache", ".ruff_cache", "build", "dist"}
)


def iter_python_files(paths: Sequence[str]) -> Iterator[str]:
    """Yield .py files under each path (files are yielded as-is)."""
    for path in paths:
        if os.path.isfile(path):
            if path.endswith(".py"):
                yield path
            continue
        for root, dirs, files in os.walk(path):
            dirs[:] = sorted(d for d in dirs if d not in _SKIP_DIRS)
            for name in sorted(files):
                if name.endswith(".py"):
                    yield os.path.join(root, name)


def _inline_ignores(source: str) -> Dict[int, Optional[Set[str]]]:
    """line -> suppressed rule ids (``None`` means all rules)."""
    return parse_inline_ignores(source)


def _is_suppressed(
    finding: Finding, ignores: Dict[int, Optional[Set[str]]]
) -> bool:
    """True when an inline ignore covers the finding.

    A finding anchored on a multi-line statement (``end_line`` in its
    details) is suppressed by an ignore comment on *any* line of the
    statement — the comment naturally lives next to the offending
    interpolation, which may not be the statement's first line.
    """
    end = int(finding.details.get("end_line", finding.line))
    for lineno in range(finding.line, max(finding.line, end) + 1):
        if lineno not in ignores:
            continue
        suppressed = ignores[lineno]
        if suppressed is None or finding.rule_id in suppressed:
            return True
    return False


class ProjectState:
    """Every immutable cross-module index the per-file passes read."""

    def __init__(self, modules: Sequence[ParsedModule]) -> None:
        self.cache_order: Tuple[ParsedModule, ...] = tuple(modules)
        self.shared = SharedState()
        self.contexts: Dict[str, ModuleContext] = {}
        for parsed in modules:
            ctx = ModuleContext(parsed.path, parsed.tree, parsed.source)
            self.contexts[parsed.path] = ctx
            collect_config_defaults(ctx, self.shared)
        self.graph: ProjectGraph = build_project_graph(modules)
        self.sql_flow: SqlFlowIndex = SqlFlowIndex.build(self.graph)
        self.concurrency: ConcurrencyIndex = ConcurrencyIndex.build(self.graph)

    def enclosing_function(self, path: str, lineno: int) -> str:
        """Display name of the innermost function containing ``lineno``."""
        modinfo = self.graph.by_path.get(path)
        if modinfo is None:
            return ""
        best = None
        for func in modinfo.functions.values():
            node = func.node
            end = getattr(node, "end_lineno", None) or node.lineno
            if node.lineno <= lineno <= end:
                if best is None or node.lineno >= best.node.lineno:
                    best = func
        return best.display if best is not None else ""


def _file_findings(
    state: ProjectState, parsed: ParsedModule, enabled: Set[str]
) -> List[Finding]:
    """Every enabled rule over one module (thread-safe: reads only)."""
    ctx = state.contexts[parsed.path]
    raw: List[Finding] = []
    if "NBL001" in enabled:
        raw.extend(
            check_sql_safety(ctx, call_resolver=state.sql_flow.call_resolver())
        )
        raw.extend(state.sql_flow.call_site_findings(ctx.path, ctx.snippet))
    if "NBL002" in enabled:
        raw.extend(check_savepoint_pairing(ctx))
    if "NBL003" in enabled:
        raw.extend(check_config_invariants(ctx, state.shared))
    if "NBL004" in enabled:
        raw.extend(check_edge_weights(ctx))
    if "NBL005" in enabled:
        raw.extend(check_span_registry(ctx))
    if "NBL006" in enabled:
        raw.extend(check_resource_hygiene(ctx))
    if "NBL007" in enabled:
        raw.extend(check_driver_imports(ctx))
    if "NBL008" in enabled:
        raw.extend(check_metric_naming(ctx))
    if "NBL009" in enabled:
        raw.extend(check_lock_discipline(ctx, state.concurrency))
    if "NBL010" in enabled:
        raw.extend(check_thread_affinity(ctx, state.concurrency))
    if "NBL011" in enabled:
        raw.extend(check_blocking_under_lock(ctx, state.concurrency))
    if "NBL012" in enabled:
        raw.extend(check_condition_hygiene(ctx, state.concurrency))
    if "NBL013" in enabled:
        raw.extend(check_versioned_writes(ctx))

    out: List[Finding] = []
    for finding in raw:
        if _is_suppressed(finding, parsed.ignores):
            continue
        out.append(
            dataclasses.replace(
                finding,
                function=state.enclosing_function(finding.path, finding.line),
            )
        )
    return out


@dataclasses.dataclass
class AnalysisResult:
    """Findings plus wall-clock phase timings (seconds)."""

    findings: List[Finding]
    timings: Dict[str, float]
    file_count: int
    jobs: int


def run_analysis(
    paths: Sequence[str],
    rules: Optional[Iterable[str]] = None,
    jobs: Optional[int] = None,
) -> AnalysisResult:
    """The full pipeline with timings; see module docstring for phases.

    ``jobs`` sizes the per-file rule-pass worker pool (default: one
    worker per CPU, capped at 8; ``1`` keeps everything on the calling
    thread).  The result is identical for every ``jobs`` value.
    """
    enabled = set(rules) if rules is not None else set(ALL_RULE_IDS)
    unknown = enabled.difference(ALL_RULE_IDS)
    if unknown:
        raise ValueError(f"unknown rule ids: {', '.join(sorted(unknown))}")

    for path in paths:
        if not os.path.exists(path):
            raise AnalysisError(f"{path}: no such file or directory")

    timings: Dict[str, float] = {}
    started = time.perf_counter()

    cache = AstCache()
    modules = [cache.load(path) for path in iter_python_files(paths)]
    timings["parse"] = time.perf_counter() - started

    mark = time.perf_counter()
    state = ProjectState(modules)
    timings["project"] = time.perf_counter() - mark

    mark = time.perf_counter()
    if jobs is None:
        jobs = min(os.cpu_count() or 1, 8)
    jobs = max(1, jobs)
    findings: List[Finding] = []
    if jobs == 1 or len(modules) <= 1:
        for parsed in modules:
            findings.extend(_file_findings(state, parsed, enabled))
    else:
        with ThreadPoolExecutor(max_workers=jobs) as pool:
            for batch in pool.map(
                lambda parsed: _file_findings(state, parsed, enabled), modules
            ):
                findings.extend(batch)
    timings["rules"] = time.perf_counter() - mark

    findings.sort(key=lambda f: (f.path, f.line, f.rule_id))
    timings["total"] = time.perf_counter() - started
    return AnalysisResult(
        findings=findings,
        timings=timings,
        file_count=len(modules),
        jobs=jobs,
    )


def analyze_paths(
    paths: Sequence[str],
    rules: Optional[Iterable[str]] = None,
    jobs: Optional[int] = None,
) -> List[Finding]:
    """Run the enabled rules over every Python file under ``paths``.

    Returns findings sorted by (path, line, rule id), already filtered
    through inline ``# nebula-lint: ignore`` comments.  Unparseable
    files raise :class:`AnalysisError` — a lint run over a broken tree
    should fail loudly, not skip silently.
    """
    return run_analysis(paths, rules=rules, jobs=jobs).findings
