"""NBL009–NBL012: the interprocedural concurrency rules.

All four rules consume the same substrate — the project call graph
(:mod:`repro.analysis.graphs`) joined with per-function lock/field/wait
summaries (:mod:`repro.analysis.summaries`) — assembled once per run
into a :class:`ConcurrencyIndex`:

NBL009 — lock discipline
    A field the class ever mutates under a lock must be guarded at
    *every* mutation site outside ``__init__``.  Fields that are never
    lock-guarded anywhere are deliberately exempt: a single-writer
    design (the service's writer-thread counters) is a documented
    lock-free fast path, not a race.  A private ``*_locked``-style
    helper inherits its callers' guards when every intraclass call site
    holds a lock.  Classes with two or more locks must acquire them in
    one global order.

NBL010 — connection thread-affinity
    A sqlite handle opened through ``compat``/pool/``open_reader`` must
    not flow into work shipped to another thread: closures (or the
    handle itself) passed to ``executor.submit``/``executor.map``/
    ``threading.Thread``, directly or through a project function whose
    parameter provably reaches such a sink (the escape fixpoint).

NBL011 — blocking call under lock
    No ``execute``/``commit``, untimed ``Condition``/``Event`` wait,
    ``Submission.result``, ``time.sleep``, or blocking socket call
    while holding a ``threading`` lock — directly or transitively: a
    helper that blocks, called under a lock, is the same bug two frames
    deeper.  The single-writer flush sites listed in
    :data:`DESIGNED_BLOCKING_SITES` are the *designed* exception (the
    write lock exists precisely to serialize those flushes) and carry
    the justification here instead of inline noise.

NBL012 — condition-variable hygiene
    ``Condition.wait`` only inside a ``while``-predicate loop (wakeups
    are advisory), and only while holding the condition; ``notify``/
    ``notify_all`` only while holding the owning lock — lexically, or
    interprocedurally when every call site of the notifying helper
    holds it.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

from .findings import Finding
from .graphs import FunctionInfo, ProjectGraph
from .rules import ModuleContext, _is_resource_call, _matches_any
from .summaries import FieldWrite, MethodSummary, summarize_project

#: (path suffix, Class.method) pairs whose blocking-under-lock is the
#: design: the annotation service's single-writer flush paths hold the
#: write lock *in order to* serialize ``BEGIN``/insert/``COMMIT``
#: against last-resort reads on the primary connection.  Readers only
#: take that lock when every reader fallback is exhausted, and the lock
#: scope is exactly one coalesced batch — see docs/service.md.
DESIGNED_BLOCKING_SITES: Tuple[Tuple[str, str], ...] = (
    ("service/service.py", "AnnotationService._flush"),
    ("service/service.py", "AnnotationService._flush_individually"),
)

#: Executor-ish receivers whose ``.map`` ships work to worker threads.
_EXECUTORISH = ("executor", "pool", "thread", "workers")


@dataclass
class ConcurrencyIndex:
    """Summaries + blocking/escape fixpoints over the call graph."""

    graph: ProjectGraph
    summaries: Dict[str, MethodSummary] = field(default_factory=dict)
    #: qualname -> (kind, human chain) for functions that may block.
    may_block: Dict[str, Tuple[str, str]] = field(default_factory=dict)
    #: qualname -> param names that reach a thread sink inside.
    thread_escapes: Dict[str, Tuple[str, ...]] = field(default_factory=dict)

    @classmethod
    def build(cls, graph: ProjectGraph) -> "ConcurrencyIndex":
        index = cls(graph=graph, summaries=summarize_project(graph))
        index._compute_may_block()
        index._compute_thread_escapes()
        return index

    # -- NBL011 substrate ----------------------------------------------

    def _compute_may_block(self) -> None:
        for qualname, summary in self.summaries.items():
            if summary.blocking_ops:
                op = summary.blocking_ops[0]
                self.may_block[qualname] = (
                    op.kind,
                    f"{summary.func.display}() {op.kind}s at "
                    f"{_tail(summary.func.module.path)}:{op.lineno}",
                )
        changed = True
        while changed:
            changed = False
            for qualname, func in self.graph.functions.items():
                if qualname in self.may_block:
                    continue
                for site in func.call_sites:
                    blocked = next(
                        (
                            c
                            for c in site.candidates
                            if c in self.may_block
                        ),
                        None,
                    )
                    if blocked is None:
                        continue
                    kind, chain = self.may_block[blocked]
                    self.may_block[qualname] = (
                        kind,
                        f"{func.display}() -> {chain}",
                    )
                    changed = True
                    break

    # -- NBL010 substrate ----------------------------------------------

    def _function_conn_vars(self, func: FunctionInfo) -> Dict[str, int]:
        """Local name -> line for handles opened from resource calls."""
        out: Dict[str, int] = {}
        for node in _own_walk(func.node):
            if (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and _is_resource_call(node.value) is not None
            ):
                out[node.targets[0].id] = node.lineno
        return out

    def _local_closures(
        self, func: FunctionInfo
    ) -> Dict[str, Set[str]]:
        """Nested def name -> free variable names it captures."""
        out: Dict[str, Set[str]] = {}
        for node in ast.walk(func.node):
            if node is func.node or not isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                continue
            out[node.name] = _free_names(node)
        return out

    def _sink_hits(
        self, func: FunctionInfo, conn_vars: Set[str]
    ) -> Iterator[Tuple[ast.Call, str, str]]:
        """(call, conn name, how) for conn values reaching thread sinks."""
        closures = self._local_closures(func)

        def carried(expr: ast.expr) -> Optional[Tuple[str, str]]:
            if isinstance(expr, ast.Name):
                if expr.id in conn_vars:
                    return expr.id, "handle"
                captured = closures.get(expr.id, set()) & conn_vars
                if captured:
                    return sorted(captured)[0], f"closure {expr.id!r}"
            if isinstance(expr, ast.Lambda):
                captured = _free_names(expr) & conn_vars
                if captured:
                    return sorted(captured)[0], "lambda"
            if isinstance(expr, (ast.Tuple, ast.List)):
                for elt in expr.elts:
                    hit = carried(elt)
                    if hit is not None:
                        return hit
            return None

        for node in _own_walk(func.node):
            if not isinstance(node, ast.Call):
                continue
            kind = _sink_kind(node, func)
            if kind is None:
                continue
            for argument in list(node.args) + [
                kw.value for kw in node.keywords
            ]:
                hit = carried(argument)
                if hit is not None:
                    name, how = hit
                    yield node, name, f"{how} -> {kind}"

    def _escape_call_hits(
        self, func: FunctionInfo, conn_vars: Set[str]
    ) -> Iterator[Tuple[ast.Call, str, str]]:
        """conn values handed into another function's escaping param."""
        for site in func.call_sites:
            for candidate in site.candidates:
                escaping = set(self.thread_escapes.get(candidate, ()))
                if not escaping:
                    continue
                callee = self.graph.functions[candidate]
                names = _callee_params(callee)
                for position, argument in enumerate(site.call.args):
                    if (
                        position < len(names)
                        and names[position] in escaping
                        and isinstance(argument, ast.Name)
                        and argument.id in conn_vars
                    ):
                        yield (
                            site.call,
                            argument.id,
                            f"{callee.display}({names[position]}=...) "
                            "hands it to a worker thread",
                        )
                for keyword in site.call.keywords:
                    if (
                        keyword.arg in escaping
                        and isinstance(keyword.value, ast.Name)
                        and keyword.value.id in conn_vars
                    ):
                        yield (
                            site.call,
                            keyword.value.id,
                            f"{callee.display}({keyword.arg}=...) "
                            "hands it to a worker thread",
                        )

    def _compute_thread_escapes(self) -> None:
        changed = True
        rounds = 0
        while changed and rounds < 10:
            changed = False
            rounds += 1
            for qualname, func in self.graph.functions.items():
                known = set(self.thread_escapes.get(qualname, ()))
                for param in _callee_params(func):
                    if param in known:
                        continue
                    hits = list(self._sink_hits(func, {param})) + list(
                        self._escape_call_hits(func, {param})
                    )
                    if hits:
                        known.add(param)
                        changed = True
                if known:
                    self.thread_escapes[qualname] = tuple(sorted(known))


# ----------------------------------------------------------------------
# NBL009 — lock discipline
# ----------------------------------------------------------------------


def check_lock_discipline(
    ctx: ModuleContext, index: ConcurrencyIndex
) -> Iterator[Finding]:
    modinfo = index.graph.by_path.get(ctx.path)
    if modinfo is None:
        return
    for cls in modinfo.classes.values():
        writes: Dict[str, List[Tuple[FieldWrite, MethodSummary]]] = {}
        pairs: List[Tuple[str, str, int, str]] = []
        for method in cls.methods.values():
            summary = index.summaries.get(method.qualname)
            if summary is None:
                continue
            inherited = _inherited_guards(index, cls.name, method)
            for write in summary.field_writes:
                effective = write.guards | inherited
                writes.setdefault(write.field, []).append(
                    (
                        FieldWrite(
                            field=write.field,
                            lineno=write.lineno,
                            end_line=write.end_line,
                            guards=effective,
                            in_init=write.in_init,
                            via=write.via,
                        ),
                        summary,
                    )
                )
            for held, acquired, lineno in summary.lock_pairs:
                pairs.append((held, acquired, lineno, method.display))

        for field_name, sites in sorted(writes.items()):
            locked = [
                (w, s) for w, s in sites if w.guards and not w.in_init
            ]
            unlocked = [
                (w, s) for w, s in sites if not w.guards and not w.in_init
            ]
            if not locked or not unlocked:
                continue
            guard = sorted(locked[0][0].guards)[0]
            guarded_in = locked[0][1].func.display
            for write, summary in unlocked:
                yield Finding(
                    rule_id="NBL009",
                    path=ctx.path,
                    line=write.lineno,
                    message=(
                        f"{cls.name}.{field_name} is mutated under {guard} "
                        f"in {guarded_in}() but written without a lock in "
                        f"{summary.func.display}() — every mutation site "
                        "must hold the same guard"
                    ),
                    fix_hint=(
                        f"wrap the write in `with {guard}:` (or document "
                        "the field as single-writer and drop the lock at "
                        "the other sites)"
                    ),
                    snippet=ctx.snippet(write.lineno),
                    details={
                        "class": cls.name,
                        "field": field_name,
                        "guard": guard,
                        "end_line": write.end_line,
                    },
                )

        yield from _lock_order_findings(ctx, cls.name, pairs)


def _lock_order_findings(
    ctx: ModuleContext,
    class_name: str,
    pairs: List[Tuple[str, str, int, str]],
) -> Iterator[Finding]:
    first_seen: Dict[Tuple[str, str], Tuple[int, str]] = {}
    for held, acquired, lineno, method in pairs:
        if held == acquired:
            continue
        key = (held, acquired)
        if key not in first_seen:
            first_seen[key] = (lineno, method)
    reported: Set[FrozenSet[str]] = set()
    for (held, acquired), (lineno, method) in sorted(
        first_seen.items(), key=lambda item: item[1][0]
    ):
        inverse = first_seen.get((acquired, held))
        unordered = frozenset((held, acquired))
        if inverse is None or unordered in reported:
            continue
        reported.add(unordered)
        other_line, other_method = inverse
        line = max(lineno, other_line)
        yield Finding(
            rule_id="NBL009",
            path=ctx.path,
            line=line,
            message=(
                f"{class_name} acquires {held} then {acquired} in "
                f"{method}() (line {lineno}) but {acquired} then {held} "
                f"in {other_method}() (line {other_line}) — inconsistent "
                "lock order can deadlock"
            ),
            fix_hint="pick one global acquisition order for the class's locks",
            snippet=ctx.snippet(line),
            details={
                "class": class_name,
                "locks": sorted(unordered),
            },
        )


def _inherited_guards(
    index: ConcurrencyIndex, class_name: str, method: FunctionInfo
) -> FrozenSet[str]:
    """Guards a private helper inherits from its intraclass callers.

    When every call site of ``_helper`` inside the class holds a lock,
    writes inside ``_helper`` are effectively guarded by the
    intersection of those call-site guard sets (the ``*_locked`` helper
    idiom).  Public methods inherit nothing: they are callable from
    anywhere.
    """
    if not method.name.startswith("_") or method.name.startswith("__"):
        return frozenset()
    guard_sets: List[FrozenSet[str]] = []
    for sibling in method.module.classes[class_name].methods.values():
        if sibling.qualname == method.qualname:
            continue
        summary = index.summaries.get(sibling.qualname)
        if summary is None:
            continue
        for site in sibling.call_sites:
            if method.qualname in site.candidates:
                guard_sets.append(
                    summary.guards_at.get(id(site.call), frozenset())
                )
    if not guard_sets or any(not guards for guards in guard_sets):
        return frozenset()
    inherited = set(guard_sets[0])
    for guards in guard_sets[1:]:
        inherited &= guards
    return frozenset(inherited)


# ----------------------------------------------------------------------
# NBL010 — connection thread-affinity
# ----------------------------------------------------------------------


def check_thread_affinity(
    ctx: ModuleContext, index: ConcurrencyIndex
) -> Iterator[Finding]:
    modinfo = index.graph.by_path.get(ctx.path)
    if modinfo is None:
        return
    for func in modinfo.functions.values():
        conn_vars = index._function_conn_vars(func)
        if not conn_vars:
            continue
        names = set(conn_vars)
        seen: Set[Tuple[int, str]] = set()
        hits = list(index._sink_hits(func, names)) + list(
            index._escape_call_hits(func, names)
        )
        for call, conn_name, how in hits:
            key = (call.lineno, conn_name)
            if key in seen:
                continue
            seen.add(key)
            yield Finding(
                rule_id="NBL010",
                path=ctx.path,
                line=call.lineno,
                message=(
                    f"sqlite handle {conn_name!r} (opened at line "
                    f"{conn_vars[conn_name]}) crosses a thread boundary: "
                    f"{how} — sqlite handles are thread-affine"
                ),
                fix_hint=(
                    "open the connection inside the worker (per-thread "
                    "handles, as ParallelSqlExecutor does) instead of "
                    "capturing the caller's handle"
                ),
                snippet=ctx.snippet(call.lineno),
                details={
                    "variable": conn_name,
                    "opened_line": conn_vars[conn_name],
                    "end_line": getattr(call, "end_lineno", None)
                    or call.lineno,
                },
            )


# ----------------------------------------------------------------------
# NBL011 — blocking call under lock
# ----------------------------------------------------------------------


def _is_designed_blocking(func: FunctionInfo) -> bool:
    for suffix, qualified in DESIGNED_BLOCKING_SITES:
        if (
            _matches_any(func.module.path, (suffix,))
            and func.display == qualified
        ):
            return True
    return False


def check_blocking_under_lock(
    ctx: ModuleContext, index: ConcurrencyIndex
) -> Iterator[Finding]:
    modinfo = index.graph.by_path.get(ctx.path)
    if modinfo is None:
        return
    for func in modinfo.functions.values():
        if func.name == "__init__":
            # Construction happens before the object is shared; a lock
            # taken there cannot contend with another thread yet.
            continue
        if _is_designed_blocking(func):
            continue
        summary = index.summaries.get(func.qualname)
        if summary is None:
            continue
        flagged_lines: Set[int] = set()
        for op in summary.blocking_ops:
            if not op.guards:
                continue
            flagged_lines.add(op.lineno)
            held = ", ".join(sorted(op.guards))
            yield Finding(
                rule_id="NBL011",
                path=ctx.path,
                line=op.lineno,
                message=(
                    f"blocking {op.kind} ({op.detail}) while holding "
                    f"{held} in {func.display}() — lock hold times must "
                    "stay bounded"
                ),
                fix_hint=(
                    "move the blocking call outside the lock, or bound "
                    "it with a timeout"
                ),
                snippet=ctx.snippet(op.lineno),
                details={
                    "kind": op.kind,
                    "guards": sorted(op.guards),
                    "end_line": op.end_line,
                },
            )
        for site in func.call_sites:
            guards = summary.guards_at.get(id(site.call), frozenset())
            if not guards or site.lineno in flagged_lines:
                continue
            blocked = next(
                (c for c in site.candidates if c in index.may_block), None
            )
            if blocked is None:
                continue
            kind, chain = index.may_block[blocked]
            held = ", ".join(sorted(guards))
            flagged_lines.add(site.lineno)
            yield Finding(
                rule_id="NBL011",
                path=ctx.path,
                line=site.lineno,
                message=(
                    f"call to {site.callee_text}() while holding {held} "
                    f"in {func.display}() blocks transitively: {chain}"
                ),
                fix_hint=(
                    "hoist the blocking work out of the locked region "
                    "(probe/create connections outside the lock, mutate "
                    "state inside it)"
                ),
                snippet=ctx.snippet(site.lineno),
                details={
                    "kind": kind,
                    "guards": sorted(guards),
                    "chain": chain,
                    "end_line": getattr(site.call, "end_lineno", None)
                    or site.lineno,
                },
            )


# ----------------------------------------------------------------------
# NBL012 — condition-variable hygiene
# ----------------------------------------------------------------------


def check_condition_hygiene(
    ctx: ModuleContext, index: ConcurrencyIndex
) -> Iterator[Finding]:
    modinfo = index.graph.by_path.get(ctx.path)
    if modinfo is None:
        return
    for func in modinfo.functions.values():
        summary = index.summaries.get(func.qualname)
        if summary is None:
            continue
        for wait in summary.cond_waits:
            if wait.key not in wait.guards:
                yield Finding(
                    rule_id="NBL012",
                    path=ctx.path,
                    line=wait.lineno,
                    message=(
                        f"{wait.key}.wait() in {func.display}() without "
                        f"holding {wait.key} — wait() requires its own "
                        "lock (RuntimeError at runtime, lost wakeups in "
                        "tests)"
                    ),
                    fix_hint=f"wrap the wait in `with {wait.key}:`",
                    snippet=ctx.snippet(wait.lineno),
                    details={"condition": wait.key, "end_line": wait.end_line},
                )
            elif not wait.in_while:
                yield Finding(
                    rule_id="NBL012",
                    path=ctx.path,
                    line=wait.lineno,
                    message=(
                        f"{wait.key}.wait() in {func.display}() is not "
                        "inside a while-predicate loop — wakeups are "
                        "advisory (spurious wakeups, stolen items), so "
                        "the predicate must be re-checked after every "
                        "wait"
                    ),
                    fix_hint=(
                        "loop `while not <predicate>:` around the wait "
                        "and re-check after waking"
                    ),
                    snippet=ctx.snippet(wait.lineno),
                    details={"condition": wait.key, "end_line": wait.end_line},
                )
        for notify in summary.cond_notifies:
            if notify.key in notify.guards:
                continue
            if _all_callers_hold(index, func, notify.key):
                continue
            yield Finding(
                rule_id="NBL012",
                path=ctx.path,
                line=notify.lineno,
                message=(
                    f"{notify.key}.{notify.method}() in {func.display}() "
                    f"without holding {notify.key} — notify requires the "
                    "owning lock"
                ),
                fix_hint=(
                    f"take `with {notify.key}:` around the state change "
                    "and the notify"
                ),
                snippet=ctx.snippet(notify.lineno),
                details={"condition": notify.key, "end_line": notify.end_line},
            )


def _all_callers_hold(
    index: ConcurrencyIndex, func: FunctionInfo, key: str
) -> bool:
    """Whether every project call site of ``func`` holds ``key``."""
    sites = 0
    for caller in index.graph.functions.values():
        summary = index.summaries.get(caller.qualname)
        if summary is None:
            continue
        for site in caller.call_sites:
            if func.qualname not in site.candidates:
                continue
            sites += 1
            if key not in summary.guards_at.get(id(site.call), frozenset()):
                return False
    return sites > 0


# ----------------------------------------------------------------------
# helpers
# ----------------------------------------------------------------------


def _tail(path: str, parts: int = 2) -> str:
    pieces = path.replace("\\", "/").split("/")
    return "/".join(pieces[-parts:])


def _own_walk(func_node: ast.AST) -> Iterator[ast.AST]:
    stack: List[ast.AST] = list(getattr(func_node, "body", []))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def _callee_params(func: FunctionInfo) -> List[str]:
    args = func.node.args  # type: ignore[attr-defined]
    names = [a.arg for a in list(args.posonlyargs) + list(args.args)]
    if func.is_method and names and names[0] in ("self", "cls"):
        names = names[1:]
    return names


def _free_names(node: ast.AST) -> Set[str]:
    """Names a nested def/lambda reads but does not bind itself."""
    bound: Set[str] = set()
    args = getattr(node, "args", None)
    if args is not None:
        for arg in (
            list(args.posonlyargs)
            + list(args.args)
            + list(args.kwonlyargs)
            + ([args.vararg] if args.vararg else [])
            + ([args.kwarg] if args.kwarg else [])
        ):
            bound.add(arg.arg)
    loaded: Set[str] = set()
    body = getattr(node, "body", [])
    nodes = body if isinstance(body, list) else [body]
    for child in nodes:
        for sub in ast.walk(child):
            if isinstance(sub, ast.Name):
                if isinstance(sub.ctx, ast.Load):
                    loaded.add(sub.id)
                else:
                    bound.add(sub.id)
    return loaded - bound


def _sink_kind(call: ast.Call, func: FunctionInfo) -> Optional[str]:
    """The thread-boundary kind of a call, if it ships work to threads."""
    callee = call.func
    if isinstance(callee, ast.Attribute):
        if callee.attr == "submit":
            return "submit"
        if callee.attr == "map":
            receiver = ast.unparse(callee.value).lower()
            if any(marker in receiver for marker in _EXECUTORISH):
                return "map"
        if callee.attr == "Thread" and isinstance(callee.value, ast.Name):
            target = func.module.imports.get(callee.value.id, callee.value.id)
            if target == "threading":
                return "Thread"
        return None
    if isinstance(callee, ast.Name):
        target = func.module.imports.get(callee.id, "")
        if target == "threading.Thread":
            return "Thread"
    return None
