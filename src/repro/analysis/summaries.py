"""Per-function concurrency summaries: locks held, fields written, waits.

For every function in the project graph this module computes a
:class:`MethodSummary` by a single guard-tracking walk over the
function's own statements (nested defs and lambdas are separate scopes
with their own summaries):

* **held-lock tracking** — ``with self._lock:`` blocks and linear
  ``lock.acquire()`` / ``lock.release()`` pairs, where the receiver's
  type is known (from ``__init__`` field inference or parameter
  annotations) to be a ``threading`` synchronizer;
* **field writes** — assignments and augmented assignments to
  ``self.<field>``, plus mutating method calls (``append``, ``pop``,
  ``update``, …) on receivers rooted at a ``self`` field, each tagged
  with the guard set held at the write;
* **blocking operations** — ``execute``/``executemany``/
  ``executescript``/``commit`` on any receiver, untimed
  ``Condition``/``Event`` ``wait()``, ``.result(...)``, ``time.sleep``,
  and blocking socket calls, each tagged with the held guards (an
  untimed condition wait is exempt from its *own* condition — waiting
  releases it — but still counts against any other held lock);
* **condition-variable operations** — every typed ``wait``/``notify``
  with its loop context and held guards (NBL012's raw material);
* **lock-order pairs** — ``(A, B)`` whenever lock B is acquired while A
  is held, for NBL009's consistent-acquisition-order check;
* **guard sets at call sites** — ``id(call) -> held locks``, which the
  rules join with the call graph for interprocedural reasoning (a
  helper that blocks, called under a lock, is NBL011; a ``*_locked``
  helper whose every caller holds the lock inherits the guard for
  NBL009).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple

from .graphs import FunctionInfo, ProjectGraph

#: Synchronizer types whose ``with``/acquire makes code "hold a lock".
LOCK_TYPES = frozenset(
    {
        "threading.Lock",
        "threading.RLock",
        "threading.Condition",
        "threading.Semaphore",
        "threading.BoundedSemaphore",
    }
)

CONDITION_TYPE = "threading.Condition"
EVENT_TYPE = "threading.Event"

#: Method names that mutate their receiver in place.
MUTATING_METHODS = frozenset(
    {
        "append",
        "appendleft",
        "add",
        "clear",
        "discard",
        "extend",
        "insert",
        "pop",
        "popitem",
        "popleft",
        "remove",
        "setdefault",
        "sort",
        "update",
    }
)

#: SQL execution entry points (mirrors rules.EXECUTE_METHODS + commit).
_EXECUTE_LIKE = frozenset({"execute", "executemany", "executescript", "commit"})

#: Socket methods that block on the peer.
_SOCKET_BLOCKING = frozenset({"recv", "recvfrom", "sendall", "accept"})


@dataclass(frozen=True)
class FieldWrite:
    field: str
    lineno: int
    end_line: int
    guards: FrozenSet[str]
    in_init: bool
    via: str  #: "assign" | "augassign" | "mutate:<method>"


@dataclass(frozen=True)
class BlockingOp:
    kind: str  #: execute/commit/wait/result/sleep/socket
    lineno: int
    end_line: int
    detail: str  #: short source text of the operation
    guards: FrozenSet[str]  #: locks held (own condition already removed)


@dataclass(frozen=True)
class CondWait:
    key: str  #: source text of the condition receiver
    lineno: int
    end_line: int
    in_while: bool
    has_timeout: bool
    guards: FrozenSet[str]


@dataclass(frozen=True)
class CondNotify:
    key: str
    lineno: int
    end_line: int
    method: str  #: notify / notify_all
    guards: FrozenSet[str]


@dataclass
class MethodSummary:
    func: FunctionInfo
    field_writes: List[FieldWrite] = field(default_factory=list)
    blocking_ops: List[BlockingOp] = field(default_factory=list)
    cond_waits: List[CondWait] = field(default_factory=list)
    cond_notifies: List[CondNotify] = field(default_factory=list)
    #: (held key, acquired key, line) — acquisition-order observations.
    lock_pairs: List[Tuple[str, str, int]] = field(default_factory=list)
    #: id(ast.Call) -> guard keys held when the call executes.
    guards_at: Dict[int, FrozenSet[str]] = field(default_factory=dict)

    @property
    def uses_locks(self) -> bool:
        return bool(self.lock_pairs or any(self.guards_at.values()))


def _end(node: ast.AST) -> int:
    return getattr(node, "end_lineno", None) or node.lineno


def _short(node: ast.AST, limit: int = 60) -> str:
    try:
        text = ast.unparse(node)
    except Exception:  # pragma: no cover - exotic nodes
        text = type(node).__name__
    return text if len(text) <= limit else text[: limit - 3] + "..."


class _Summarizer:
    def __init__(self, func: FunctionInfo, graph: ProjectGraph) -> None:
        self.func = func
        self.graph = graph
        self.out = MethodSummary(func=func)
        self.in_init = func.name == "__init__"

    # -- typing helpers ------------------------------------------------

    def _type_of(self, expr: ast.expr) -> Optional[str]:
        """Synchronizer/class type of a receiver expression, if known."""
        if (
            isinstance(expr, ast.Attribute)
            and isinstance(expr.value, ast.Name)
            and expr.value.id == "self"
        ):
            return self.graph.field_type(self.func, expr.attr)
        if isinstance(expr, ast.Name):
            return self.graph.local_types(self.func).get(expr.id)
        return None

    def _lock_key(self, expr: ast.expr) -> Optional[str]:
        """Guard key when ``expr`` is a known synchronizer, else None."""
        typed = self._type_of(expr)
        if typed in LOCK_TYPES:
            return ast.unparse(expr)
        return None

    # -- expression processing -----------------------------------------

    def _calls_in(self, expr: ast.expr) -> List[ast.Call]:
        """Call nodes evaluated as part of ``expr`` (lambdas excluded)."""
        out: List[ast.Call] = []
        stack: List[ast.AST] = [expr]
        while stack:
            node = stack.pop()
            if isinstance(node, ast.Lambda):
                continue
            if isinstance(node, ast.Call):
                out.append(node)
            stack.extend(ast.iter_child_nodes(node))
        return out

    def _process_expr(
        self, expr: ast.expr, held: Tuple[str, ...], in_while: bool
    ) -> None:
        for call in self._calls_in(expr):
            self._handle_call(call, held, in_while)

    def _handle_call(
        self, call: ast.Call, held: Tuple[str, ...], in_while: bool
    ) -> None:
        self.out.guards_at[id(call)] = frozenset(held)
        func = call.func
        if not isinstance(func, ast.Attribute):
            return
        attr = func.attr
        receiver = func.value
        receiver_type = self._type_of(receiver)

        if attr in _EXECUTE_LIKE:
            self._blocking(attr if attr == "commit" else "execute", call, held)
            return

        if attr in ("wait", "wait_for"):
            has_timeout = bool(call.args) or any(
                kw.arg == "timeout" for kw in call.keywords
            )
            if attr == "wait_for":
                # wait_for(predicate, timeout=None): the timeout is the
                # second positional argument, not the first.
                has_timeout = len(call.args) >= 2 or any(
                    kw.arg == "timeout" for kw in call.keywords
                )
            if receiver_type == CONDITION_TYPE:
                key = ast.unparse(receiver)
                self.out.cond_waits.append(
                    CondWait(
                        key=key,
                        lineno=call.lineno,
                        end_line=_end(call),
                        in_while=in_while,
                        has_timeout=has_timeout,
                        guards=frozenset(held),
                    )
                )
                if not has_timeout:
                    # Waiting releases its own condition; every *other*
                    # held lock stays held for the unbounded sleep.
                    self._blocking(
                        "wait", call, tuple(k for k in held if k != key)
                    )
            elif receiver_type == EVENT_TYPE and not has_timeout:
                self._blocking("wait", call, held)
            return

        if attr in ("notify", "notify_all"):
            if receiver_type == CONDITION_TYPE:
                self.out.cond_notifies.append(
                    CondNotify(
                        key=ast.unparse(receiver),
                        lineno=call.lineno,
                        end_line=_end(call),
                        method=attr,
                        guards=frozenset(held),
                    )
                )
            return

        if attr == "result":
            self._blocking("result", call, held)
            return

        if attr == "sleep":
            dotted = receiver
            if isinstance(dotted, ast.Name):
                target = self.func.module.imports.get(dotted.id, dotted.id)
                if target == "time":
                    self._blocking("sleep", call, held)
            return

        if attr in _SOCKET_BLOCKING:
            self._blocking("socket", call, held)
            return

        if attr in MUTATING_METHODS:
            root = _self_field_root(receiver)
            if root is not None:
                self.out.field_writes.append(
                    FieldWrite(
                        field=root,
                        lineno=call.lineno,
                        end_line=_end(call),
                        guards=frozenset(held),
                        in_init=self.in_init,
                        via=f"mutate:{attr}",
                    )
                )

    def _blocking(
        self, kind: str, call: ast.Call, held: Tuple[str, ...]
    ) -> None:
        self.out.blocking_ops.append(
            BlockingOp(
                kind=kind,
                lineno=call.lineno,
                end_line=_end(call),
                detail=_short(call),
                guards=frozenset(held),
            )
        )

    # -- statement walk ------------------------------------------------

    def run(self) -> MethodSummary:
        self._walk(getattr(self.func.node, "body", []), (), False)
        return self.out

    def _record_write_targets(
        self, stmt: ast.stmt, held: Tuple[str, ...]
    ) -> None:
        targets: List[ast.expr] = []
        via = "assign"
        if isinstance(stmt, ast.Assign):
            targets = list(stmt.targets)
        elif isinstance(stmt, ast.AnnAssign):
            targets = [stmt.target]
        elif isinstance(stmt, ast.AugAssign):
            targets = [stmt.target]
            via = "augassign"
        for target in targets:
            for leaf in _assign_leaves(target):
                root = _self_field_root(leaf)
                if root is not None:
                    self.out.field_writes.append(
                        FieldWrite(
                            field=root,
                            lineno=stmt.lineno,
                            end_line=_end(stmt),
                            guards=frozenset(held),
                            in_init=self.in_init,
                            via=via,
                        )
                    )

    def _walk(
        self,
        stmts: List[ast.stmt],
        held: Tuple[str, ...],
        in_while: bool,
    ) -> None:
        current = held
        for stmt in stmts:
            if isinstance(
                stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue

            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                acquired: List[str] = []
                for item in stmt.items:
                    self._process_expr(item.context_expr, current, in_while)
                    key = self._lock_key(item.context_expr)
                    if key is not None:
                        for prior in tuple(current) + tuple(acquired):
                            self.out.lock_pairs.append(
                                (prior, key, stmt.lineno)
                            )
                        acquired.append(key)
                self._walk(stmt.body, current + tuple(acquired), in_while)
                continue

            # Linear acquire()/release() on a known synchronizer.
            if (
                isinstance(stmt, ast.Expr)
                and isinstance(stmt.value, ast.Call)
                and isinstance(stmt.value.func, ast.Attribute)
                and stmt.value.func.attr in ("acquire", "release")
            ):
                key = self._lock_key(stmt.value.func.value)
                self._process_expr(stmt.value, current, in_while)
                if key is not None:
                    if stmt.value.func.attr == "acquire":
                        for prior in current:
                            self.out.lock_pairs.append(
                                (prior, key, stmt.lineno)
                            )
                        current = current + (key,)
                    else:
                        current = tuple(k for k in current if k != key)
                continue

            if isinstance(stmt, ast.While):
                # The test is re-evaluated every iteration, so a wait in
                # ``while not cond.wait(t):`` counts as loop-guarded.
                self._process_expr(stmt.test, current, True)
                self._walk(stmt.body, current, True)
                self._walk(stmt.orelse, current, in_while)
                continue

            self._record_write_targets(stmt, current)

            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self._process_expr(child, current, in_while)

            if isinstance(stmt, (ast.For, ast.AsyncFor)):
                self._walk(stmt.body, current, in_while)
                self._walk(stmt.orelse, current, in_while)
            elif isinstance(stmt, ast.If):
                self._walk(stmt.body, current, in_while)
                self._walk(stmt.orelse, current, in_while)
            elif isinstance(stmt, (ast.Try, getattr(ast, "TryStar", ast.Try))):
                self._walk(stmt.body, current, in_while)
                for handler in stmt.handlers:
                    self._walk(handler.body, current, in_while)
                self._walk(stmt.orelse, current, in_while)
                self._walk(stmt.finalbody, current, in_while)
            elif isinstance(stmt, ast.Match):
                for case in stmt.cases:
                    self._walk(case.body, current, in_while)


def _self_field_root(expr: ast.expr) -> Optional[str]:
    """``_state`` for ``self._state.idle`` / ``self._state``; else None."""
    chain: List[str] = []
    node = expr
    while isinstance(node, ast.Attribute):
        chain.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name) and node.id == "self" and chain:
        return chain[-1]
    return None


def _assign_leaves(target: ast.expr) -> List[ast.expr]:
    """Flatten tuple/starred targets; unwrap subscripts to their base."""
    if isinstance(target, (ast.Tuple, ast.List)):
        out: List[ast.expr] = []
        for elt in target.elts:
            out.extend(_assign_leaves(elt))
        return out
    if isinstance(target, ast.Starred):
        return _assign_leaves(target.value)
    if isinstance(target, ast.Subscript):
        # ``self._cache[key] = v`` mutates the container field.
        return _assign_leaves(target.value)
    return [target]


def summarize_function(func: FunctionInfo, graph: ProjectGraph) -> MethodSummary:
    return _Summarizer(func, graph).run()


def summarize_project(graph: ProjectGraph) -> Dict[str, MethodSummary]:
    """qualname -> summary for every function in the graph."""
    return {
        qualname: summarize_function(func, graph)
        for qualname, func in graph.functions.items()
    }
