"""Constant propagation for SQL-string expressions.

The SQL-safety and savepoint rules need to answer one question about the
expression reaching ``execute()``: *what text does it evaluate to, and is
every dynamic piece provably safe?*  :func:`resolve_str` classifies an
expression into four safety levels:

``LITERAL``
    Fully determined at parse time (string constants, concatenation and
    f-strings of constants, constants propagated through local names).
``SAFE_DYNAMIC``
    Dynamic, but every dynamic piece is a registered safe-identifier
    call (``quote_identifier``/``quote_qualified``), a ``?``-placeholder
    join, or a branch over safe alternatives.  The resolved text keeps a
    marker (:data:`SAFE_MARK`) where safe identifiers are spliced.
``UNSAFE``
    A string-building expression (f-string, ``%``, ``+``, ``.format``,
    ``.join``) with at least one piece that is neither constant nor
    provably safe — the injection shape rule NBL001 exists to catch.
``UNKNOWN``
    An opaque value (function parameter, attribute, call result).  Bare
    unknowns are *not* flagged: cross-function SQL flow (for example
    ``execute_rows(sql, params)``) is covered by the construction-site
    rules in the module that built the string, not by the execute site.

The asymmetry is deliberate: an explicit string-building expression at
the execute site is judged strictly (unknown pieces make it UNSAFE),
while an opaque variable is trusted (UNKNOWN).  That is exactly the
reviewer's intuition — ``execute(f"... {x}")`` is a bug on sight, while
``execute(sql, params)`` needs whole-program knowledge to judge.
"""

from __future__ import annotations

import ast
import enum
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

#: Calls whose result may be spliced into SQL text (identifier quoting).
SAFE_IDENTIFIER_FUNCS = frozenset({"quote_identifier", "quote_qualified"})

#: Stand-in for a safely quoted identifier in resolved SQL text.
SAFE_MARK = "\x00id\x00"


class Safety(enum.IntEnum):
    """Ordered safety lattice; combining takes the worst (largest)."""

    LITERAL = 0
    SAFE_DYNAMIC = 1
    UNKNOWN = 2
    UNSAFE = 3


@dataclass(frozen=True)
class Resolution:
    """Outcome of resolving one expression."""

    safety: Safety
    #: Resolved text for LITERAL / SAFE_DYNAMIC expressions.
    text: Optional[str] = None
    #: Source snippet of the piece that made the expression unsafe.
    cause: str = ""

    @property
    def is_sql_safe(self) -> bool:
        return self.safety in (Safety.LITERAL, Safety.SAFE_DYNAMIC)


UNKNOWN = Resolution(Safety.UNKNOWN)

#: Environment: local/module variable name -> its resolution.
Env = Dict[str, Resolution]

#: Optional hook consulted for opaque call expressions.  The
#: interprocedural layer (:mod:`repro.analysis.interproc`) supplies one
#: that resolves project-function calls through the call graph; when it
#: returns ``None`` (or no hook is installed) the call stays UNKNOWN,
#: which is exactly the PR-3 per-statement behavior.
CallResolver = Callable[[ast.Call], Optional[Resolution]]


def _unparse(node: ast.AST, limit: int = 80) -> str:
    try:
        text = ast.unparse(node)
    except Exception:  # pragma: no cover - unparse failure on exotic nodes
        text = ast.dump(node)
    return text if len(text) <= limit else text[: limit - 3] + "..."


def _combine(parts: List[Resolution]) -> Resolution:
    """Concatenate piecewise resolutions, taking the worst safety."""
    worst = Safety.LITERAL
    texts = []
    cause = ""
    for part in parts:
        if part.safety > worst:
            worst = part.safety
            cause = part.cause
        texts.append(part.text if part.text is not None else "")
    text = "".join(texts) if worst <= Safety.SAFE_DYNAMIC else None
    return Resolution(worst, text, cause)


def _is_safe_identifier_call(node: ast.AST) -> bool:
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    name = func.id if isinstance(func, ast.Name) else (
        func.attr if isinstance(func, ast.Attribute) else None
    )
    return name in SAFE_IDENTIFIER_FUNCS


def resolve_str(
    node: ast.AST,
    env: Optional[Env] = None,
    call_resolver: Optional[CallResolver] = None,
) -> Resolution:
    """Resolve an expression to (safety, text) under ``env``."""
    env = env or {}

    if isinstance(node, ast.Constant):
        if isinstance(node.value, str):
            return Resolution(Safety.LITERAL, node.value)
        if isinstance(node.value, (int, float)):
            return Resolution(Safety.LITERAL, str(node.value))
        return UNKNOWN

    if isinstance(node, ast.JoinedStr):
        parts = []
        for piece in node.values:
            if isinstance(piece, ast.Constant):
                parts.append(Resolution(Safety.LITERAL, str(piece.value)))
                continue
            assert isinstance(piece, ast.FormattedValue)
            inner = piece.value
            if _is_safe_identifier_call(inner):
                parts.append(Resolution(Safety.SAFE_DYNAMIC, SAFE_MARK))
                continue
            resolved = resolve_str(inner, env, call_resolver)
            if resolved.is_sql_safe:
                parts.append(resolved)
            else:
                # Interpolating an opaque value is the injection shape:
                # inside an f-string, UNKNOWN hardens to UNSAFE.
                parts.append(
                    Resolution(Safety.UNSAFE, cause=_unparse(inner))
                )
        return _combine(parts)

    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Add):
        left = resolve_str(node.left, env, call_resolver)
        right = resolve_str(node.right, env, call_resolver)
        if Safety.UNKNOWN in (left.safety, right.safety):
            # ``literal + unknown`` is explicit string building — unsafe;
            # but only when the other side looks like SQL text at all.
            other = right if left.safety is Safety.UNKNOWN else left
            if other.safety is Safety.UNKNOWN:
                return UNKNOWN
            unknown_node = node.left if left.safety is Safety.UNKNOWN else node.right
            return Resolution(Safety.UNSAFE, cause=_unparse(unknown_node))
        return _combine([left, right])

    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Mod):
        # ``"..." % values`` — fine when everything is constant.
        left = resolve_str(node.left, env, call_resolver)
        if left.safety is Safety.LITERAL and _all_literal(node.right, env, call_resolver):
            return Resolution(Safety.LITERAL, None)
        return Resolution(Safety.UNSAFE, cause=_unparse(node))

    if isinstance(node, ast.IfExp):
        body = resolve_str(node.body, env, call_resolver)
        orelse = resolve_str(node.orelse, env, call_resolver)
        worst = max(body.safety, orelse.safety)
        if worst <= Safety.SAFE_DYNAMIC:
            # Branch texts differ; keep the body's for pattern matching
            # but demote to SAFE_DYNAMIC (the text is no longer exact).
            return Resolution(Safety.SAFE_DYNAMIC, body.text)
        return Resolution(worst, cause=body.cause or orelse.cause)

    if isinstance(node, ast.Call):
        return _resolve_call(node, env, call_resolver)

    if isinstance(node, ast.Name):
        return env.get(node.id, UNKNOWN)

    return UNKNOWN


def _all_literal(
    node: ast.AST, env: Env, call_resolver: Optional[CallResolver] = None
) -> bool:
    if isinstance(node, (ast.Tuple, ast.List)):
        return all(_all_literal(elt, env, call_resolver) for elt in node.elts)
    return resolve_str(node, env, call_resolver).safety is Safety.LITERAL


def _resolve_call(
    node: ast.Call, env: Env, call_resolver: Optional[CallResolver] = None
) -> Resolution:
    if _is_safe_identifier_call(node):
        return Resolution(Safety.SAFE_DYNAMIC, SAFE_MARK)

    if call_resolver is not None:
        resolved = call_resolver(node)
        if resolved is not None:
            return resolved

    func = node.func
    if isinstance(func, ast.Attribute) and func.attr == "join" and node.args:
        # ``sep.join(elements)``: safe when the separator is constant and
        # every element (or comprehension element) is constant or safe.
        sep = resolve_str(func.value, env, call_resolver)
        if not sep.is_sql_safe:
            return UNKNOWN
        arg = node.args[0]
        element: Optional[ast.AST] = None
        if isinstance(arg, ast.Name):
            # A clause list tracked by build_env (all-literal elements,
            # literal appends) joins safely; anything else stays opaque.
            resolved = env.get(arg.id, UNKNOWN)
            if resolved.is_sql_safe:
                return Resolution(Safety.SAFE_DYNAMIC, resolved.text)
            return UNKNOWN
        if isinstance(arg, (ast.GeneratorExp, ast.ListComp, ast.SetComp)):
            element = arg.elt
        elif isinstance(arg, (ast.List, ast.Tuple)) and arg.elts:
            resolved = [resolve_str(e, env, call_resolver) for e in arg.elts]
            joined = _combine(resolved)
            if joined.is_sql_safe:
                sep_text = sep.text or ""
                texts = [r.text or "" for r in resolved]
                return Resolution(joined.safety, sep_text.join(texts))
            return Resolution(Safety.UNSAFE, cause=_unparse(node))
        if element is not None:
            if _is_safe_identifier_call(element):
                return Resolution(Safety.SAFE_DYNAMIC, SAFE_MARK)
            resolved = resolve_str(element, env, call_resolver)
            if resolved.is_sql_safe:
                return Resolution(Safety.SAFE_DYNAMIC, resolved.text)
            return Resolution(Safety.UNSAFE, cause=_unparse(element))
        return UNKNOWN

    if isinstance(func, ast.Attribute) and func.attr == "format":
        base = resolve_str(func.value, env, call_resolver)
        if base.safety is Safety.LITERAL and all(
            _all_literal(a, env, call_resolver) for a in node.args
        ) and all(_all_literal(k.value, env, call_resolver) for k in node.keywords):
            return Resolution(Safety.LITERAL, None)
        return Resolution(Safety.UNSAFE, cause=_unparse(node))

    return UNKNOWN


def build_env(
    statements: Sequence[ast.stmt],
    module_env: Optional[Env] = None,
    call_resolver: Optional[CallResolver] = None,
) -> Env:
    """Forward pass over ``statements`` resolving simple local constants.

    Handles single-target ``name = expr`` and ``name += expr`` (string
    accumulation).  Flow-insensitive within branches: assignments inside
    ``if``/``for``/``try`` bodies are visited in source order, which is
    exact for the linear string-building patterns this codebase uses.
    """
    env: Env = dict(module_env or {})

    def resolve_value(value: ast.expr) -> Resolution:
        if isinstance(value, (ast.List, ast.Tuple)):
            # Track clause lists: safe iff every element is safe.  The
            # resolution carries no text (the separator is unknown until
            # a ``join``), only the safety verdict.
            parts = [resolve_str(elt, env, call_resolver) for elt in value.elts]
            if all(p.is_sql_safe for p in parts):
                return Resolution(Safety.SAFE_DYNAMIC if parts else Safety.LITERAL)
            return UNKNOWN
        return resolve_str(value, env, call_resolver)

    def visit(stmts: Sequence[ast.stmt]) -> None:
        for stmt in stmts:
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target = stmt.targets[0]
                if isinstance(target, ast.Name):
                    env[target.id] = resolve_value(stmt.value)
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                if isinstance(stmt.target, ast.Name):
                    env[stmt.target.id] = resolve_value(stmt.value)
            elif (
                isinstance(stmt, ast.Expr)
                and isinstance(stmt.value, ast.Call)
                and isinstance(stmt.value.func, ast.Attribute)
                and stmt.value.func.attr in ("append", "extend")
                and isinstance(stmt.value.func.value, ast.Name)
            ):
                # ``clauses.append(...)`` — an unsafe addition poisons the
                # tracked list back to opaque.
                name = stmt.value.func.value.id
                if name in env and env[name].is_sql_safe:
                    additions = [
                        resolve_str(a, env, call_resolver)
                        for a in stmt.value.args
                    ]
                    if not all(a.is_sql_safe for a in additions):
                        env[name] = UNKNOWN
                    else:
                        env[name] = Resolution(Safety.SAFE_DYNAMIC)
            elif isinstance(stmt, ast.AugAssign) and isinstance(stmt.op, ast.Add):
                if isinstance(stmt.target, ast.Name):
                    current = env.get(stmt.target.id, UNKNOWN)
                    addition = resolve_str(stmt.value, env, call_resolver)
                    env[stmt.target.id] = _combine([current, addition])
            if isinstance(
                stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue  # separate scope
            for attr in ("body", "orelse", "finalbody"):
                block = getattr(stmt, attr, None)
                if isinstance(block, list) and block and isinstance(block[0], ast.stmt):
                    visit(block)
            for handler in getattr(stmt, "handlers", None) or []:
                visit(handler.body)

    visit(statements)
    return env
