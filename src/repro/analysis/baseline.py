"""Baseline workflow for nebula-lint.

A baseline file freezes the currently-accepted findings so the lint
gate only fails on *new* violations.  The file maps each finding
fingerprint to the number of occurrences accepted — duplicate
identical lines in one file share a fingerprint, so counts matter.

Version 2 baselines use the (rule, path, enclosing-def,
normalized-snippet) fingerprint (see
:attr:`repro.analysis.findings.Finding.fingerprint`).  Version 1 files
— written before the enclosing-def component existed — are still
accepted: :func:`apply_baseline` matches each finding's current
fingerprint first and falls back to its
:attr:`~repro.analysis.findings.Finding.legacy_fingerprint` for v1
entries, so an old baseline keeps suppressing until it is rewritten.
Re-running ``--write-baseline`` migrates the file to version 2.

Typical flow::

    python -m repro.analysis src --write-baseline lint-baseline.json
    # ... later, in CI ...
    python -m repro.analysis src --baseline lint-baseline.json
"""

from __future__ import annotations

import json
from collections import Counter
from typing import Dict, List, Sequence

from .findings import Finding

BASELINE_VERSION = 2


def write_baseline(path: str, findings: Sequence[Finding]) -> None:
    counts = Counter(f.fingerprint for f in findings)
    payload = {
        "version": BASELINE_VERSION,
        "tool": "nebula-lint",
        "fingerprints": dict(sorted(counts.items())),
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_baseline(path: str) -> Dict[str, int]:
    """fingerprint -> accepted count, for v1 and v2 files alike.

    The version marker is not needed at match time: v2 fingerprints are
    tried first and v1 entries only ever match through the legacy
    fallback, so mixing generations in one file is harmless.
    """
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if not isinstance(payload, dict) or "fingerprints" not in payload:
        raise ValueError(f"{path}: not a nebula-lint baseline file")
    fingerprints = payload["fingerprints"]
    if not isinstance(fingerprints, dict):
        raise ValueError(f"{path}: malformed 'fingerprints' mapping")
    return {str(k): int(v) for k, v in fingerprints.items()}


def apply_baseline(
    findings: Sequence[Finding], baseline: Dict[str, int]
) -> List[Finding]:
    """Findings not covered by the baseline (new violations).

    Each baselined fingerprint absorbs up to its accepted count; any
    excess occurrences — the same bad pattern introduced again — are
    reported.  A finding is absorbed by its current (v2) fingerprint
    when present, else by its legacy (v1) fingerprint, which is how
    pre-migration baseline files keep working.
    """
    budget = Counter(baseline)
    fresh: List[Finding] = []
    for finding in findings:
        if budget[finding.fingerprint] > 0:
            budget[finding.fingerprint] -= 1
        elif budget[finding.legacy_fingerprint] > 0:
            budget[finding.legacy_fingerprint] -= 1
        else:
            fresh.append(finding)
    return fresh
