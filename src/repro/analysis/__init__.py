"""nebula-lint: project-specific static analysis for the reproduction.

The analyzer enforces invariants the test suite cannot see — SQL
injection shape at execute sites, SAVEPOINT pairing, the paper's
β-ordering and edge-weight semantics, the canonical span taxonomy, and
sqlite resource hygiene.  See ``docs/static_analysis.md`` for the rule
catalog and the baseline workflow.

Run it as ``python -m repro.analysis [paths]`` or ``repro lint``.
"""

from .baseline import apply_baseline, load_baseline, write_baseline
from .engine import AnalysisError, analyze_paths, iter_python_files
from .findings import Finding
from .rules import ALL_RULE_IDS, RULE_DOCS

__all__ = [
    "ALL_RULE_IDS",
    "AnalysisError",
    "Finding",
    "RULE_DOCS",
    "analyze_paths",
    "apply_baseline",
    "iter_python_files",
    "load_baseline",
    "write_baseline",
]
