"""nebula-lint: project-specific static analysis for the reproduction.

The analyzer enforces invariants the test suite cannot see — SQL
injection shape at execute sites (now interprocedural: taint follows
helper returns and sink parameters across call boundaries), SAVEPOINT
pairing, the paper's β-ordering and edge-weight semantics, the
canonical span taxonomy, sqlite resource hygiene, and the concurrency
rules over the service plane: lock discipline (NBL009), connection
thread-affinity (NBL010), blocking-under-lock (NBL011),
condition-variable hygiene (NBL012), and versioned-table write
discipline (NBL013).  See ``docs/static_analysis.md``
for the rule catalog, the interprocedural core, and the baseline
workflow.

Run it as ``python -m repro.analysis [paths]`` or ``repro lint``.
"""

from .astcache import AstCache, ParsedModule
from .baseline import apply_baseline, load_baseline, write_baseline
from .engine import (
    AnalysisError,
    AnalysisResult,
    ProjectState,
    analyze_paths,
    iter_python_files,
    run_analysis,
)
from .findings import Finding
from .graphs import ProjectGraph, build_project_graph
from .rules import ALL_RULE_IDS, RULE_DOCS
from .sarif import to_sarif

__all__ = [
    "ALL_RULE_IDS",
    "AnalysisError",
    "AnalysisResult",
    "AstCache",
    "Finding",
    "ParsedModule",
    "ProjectGraph",
    "ProjectState",
    "RULE_DOCS",
    "analyze_paths",
    "apply_baseline",
    "build_project_graph",
    "iter_python_files",
    "load_baseline",
    "run_analysis",
    "to_sarif",
    "write_baseline",
]
