"""Time-travel reads over the commit log.

Every function takes ``as_of`` — a commit id — and reconstructs the
annotation / attachment state that existed *after* that commit was
applied, purely from the history tables: the latest ``history_id`` per
entity among versions with ``commit_id <= as_of``, tombstones excluded.
Because history rows are append-only, the result of any pinned read is
immutable no matter how many commits a concurrent writer adds — which
is exactly the snapshot-consistency guarantee the service readers rely
on.

The SQL here deliberately mirrors the head-state queries in
:mod:`repro.annotations.store`; :class:`~repro.annotations.store.AnnotationStore`
delegates to this module whenever a read carries ``as_of``.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..storage.compat import Connection

_ANNOTATION_COLUMNS = "annotation_id, content, author, created_seq"

_ATTACHMENT_COLUMNS = (
    "attachment_id, annotation_id, target_table, target_rowid, "
    "target_rowid_hi, target_column, confidence, kind"
)

#: Table expression of the annotations visible at commit ``?``.
ANNOTATIONS_AS_OF = (
    "(SELECT h.annotation_id AS annotation_id, h.content AS content, "
    "h.author AS author, h.created_seq AS created_seq "
    "FROM _nebula_annotation_history AS h "
    "JOIN (SELECT annotation_id, MAX(history_id) AS history_id "
    "FROM _nebula_annotation_history WHERE commit_id <= ? "
    "GROUP BY annotation_id) AS latest "
    "ON h.history_id = latest.history_id "
    "WHERE h.op <> 'delete')"
)

#: Table expression of the attachments visible at commit ``?``.
ATTACHMENTS_AS_OF = (
    "(SELECT h.attachment_id AS attachment_id, h.annotation_id AS annotation_id, "
    "h.target_table AS target_table, h.target_rowid AS target_rowid, "
    "h.target_rowid_hi AS target_rowid_hi, h.target_column AS target_column, "
    "h.confidence AS confidence, h.kind AS kind "
    "FROM _nebula_attachment_history AS h "
    "JOIN (SELECT attachment_id, MAX(history_id) AS history_id "
    "FROM _nebula_attachment_history WHERE commit_id <= ? "
    "GROUP BY attachment_id) AS latest "
    "ON h.history_id = latest.history_id "
    "WHERE h.op <> 'delete')"
)

# Full statements (literal constants: NBL001-safe by construction).

_GET_ANNOTATION = (
    "SELECT " + _ANNOTATION_COLUMNS + " FROM " + ANNOTATIONS_AS_OF + " "
    "WHERE annotation_id = ?"
)

_ITER_ANNOTATIONS = (
    "SELECT " + _ANNOTATION_COLUMNS + " FROM " + ANNOTATIONS_AS_OF + " "
    "ORDER BY created_seq"
)

_COUNT_ANNOTATIONS = "SELECT COUNT(*) FROM " + ANNOTATIONS_AS_OF

_ATTACHMENTS_OF = (
    "SELECT " + _ATTACHMENT_COLUMNS + " FROM " + ATTACHMENTS_AS_OF + " "
    "WHERE annotation_id = ? ORDER BY attachment_id"
)

_ATTACHMENTS_ON_PREFIX = (
    "SELECT " + _ATTACHMENT_COLUMNS + " FROM " + ATTACHMENTS_AS_OF + " "
    "WHERE target_table = ?"
)

_ROW_FILTER = (
    " AND (target_rowid IS NULL OR (target_rowid <= ? "
    "AND ? <= COALESCE(target_rowid_hi, target_rowid)))"
)

_COLUMN_FILTER = " AND (target_column = ? OR target_column IS NULL)"

_ORDER_BY_ATTACHMENT = " ORDER BY attachment_id"

_TRUE_PAIRS = (
    "SELECT annotation_id, target_table, target_rowid, target_rowid_hi "
    "FROM " + ATTACHMENTS_AS_OF + " "
    "WHERE kind = 'true' AND target_rowid IS NOT NULL ORDER BY attachment_id"
)

_COUNT_ATTACHMENTS = "SELECT COUNT(*) FROM " + ATTACHMENTS_AS_OF

_COUNT_ATTACHMENTS_BY_KIND = (
    "SELECT COUNT(*) FROM " + ATTACHMENTS_AS_OF + " WHERE kind = ?"
)

# Service-layer read statements.  Composed here — where every piece is
# a local literal, so NBL001 can prove them safe by construction — and
# imported whole by :mod:`repro.service.service` for its ``as_of`` read
# endpoints.

#: ``find_annotations(needle, limit, as_of)``: params (as_of, needle, limit).
FIND_ANNOTATIONS_AS_OF = (
    "SELECT annotation_id, content, author "
    "FROM " + ANNOTATIONS_AS_OF + " "
    "WHERE content LIKE '%' || ? || '%' "
    "ORDER BY annotation_id DESC LIMIT ?"
)

#: ``annotations_for(table, rowid, as_of)``: params (as_of, as_of, table, rowid).
ANNOTATIONS_FOR_TUPLE_AS_OF = (
    "SELECT a.annotation_id, a.content, t.confidence, t.kind "
    "FROM " + ANNOTATIONS_AS_OF + " AS a "
    "JOIN " + ATTACHMENTS_AS_OF + " AS t "
    "ON t.annotation_id = a.annotation_id "
    "WHERE t.target_table = ? AND t.target_rowid = ? "
    "ORDER BY t.confidence DESC, a.annotation_id"
)

#: ``pending_verifications(limit, as_of)``: params (as_of, limit).  The
#: one statement here touching operational state: the task table is not
#: versioned, so the honest ``as_of`` approximation restricts pending
#: tasks to annotations *visible* at the pin.
PENDING_TASKS_AS_OF = (
    "SELECT task_id, annotation_id, target_table, target_rowid, confidence "
    "FROM _nebula_verification_tasks WHERE status = 'pending' "
    "AND annotation_id IN "
    "(SELECT annotation_id FROM " + ANNOTATIONS_AS_OF + ") "
    "ORDER BY confidence DESC, task_id LIMIT ?"
)

_ANNOTATION_HISTORY = (
    "SELECT h.history_id, h.commit_id, h.op, h.content, h.author, h.created_seq, "
    "c.kind, c.author, c.request_id, c.note, c.created_at "
    "FROM _nebula_annotation_history AS h "
    "JOIN _nebula_commits AS c ON c.commit_id = h.commit_id "
    "WHERE h.annotation_id = ? ORDER BY h.history_id"
)

_ATTACHMENT_HISTORY_OF_ANNOTATION = (
    "SELECT h.history_id, h.commit_id, h.op, h.attachment_id, h.target_table, "
    "h.target_rowid, h.target_rowid_hi, h.target_column, h.confidence, h.kind, "
    "c.kind, c.author, c.request_id, c.created_at "
    "FROM _nebula_attachment_history AS h "
    "JOIN _nebula_commits AS c ON c.commit_id = h.commit_id "
    "WHERE h.annotation_id = ? ORDER BY h.history_id"
)


def get_annotation_row(
    connection: Connection, annotation_id: int, as_of: int
) -> Optional[Sequence]:
    """The annotation row visible at ``as_of``, or None."""
    return connection.execute(_GET_ANNOTATION, (as_of, annotation_id)).fetchone()


def iter_annotation_rows(connection: Connection, as_of: int) -> List[Sequence]:
    """All annotation rows visible at ``as_of``, in insertion order."""
    return connection.execute(_ITER_ANNOTATIONS, (as_of,)).fetchall()


def count_annotations(connection: Connection, as_of: int) -> int:
    return int(connection.execute(_COUNT_ANNOTATIONS, (as_of,)).fetchone()[0])


def attachments_of_rows(
    connection: Connection, annotation_id: int, as_of: int
) -> List[Sequence]:
    """Attachment rows of one annotation visible at ``as_of``."""
    return connection.execute(_ATTACHMENTS_OF, (as_of, annotation_id)).fetchall()


def attachments_on_rows(
    connection: Connection,
    table: str,
    as_of: int,
    rowid: Optional[int] = None,
    column: Optional[str] = None,
) -> List[Sequence]:
    """Attachment rows touching a target, visible at ``as_of``.

    Matches the head query's semantics: row-level queries also return
    column- and table-level attachments (they apply to every row).
    """
    sql = _ATTACHMENTS_ON_PREFIX
    params: List[object] = [as_of, table]
    if rowid is not None:
        sql += _ROW_FILTER
        params.extend([rowid, rowid])
    if column is not None:
        sql += _COLUMN_FILTER
        params.append(column)
    sql += _ORDER_BY_ATTACHMENT
    return connection.execute(sql, params).fetchall()


def true_pair_rows(connection: Connection, as_of: int) -> List[Sequence]:
    """``(annotation_id, table, rowid, rowid_hi)`` of true row edges."""
    return connection.execute(_TRUE_PAIRS, (as_of,)).fetchall()


def count_attachments(
    connection: Connection, as_of: int, kind: Optional[str] = None
) -> int:
    if kind is None:
        row = connection.execute(_COUNT_ATTACHMENTS, (as_of,)).fetchone()
    else:
        row = connection.execute(_COUNT_ATTACHMENTS_BY_KIND, (as_of, kind)).fetchone()
    return int(row[0])


def annotation_history_rows(
    connection: Connection, annotation_id: int
) -> List[Sequence]:
    """Every logged version of one annotation, with commit provenance."""
    return connection.execute(_ANNOTATION_HISTORY, (annotation_id,)).fetchall()


def attachment_history_rows(
    connection: Connection, annotation_id: int
) -> List[Sequence]:
    """Every logged attachment version of one annotation's edges."""
    return connection.execute(
        _ATTACHMENT_HISTORY_OF_ANNOTATION, (annotation_id,)
    ).fetchall()


def state_fingerprint(
    connection: Connection, as_of: Optional[int] = None
) -> Tuple[Tuple[Sequence, ...], Tuple[Sequence, ...]]:
    """Canonical (annotations, attachments) content at ``as_of``.

    With ``as_of=None`` the fingerprint is computed from the
    current-version *views* (pure history reconstruction) — comparing
    it against the materialized head tables is the parity oracle used
    by recovery, the migration round-trip, and the property tests.
    Rows are keyed by content, not surrogate ids, so a legacy database
    rebuilt through a migration fingerprints identically to a fresh
    versioned init.
    """
    if as_of is None:
        annotations = connection.execute(
            "SELECT " + _ANNOTATION_COLUMNS + " FROM _nebula_annotations_current "
            "ORDER BY created_seq"
        ).fetchall()
        attachments = connection.execute(
            "SELECT annotation_id, target_table, target_rowid, target_rowid_hi, "
            "target_column, confidence, kind FROM _nebula_attachments_current "
            "ORDER BY annotation_id, target_table, target_rowid, "
            "target_rowid_hi, target_column, kind"
        ).fetchall()
    else:
        annotations = connection.execute(_ITER_ANNOTATIONS, (as_of,)).fetchall()
        attachments = connection.execute(
            "SELECT annotation_id, target_table, target_rowid, target_rowid_hi, "
            "target_column, confidence, kind FROM " + ATTACHMENTS_AS_OF + " "
            "ORDER BY annotation_id, target_table, target_rowid, "
            "target_rowid_hi, target_column, kind",
            (as_of,),
        ).fetchall()
    return (
        tuple(tuple(row) for row in annotations),
        tuple(tuple(row) for row in attachments),
    )


def head_fingerprint(
    connection: Connection,
) -> Tuple[Tuple[Sequence, ...], Tuple[Sequence, ...]]:
    """The materialized head's canonical content (same key as above)."""
    annotations = connection.execute(
        "SELECT " + _ANNOTATION_COLUMNS + " FROM _nebula_annotations "
        "ORDER BY created_seq"
    ).fetchall()
    attachments = connection.execute(
        "SELECT annotation_id, target_table, target_rowid, target_rowid_hi, "
        "target_column, confidence, kind FROM _nebula_attachments "
        "ORDER BY annotation_id, target_table, target_rowid, "
        "target_rowid_hi, target_column, kind"
    ).fetchall()
    return (
        tuple(tuple(row) for row in annotations),
        tuple(tuple(row) for row in attachments),
    )
