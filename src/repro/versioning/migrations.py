"""Ordered, reversible schema migrations (terrarium-annotator style).

Every schema change to the annotation store travels through one place:
a :class:`Migration` (zero-padded revision id, human name, paired
``upgrade`` / ``downgrade`` callables taking ``(connection, dialect)``)
registered in :data:`MIGRATIONS`.  :class:`MigrationRunner` applies the
chain in order and records each applied revision in
``_nebula_schema_revisions``, so ``repro migrate status`` can always
answer "which schema is this database on?".

Seed-era databases — annotation tables present, no revisions table —
are *baseline-stamped*: the runner records revision 0001 as already
applied instead of re-running its DDL, then applies the rest of the
chain normally.  The versioning migration (0002) backfills the commit
log with one ``migrate`` commit holding an ``insert`` version of every
pre-existing row, so time-travel to that commit reproduces the state
the database had when it was migrated.

The chain so far:

====  =================  ===================================================
0001  legacy-base        the seed annotation/attachment tables + indexes
0002  versioning         commit log, history tables, current views, backfill
0003  persistent-index   the PR 9 search-index tables (postings + stats)
====  =================  ===================================================
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import datetime, timezone
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..errors import MigrationError
from ..storage.compat import Connection
from ..storage.dialect import SQLITE_DIALECT, Dialect
from .schema import LEGACY_DDL, VERSIONING_DDL

#: The revision every database implicitly starts from.
BASELINE_REVISION = "0001"

REVISIONS_DDL = """
CREATE TABLE IF NOT EXISTS _nebula_schema_revisions (
    revision   TEXT PRIMARY KEY,
    name       TEXT NOT NULL,
    applied_at TEXT NOT NULL
);
"""

_BACKFILL_COMMIT = (
    "INSERT INTO _nebula_commits (kind, author, request_id, note, created_at) "
    "VALUES ('migrate', NULL, NULL, 'backfill of pre-versioning rows', ?)"
)

_BACKFILL_ANNOTATIONS = (
    "INSERT INTO _nebula_annotation_history "
    "(commit_id, annotation_id, op, content, author, created_seq) "
    "SELECT ?, annotation_id, 'insert', content, author, created_seq "
    "FROM _nebula_annotations ORDER BY annotation_id"
)

_BACKFILL_ATTACHMENTS = (
    "INSERT INTO _nebula_attachment_history "
    "(commit_id, attachment_id, op, annotation_id, target_table, target_rowid, "
    "target_rowid_hi, target_column, confidence, kind) "
    "SELECT ?, attachment_id, 'insert', annotation_id, target_table, target_rowid, "
    "target_rowid_hi, target_column, confidence, kind "
    "FROM _nebula_attachments ORDER BY attachment_id"
)

_INDEX_DDL = """
CREATE TABLE IF NOT EXISTS _nebula_index_postings (
    posting_id INTEGER PRIMARY KEY,
    token      TEXT NOT NULL,
    tbl        TEXT NOT NULL,
    col        TEXT NOT NULL,
    row_id     INTEGER NOT NULL
);
CREATE INDEX IF NOT EXISTS _nebula_index_postings_token
    ON _nebula_index_postings (token);
CREATE TABLE IF NOT EXISTS _nebula_index_stats (
    kind  TEXT NOT NULL,
    tbl   TEXT NOT NULL,
    col   TEXT NOT NULL,
    value INTEGER NOT NULL,
    PRIMARY KEY (kind, tbl, col)
);
"""


def _utc_now() -> str:
    return datetime.now(timezone.utc).isoformat(timespec="seconds")


def _table_exists(connection: Connection, name: str) -> bool:
    row = connection.execute(
        "SELECT 1 FROM sqlite_master WHERE type = 'table' AND name = ?",
        (name,),
    ).fetchone()
    return row is not None


@dataclass(frozen=True)
class Migration:
    """One reversible schema step."""

    revision: str
    name: str
    upgrade: Callable[[Connection, Dialect], None]
    downgrade: Callable[[Connection, Dialect], None]


@dataclass(frozen=True)
class Revision:
    """One applied-migration record from ``_nebula_schema_revisions``."""

    revision: str
    name: str
    applied_at: str


# ----------------------------------------------------------------------
# The chain
# ----------------------------------------------------------------------


def _upgrade_legacy_base(connection: Connection, dialect: Dialect) -> None:
    connection.executescript(LEGACY_DDL)


def _downgrade_legacy_base(connection: Connection, dialect: Dialect) -> None:
    connection.executescript(
        "DROP INDEX IF EXISTS _nebula_attachments_by_target;\n"
        "DROP INDEX IF EXISTS _nebula_attachments_by_annotation;\n"
        "DROP TABLE IF EXISTS _nebula_attachments;\n"
        "DROP TABLE IF EXISTS _nebula_annotations;"
    )


def _upgrade_versioning(connection: Connection, dialect: Dialect) -> None:
    connection.executescript(VERSIONING_DDL)
    # Backfill a pre-versioning head into the log, once: every existing
    # row becomes an 'insert' version under a single migrate commit.
    history_rows = connection.execute(
        "SELECT (SELECT COUNT(*) FROM _nebula_annotation_history) + "
        "(SELECT COUNT(*) FROM _nebula_attachment_history)"
    ).fetchone()
    head_rows = connection.execute(
        "SELECT (SELECT COUNT(*) FROM _nebula_annotations) + "
        "(SELECT COUNT(*) FROM _nebula_attachments)"
    ).fetchone()
    if int(history_rows[0]) > 0 or int(head_rows[0]) == 0:
        return
    cursor = connection.execute(_BACKFILL_COMMIT, (_utc_now(),))
    commit_id = int(cursor.lastrowid)
    connection.execute(_BACKFILL_ANNOTATIONS, (commit_id,))
    connection.execute(_BACKFILL_ATTACHMENTS, (commit_id,))


#: Inverse of :data:`VERSIONING_DDL` (drop order mirrors
#: :data:`~repro.versioning.schema.VERSIONING_OBJECTS`).
_VERSIONING_DROP = """
DROP VIEW IF EXISTS _nebula_annotations_current;
DROP VIEW IF EXISTS _nebula_attachments_current;
DROP TABLE IF EXISTS _nebula_annotation_history;
DROP TABLE IF EXISTS _nebula_attachment_history;
DROP TABLE IF EXISTS _nebula_commits;
"""


def _downgrade_versioning(connection: Connection, dialect: Dialect) -> None:
    connection.executescript(_VERSIONING_DROP)


def _upgrade_persistent_index(connection: Connection, dialect: Dialect) -> None:
    connection.executescript(_INDEX_DDL)


def _downgrade_persistent_index(connection: Connection, dialect: Dialect) -> None:
    connection.executescript(
        "DROP INDEX IF EXISTS _nebula_index_postings_token;\n"
        "DROP TABLE IF EXISTS _nebula_index_postings;\n"
        "DROP TABLE IF EXISTS _nebula_index_stats;"
    )


#: The full ordered chain every database is kept on.
MIGRATIONS: Tuple[Migration, ...] = (
    Migration(
        revision="0001",
        name="legacy-base",
        upgrade=_upgrade_legacy_base,
        downgrade=_downgrade_legacy_base,
    ),
    Migration(
        revision="0002",
        name="versioning",
        upgrade=_upgrade_versioning,
        downgrade=_downgrade_versioning,
    ),
    Migration(
        revision="0003",
        name="persistent-index",
        upgrade=_upgrade_persistent_index,
        downgrade=_downgrade_persistent_index,
    ),
)


class MigrationRunner:
    """Applies the migration chain and records it, per backend dialect."""

    def __init__(
        self,
        connection: Connection,
        dialect: Dialect = SQLITE_DIALECT,
        migrations: Optional[Sequence[Migration]] = None,
    ) -> None:
        self.connection = connection
        self.dialect = dialect
        self.migrations = tuple(migrations if migrations is not None else MIGRATIONS)
        self._validate_chain()
        self.connection.executescript(REVISIONS_DDL)
        self._stamp_baseline_if_needed()

    def _validate_chain(self) -> None:
        revisions = [m.revision for m in self.migrations]
        if len(set(revisions)) != len(revisions):
            raise MigrationError("duplicate revision ids in the migration chain")
        if revisions != sorted(revisions):
            raise MigrationError("migration chain must be ordered by revision id")

    def _stamp_baseline_if_needed(self) -> None:
        """Adopt a seed-era database: tables exist, no recorded chain."""
        if self.applied():
            return
        if _table_exists(self.connection, "_nebula_annotations"):
            self._record(BASELINE_REVISION, "legacy-base (baseline stamp)")
            self.connection.commit()

    # ------------------------------------------------------------------

    def applied(self) -> List[Revision]:
        """Applied revisions, oldest first."""
        rows = self.connection.execute(
            "SELECT revision, name, applied_at FROM _nebula_schema_revisions "
            "ORDER BY revision"
        ).fetchall()
        return [Revision(str(r[0]), str(r[1]), str(r[2])) for r in rows]

    def pending(self) -> List[Migration]:
        """Chain entries not yet recorded as applied, in order."""
        done = {r.revision for r in self.applied()}
        return [m for m in self.migrations if m.revision not in done]

    def current_revision(self) -> Optional[str]:
        """The newest applied revision id, or None on a virgin database."""
        applied = self.applied()
        return applied[-1].revision if applied else None

    def status(self) -> Dict[str, object]:
        """A CLI-friendly summary of where this database stands."""
        applied = self.applied()
        return {
            "current": applied[-1].revision if applied else None,
            "applied": [
                {"revision": r.revision, "name": r.name, "applied_at": r.applied_at}
                for r in applied
            ],
            "pending": [
                {"revision": m.revision, "name": m.name} for m in self.pending()
            ],
        }

    # ------------------------------------------------------------------

    def upgrade(self, target: Optional[str] = None) -> List[str]:
        """Apply pending migrations up to ``target`` (default: all).

        Returns the revision ids applied by this call, in order.
        """
        applied_now: List[str] = []
        for migration in self.pending():
            if target is not None and migration.revision > target:
                break
            try:
                migration.upgrade(self.connection, self.dialect)
            except Exception as error:
                raise MigrationError(
                    f"upgrade to {migration.revision} ({migration.name}) "
                    f"failed: {error}"
                ) from error
            self._record(migration.revision, migration.name)
            applied_now.append(migration.revision)
        if applied_now:
            self.connection.commit()
        return applied_now

    def downgrade(self, target: str = BASELINE_REVISION) -> List[str]:
        """Revert applied revisions above ``target``, newest first.

        The default lands on the legacy base schema — the clean
        pre-versioning layout (the materialized head tables hold the
        latest state, so no annotation data is lost).
        """
        by_revision = {m.revision: m for m in self.migrations}
        reverted: List[str] = []
        for record in reversed(self.applied()):
            if record.revision <= target:
                continue
            migration = by_revision.get(record.revision)
            if migration is None:
                raise MigrationError(
                    f"applied revision {record.revision} has no registered "
                    "migration to downgrade with"
                )
            try:
                migration.downgrade(self.connection, self.dialect)
            except Exception as error:
                raise MigrationError(
                    f"downgrade of {migration.revision} ({migration.name}) "
                    f"failed: {error}"
                ) from error
            self.connection.execute(
                "DELETE FROM _nebula_schema_revisions WHERE revision = ?",
                (record.revision,),
            )
            reverted.append(record.revision)
        if reverted:
            self.connection.commit()
        return reverted

    # ------------------------------------------------------------------

    def _record(self, revision: str, name: str) -> None:
        self.connection.execute(
            "INSERT INTO _nebula_schema_revisions (revision, name, applied_at) "
            "VALUES (?, ?, ?)",
            (revision, name, _utc_now()),
        )


def ensure_schema(
    connection: Connection, dialect: Dialect = SQLITE_DIALECT
) -> MigrationRunner:
    """Bring a database fully up to date; the store's init path."""
    runner = MigrationRunner(connection, dialect=dialect)
    runner.upgrade()
    return runner
