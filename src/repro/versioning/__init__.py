"""Append-only versioned storage: commit log, time travel, migrations.

The package owns three concerns the rest of the tree delegates to:

* :mod:`repro.versioning.log` — :class:`CommitLog`: one
  ``_nebula_commits`` row per logical write with author/request/time
  provenance, history appends for every mutation, and the *only*
  UPDATE/DELETE statements against the versioned tables (enforced by
  lint rule NBL013).
* :mod:`repro.versioning.timetravel` — ``as_of=<commit_id>`` reads
  reconstructing any historical state from the append-only history.
* :mod:`repro.versioning.migrations` — the ordered, reversible schema
  chain recorded in ``_nebula_schema_revisions``; the single path for
  all schema changes on every backend.

See ``docs/versioning.md`` for the commit model and authoring guide.
"""

from . import timetravel
from .log import Commit, CommitLog
from .migrations import (
    BASELINE_REVISION,
    MIGRATIONS,
    Migration,
    MigrationRunner,
    Revision,
    ensure_schema,
)
from .schema import COMMIT_KINDS, VERSIONED_TABLES

__all__ = [
    "BASELINE_REVISION",
    "COMMIT_KINDS",
    "Commit",
    "CommitLog",
    "MIGRATIONS",
    "Migration",
    "MigrationRunner",
    "Revision",
    "VERSIONED_TABLES",
    "ensure_schema",
    "timetravel",
]
