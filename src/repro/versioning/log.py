"""The append-only commit log over the annotation store.

:class:`CommitLog` owns two things:

1. **Commit lifecycle** — opening one ``_nebula_commits`` row per
   logical write (ingest / batch / verify / reject / replay / migrate)
   with author + ``request_id`` + timestamp provenance.  Commits open
   *inside* the pipeline's SAVEPOINT boundaries: a rolled-back stage
   removes the commit row and its history rows together, and
   :meth:`abandon` clears the in-memory pointer on the abort path.
   Mutations arriving outside any explicit scope (direct
   ``AnnotationStore`` use) get an implicit single-operation ``auto``
   commit so nothing ever bypasses the log.

2. **The only UPDATE/DELETE on versioned tables in the tree** —
   :meth:`promote_attachment` and :meth:`delete_attachment` mutate the
   materialized head and append the matching history row in the same
   statement batch.  Everywhere else (lint rule NBL013) the versioned
   tables are INSERT-only; the store records those inserts here via the
   ``record_*`` appenders.

Every history append is an ``INSERT ... SELECT`` from the materialized
row itself, so the logged version is byte-identical to the head at the
moment of the write — there is no parameter list to drift out of sync
with the DDL.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from datetime import datetime, timezone
from typing import Iterator, List, Optional, Sequence

from ..errors import UnknownCommitError, VersioningError
from ..observability.metrics import get_metrics
from ..resilience.retry import RetryPolicy
from ..storage.compat import Connection, Cursor
from .schema import COMMIT_KINDS

_COMMIT_COLUMNS = "commit_id, kind, author, request_id, note, created_at"

_INSERT_COMMIT = (
    "INSERT INTO _nebula_commits (kind, author, request_id, note, created_at) "
    "VALUES (?, ?, ?, ?, ?)"
)

#: History append for annotation rows, copying straight from the head.
_APPEND_ANNOTATION = (
    "INSERT INTO _nebula_annotation_history "
    "(commit_id, annotation_id, op, content, author, created_seq) "
    "SELECT ?, annotation_id, ?, content, author, created_seq "
    "FROM _nebula_annotations WHERE annotation_id = ?"
)

_APPEND_ANNOTATION_RANGE = (
    "INSERT INTO _nebula_annotation_history "
    "(commit_id, annotation_id, op, content, author, created_seq) "
    "SELECT ?, annotation_id, 'insert', content, author, created_seq "
    "FROM _nebula_annotations WHERE created_seq BETWEEN ? AND ? "
    "ORDER BY created_seq"
)

_APPEND_ATTACHMENT = (
    "INSERT INTO _nebula_attachment_history "
    "(commit_id, attachment_id, op, annotation_id, target_table, target_rowid, "
    "target_rowid_hi, target_column, confidence, kind) "
    "SELECT ?, attachment_id, ?, annotation_id, target_table, target_rowid, "
    "target_rowid_hi, target_column, confidence, kind "
    "FROM _nebula_attachments WHERE attachment_id = ?"
)

_APPEND_ATTACHMENTS_ABOVE = (
    "INSERT INTO _nebula_attachment_history "
    "(commit_id, attachment_id, op, annotation_id, target_table, target_rowid, "
    "target_rowid_hi, target_column, confidence, kind) "
    "SELECT ?, attachment_id, 'insert', annotation_id, target_table, target_rowid, "
    "target_rowid_hi, target_column, confidence, kind "
    "FROM _nebula_attachments WHERE attachment_id > ? "
    "ORDER BY attachment_id"
)

_PROMOTE_ATTACHMENT = (
    "UPDATE _nebula_attachments SET confidence = 1.0, kind = 'true' "
    "WHERE attachment_id = ?"
)

_DELETE_ATTACHMENT = "DELETE FROM _nebula_attachments WHERE attachment_id = ?"

# Head restoration: rebuild the materialized tables from pure history
# (the current-version views).  Recovery's last resort when the head
# and the log disagree.
_RESTORE_HEAD = """
DELETE FROM _nebula_attachments;
DELETE FROM _nebula_annotations;
INSERT INTO _nebula_annotations (annotation_id, content, author, created_seq)
    SELECT annotation_id, content, author, created_seq
    FROM _nebula_annotations_current;
INSERT INTO _nebula_attachments (attachment_id, annotation_id, target_table,
    target_rowid, target_rowid_hi, target_column, confidence, kind)
    SELECT attachment_id, annotation_id, target_table, target_rowid,
        target_rowid_hi, target_column, confidence, kind
    FROM _nebula_attachments_current;
"""


def _utc_now() -> str:
    return datetime.now(timezone.utc).isoformat(timespec="seconds")


@dataclass(frozen=True)
class Commit:
    """One recorded commit with its provenance."""

    commit_id: int
    kind: str
    author: Optional[str]
    request_id: Optional[str]
    note: Optional[str]
    created_at: str


def _row_to_commit(row: Sequence) -> Commit:
    return Commit(
        commit_id=int(row[0]),
        kind=str(row[1]),
        author=None if row[2] is None else str(row[2]),
        request_id=None if row[3] is None else str(row[3]),
        note=None if row[4] is None else str(row[4]),
        created_at=str(row[5]),
    )


class CommitLog:
    """Monotonic commit ids + history appends for one connection."""

    def __init__(
        self,
        connection: Connection,
        retry: Optional[RetryPolicy] = None,
    ) -> None:
        # Schema creation is owned by the migration chain
        # (:mod:`repro.versioning.migrations`); the log assumes the
        # versioning revision is applied.
        self.connection = connection
        self.retry = retry
        self._active: Optional[int] = None

    def _write(self, sql: str, params: Sequence = ()) -> Cursor:
        if self.retry is None:
            return self.connection.execute(sql, params)
        return self.retry.run(lambda: self.connection.execute(sql, params), sql)

    # ------------------------------------------------------------------
    # Commit lifecycle
    # ------------------------------------------------------------------

    @property
    def active_commit(self) -> Optional[int]:
        """The commit id of the open scope, if any."""
        return self._active

    def head(self) -> Optional[int]:
        """The newest committed id — the pin for snapshot readers."""
        row = self.connection.execute(
            "SELECT MAX(commit_id) FROM _nebula_commits"
        ).fetchone()
        return None if row is None or row[0] is None else int(row[0])

    def begin(
        self,
        kind: str,
        author: Optional[str] = None,
        request_id: Optional[str] = None,
        note: Optional[str] = None,
    ) -> int:
        """Open a commit; every history append until :meth:`finish` joins it."""
        if self._active is not None:
            raise VersioningError(
                f"commit {self._active} is already open on this log"
            )
        self._active = self._insert_commit(kind, author, request_id, note)
        return self._active

    def finish(self) -> Optional[int]:
        """Close the open commit scope; returns its id."""
        commit_id, self._active = self._active, None
        return commit_id

    def abandon(self) -> None:
        """Forget the open commit after its SAVEPOINT rolled back.

        The commit row itself vanished with the rollback; this only
        clears the in-memory pointer so the next write does not append
        history onto a commit id that no longer exists.
        """
        self._active = None

    @contextmanager
    def commit_scope(
        self,
        kind: str,
        author: Optional[str] = None,
        request_id: Optional[str] = None,
        note: Optional[str] = None,
    ) -> Iterator[int]:
        """One commit around a block; abandoned if the block raises."""
        commit_id = self.begin(kind, author=author, request_id=request_id, note=note)
        try:
            yield commit_id
        except BaseException:
            self.abandon()
            raise
        else:
            self.finish()

    @contextmanager
    def scope(
        self,
        kind: str,
        author: Optional[str] = None,
        request_id: Optional[str] = None,
        note: Optional[str] = None,
    ) -> Iterator[int]:
        """Like :meth:`commit_scope`, but *joins* an already-open commit.

        Mutation entry points (``add_annotation``, ``verify``, ...) wrap
        themselves in this so direct calls get one commit per logical
        operation, while calls arriving inside the pipeline's broader
        ``ingest``/``batch``/``replay`` scope simply contribute to it.
        """
        if self._active is not None:
            yield self._active
            return
        with self.commit_scope(
            kind, author=author, request_id=request_id, note=note
        ) as commit_id:
            yield commit_id

    def _insert_commit(
        self,
        kind: str,
        author: Optional[str],
        request_id: Optional[str],
        note: Optional[str],
    ) -> int:
        if kind not in COMMIT_KINDS:
            raise VersioningError(
                f"unknown commit kind {kind!r} (expected one of {COMMIT_KINDS})"
            )
        cursor = self._write(
            _INSERT_COMMIT, (kind, author, request_id, note, _utc_now())
        )
        get_metrics().counter("nebula_commits_total", {"kind": kind}).inc()
        return int(cursor.lastrowid)

    def _current(self) -> int:
        """Active commit id, or an implicit ``auto`` commit when none open."""
        if self._active is not None:
            return self._active
        return self._insert_commit("auto", None, None, None)

    # ------------------------------------------------------------------
    # Commit reads
    # ------------------------------------------------------------------

    def get_commit(self, commit_id: int) -> Commit:
        row = self.connection.execute(
            "SELECT " + _COMMIT_COLUMNS + " FROM _nebula_commits "
            "WHERE commit_id = ?",
            (commit_id,),
        ).fetchone()
        if row is None:
            raise UnknownCommitError(commit_id)
        return _row_to_commit(row)

    def commits(self, limit: Optional[int] = None) -> List[Commit]:
        """Newest-first commit rows (the audit trail)."""
        sql = "SELECT " + _COMMIT_COLUMNS + " FROM _nebula_commits ORDER BY commit_id DESC"
        if limit is None:
            rows = self.connection.execute(sql).fetchall()
        else:
            rows = self.connection.execute(sql + " LIMIT ?", (limit,)).fetchall()
        return [_row_to_commit(r) for r in rows]

    def count_commits(self) -> int:
        return int(
            self.connection.execute("SELECT COUNT(*) FROM _nebula_commits").fetchone()[0]
        )

    # ------------------------------------------------------------------
    # History appends for INSERTs performed by the store
    # ------------------------------------------------------------------

    def record_annotation_insert(self, annotation_id: int) -> None:
        """Log the freshly inserted annotation row as a new version."""
        self._write(_APPEND_ANNOTATION, (self._current(), "insert", annotation_id))

    def record_annotation_range(self, first_seq: int, last_seq: int) -> None:
        """Log a contiguous ``created_seq`` range of bulk-inserted rows."""
        self._write(_APPEND_ANNOTATION_RANGE, (self._current(), first_seq, last_seq))

    def record_attachment_insert(self, attachment_id: int) -> None:
        """Log one freshly inserted attachment edge."""
        self._write(_APPEND_ATTACHMENT, (self._current(), "insert", attachment_id))

    def attachment_watermark(self) -> int:
        """``MAX(attachment_id)`` before a bulk insert (0 when empty)."""
        row = self.connection.execute(
            "SELECT COALESCE(MAX(attachment_id), 0) FROM _nebula_attachments"
        ).fetchone()
        return int(row[0])

    def record_attachments_above(self, watermark: int) -> int:
        """Log every attachment inserted past ``watermark``; returns count."""
        cursor = self._write(_APPEND_ATTACHMENTS_ABOVE, (self._current(), watermark))
        return int(cursor.rowcount)

    # ------------------------------------------------------------------
    # The versioned mutations (sole UPDATE/DELETE sites — NBL013)
    # ------------------------------------------------------------------

    def promote_attachment(self, attachment_id: int) -> bool:
        """predicted -> true on the head, logged as an ``update`` version."""
        cursor = self._write(_PROMOTE_ATTACHMENT, (attachment_id,))
        if cursor.rowcount == 0:
            return False
        self._write(_APPEND_ATTACHMENT, (self._current(), "update", attachment_id))
        return True

    def verify_head(self) -> bool:
        """Parity oracle: does the materialized head equal the log's view?

        Compares the content-keyed fingerprint of the head tables against
        the pure-history reconstruction through the ``*_current`` views.
        True on every healthy database — head writes and history appends
        share a transaction — so False means torn state worth healing.
        """
        from . import timetravel

        return timetravel.head_fingerprint(
            self.connection
        ) == timetravel.state_fingerprint(self.connection)

    def restore_head(self) -> None:
        """Rebuild the materialized head from the append-only history.

        The log is the source of truth; this replays its current view
        back into ``_nebula_annotations`` / ``_nebula_attachments``.
        Used by service recovery when :meth:`verify_head` fails.  Note
        ``executescript`` commits any pending transaction first — callers
        run this at recovery time, outside any open write.
        """
        self.connection.executescript(_RESTORE_HEAD)

    def delete_attachment(self, attachment_id: int) -> bool:
        """Remove an edge from the head, logged as a ``delete`` tombstone.

        The tombstone carries the edge's last known column values so the
        audit trail shows *what* was discarded, not just that something
        was.
        """
        appended = self._write(
            _APPEND_ATTACHMENT, (self._current(), "delete", attachment_id)
        )
        if appended.rowcount == 0:
            return False
        self._write(_DELETE_ATTACHMENT, (attachment_id,))
        return True
