"""DDL of the append-only versioning layer.

Three commit-log tables ride alongside the materialized annotation
tables (Ontologia's ``commits`` + ``entity_history`` pattern):

``_nebula_commits``
    One row per logical write — an ingestion, a batch, an expert
    verify/reject, a dead-letter replay, or a migration backfill.
    ``commit_id`` is monotonically increasing (AUTOINCREMENT) under the
    single writer, and each row carries the provenance the service
    layer already tracks: author, ``request_id``, and a timestamp.

``_nebula_annotation_history`` / ``_nebula_attachment_history``
    One row per *version* of an annotation / attachment: the full
    column set of the entity at that version plus the ``commit_id``
    that produced it and the operation (``insert`` / ``update`` /
    ``delete``).  History rows are only ever appended — the lint rule
    NBL013 forbids UPDATE/DELETE against versioned tables outside this
    package.

The materialized tables (``_nebula_annotations`` /
``_nebula_attachments``) remain the head of the log: every mutation
appends the matching history row inside the same SAVEPOINT, so the two
representations cannot diverge under rollback.  The
``*_current`` views recompute the head purely from history (latest
``history_id`` per entity, tombstones excluded); they are the parity
oracle for migrations, recovery, and the property tests, and the
``as_of`` time-travel reads in :mod:`repro.versioning.timetravel` are
the same query with a ``commit_id <= ?`` pin.
"""

from __future__ import annotations

from typing import Tuple

#: Tables whose mutations must flow through the commit log (NBL013 scope).
VERSIONED_TABLES: Tuple[str, ...] = ("_nebula_annotations", "_nebula_attachments")

#: Commit kinds recorded in ``_nebula_commits.kind``.
COMMIT_KINDS: Tuple[str, ...] = (
    "ingest",   # one annotation through the pipeline
    "batch",    # one batched ingestion (insert_annotations)
    "verify",   # expert VERIFY ATTACHMENT
    "reject",   # expert REJECT ATTACHMENT
    "replay",   # dead-letter reprocessing
    "migrate",  # schema-migration backfill
    "auto",     # implicit single-operation commit (direct store use)
)

#: The commit log + history tables + current-version views.
VERSIONING_DDL = """
CREATE TABLE IF NOT EXISTS _nebula_commits (
    commit_id  INTEGER PRIMARY KEY AUTOINCREMENT,
    kind       TEXT NOT NULL CHECK (kind IN
        ('ingest', 'batch', 'verify', 'reject', 'replay', 'migrate', 'auto')),
    author     TEXT,
    request_id TEXT,
    note       TEXT,
    created_at TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS _nebula_annotation_history (
    history_id    INTEGER PRIMARY KEY AUTOINCREMENT,
    commit_id     INTEGER NOT NULL REFERENCES _nebula_commits(commit_id),
    annotation_id INTEGER NOT NULL,
    op            TEXT NOT NULL CHECK (op IN ('insert', 'update', 'delete')),
    content       TEXT,
    author        TEXT,
    created_seq   INTEGER
);
CREATE INDEX IF NOT EXISTS _nebula_annotation_history_by_entity
    ON _nebula_annotation_history (annotation_id, commit_id);
CREATE INDEX IF NOT EXISTS _nebula_annotation_history_by_commit
    ON _nebula_annotation_history (commit_id);
CREATE TABLE IF NOT EXISTS _nebula_attachment_history (
    history_id      INTEGER PRIMARY KEY AUTOINCREMENT,
    commit_id       INTEGER NOT NULL REFERENCES _nebula_commits(commit_id),
    attachment_id   INTEGER NOT NULL,
    op              TEXT NOT NULL CHECK (op IN ('insert', 'update', 'delete')),
    annotation_id   INTEGER,
    target_table    TEXT,
    target_rowid    INTEGER,
    target_rowid_hi INTEGER,
    target_column   TEXT,
    confidence      REAL,
    kind            TEXT
);
CREATE INDEX IF NOT EXISTS _nebula_attachment_history_by_entity
    ON _nebula_attachment_history (attachment_id, commit_id);
CREATE INDEX IF NOT EXISTS _nebula_attachment_history_by_commit
    ON _nebula_attachment_history (commit_id);
CREATE INDEX IF NOT EXISTS _nebula_attachment_history_by_target
    ON _nebula_attachment_history (target_table, target_rowid);
CREATE VIEW IF NOT EXISTS _nebula_annotations_current AS
    SELECT h.annotation_id AS annotation_id,
           h.content       AS content,
           h.author        AS author,
           h.created_seq   AS created_seq
    FROM _nebula_annotation_history AS h
    JOIN (
        SELECT annotation_id, MAX(history_id) AS history_id
        FROM _nebula_annotation_history
        GROUP BY annotation_id
    ) AS latest ON h.history_id = latest.history_id
    WHERE h.op <> 'delete';
CREATE VIEW IF NOT EXISTS _nebula_attachments_current AS
    SELECT h.attachment_id   AS attachment_id,
           h.annotation_id   AS annotation_id,
           h.target_table    AS target_table,
           h.target_rowid    AS target_rowid,
           h.target_rowid_hi AS target_rowid_hi,
           h.target_column   AS target_column,
           h.confidence      AS confidence,
           h.kind            AS kind
    FROM _nebula_attachment_history AS h
    JOIN (
        SELECT attachment_id, MAX(history_id) AS history_id
        FROM _nebula_attachment_history
        GROUP BY attachment_id
    ) AS latest ON h.history_id = latest.history_id
    WHERE h.op <> 'delete';
"""

#: Objects created by :data:`VERSIONING_DDL`, in drop-safe order
#: (views before tables) — the versioning downgrade walks this list.
VERSIONING_OBJECTS: Tuple[Tuple[str, str], ...] = (
    ("view", "_nebula_annotations_current"),
    ("view", "_nebula_attachments_current"),
    ("table", "_nebula_annotation_history"),
    ("table", "_nebula_attachment_history"),
    ("table", "_nebula_commits"),
)

#: The seed-era (pre-versioning) annotation schema — the legacy base
#: every database starts from; owned by migration 0001.
LEGACY_DDL = """
CREATE TABLE IF NOT EXISTS _nebula_annotations (
    annotation_id INTEGER PRIMARY KEY,
    content       TEXT NOT NULL,
    author        TEXT,
    created_seq   INTEGER NOT NULL
);
CREATE TABLE IF NOT EXISTS _nebula_attachments (
    attachment_id   INTEGER PRIMARY KEY,
    annotation_id   INTEGER NOT NULL REFERENCES _nebula_annotations(annotation_id),
    target_table    TEXT NOT NULL,
    target_rowid    INTEGER,
    target_rowid_hi INTEGER,
    target_column   TEXT,
    confidence      REAL NOT NULL,
    kind            TEXT NOT NULL CHECK (kind IN ('true', 'predicted')),
    UNIQUE (annotation_id, target_table, target_rowid, target_rowid_hi, target_column)
);
CREATE INDEX IF NOT EXISTS _nebula_attachments_by_target
    ON _nebula_attachments (target_table, target_rowid);
CREATE INDEX IF NOT EXISTS _nebula_attachments_by_annotation
    ON _nebula_attachments (annotation_id);
"""
