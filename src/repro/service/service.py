"""The concurrent annotation service: many clients, one writer.

:class:`AnnotationService` wraps a :class:`~repro.core.nebula.Nebula`
engine behind the concurrency design the Ontologia storage spec
prescribes for SQLite — **WAL + single writer + concurrent readers**:

* every mutation flows through a bounded :class:`SubmissionQueue` into
  one **writer thread**, which coalesces concurrent submissions into
  ``insert_annotations`` batches (admission control rejects with
  :class:`~repro.errors.ServiceOverloadedError` when the queue is full,
  and per-request **deadlines** expire stale work before it costs a
  Stage 0 write);
* **read endpoints** (search / stats / verification listings) run on the
  caller's thread against read-only reader connections from the storage
  backend, so they never block — nor are blocked by — the writer;
* under sustained pressure the writer **sheds load** down the graceful-
  degradation ladder: it pins the cheaper approximate (spreading) search
  for the batches it flushes, recorded as
  :data:`~repro.resilience.degradation.SERVICE_SHED` on every report;
* a batch poisoned by one bad member falls back to **per-request
  isolation**: the batch rolls back as a whole (capturing no dead
  letters), then each member is re-ingested alone, so only the genuinely
  failing request is dead-lettered while its neighbors land;
* results are **acknowledged only after commit**, which is what makes
  recovery exact: a crash between flush and commit leaves the accepted-
  but-unacked requests invisible, and startup recovery (rollback, WAL
  checkpoint, claim-protected dead-letter replay) converges the database
  to exactly the acknowledged state plus replayed letters.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    TypeVar,
    Union,
)

from ..core.nebula import DiscoveryReport, Nebula
from ..errors import (
    ConfigurationError,
    PipelineStageError,
    ServiceError,
    ServiceUnavailableError,
    StorageError,
)
from ..observability import (
    TIME_BUCKETS,
    EventLog,
    PhaseQuantiles,
    TelemetryServer,
    render_health_gauges,
    render_metrics,
)
from ..perf import AnnotationRequest, RequestLike, coerce_request
from ..resilience.degradation import (
    SERVICE_READER_FALLBACK,
    SERVICE_SHED,
    count_degradation,
)
from ..resilience.degradation import logger as _logger
from ..resilience.retry import is_transient_operational_error
from ..storage.compat import Connection, Error
from ..types import TupleRef
from ..versioning import timetravel
from .queue import Submission, SubmissionQueue, mint_batch_id

T = TypeVar("T")

# Pinned (``as_of``) variants of the read-endpoint queries.  The full
# statements are composed in :mod:`repro.versioning.timetravel`, where
# every piece is a local literal (NBL001-safe by construction).

_FIND_AS_OF = timetravel.FIND_ANNOTATIONS_AS_OF

_ANNOTATIONS_FOR_AS_OF = timetravel.ANNOTATIONS_FOR_TUPLE_AS_OF

#: Pending tasks restricted to annotations visible at the pinned commit
#: (the task table itself is operational state, not versioned).
_PENDING_AS_OF = timetravel.PENDING_TASKS_AS_OF

#: Sentinel distinguishing "use the configured default deadline" from an
#: explicit ``deadline=None`` ("no deadline at all").
_DEFAULT_DEADLINE = object()


@dataclass(frozen=True)
class ServiceConfig:
    """Tunables of the annotation service (validated on construction)."""

    #: Bounded submission-queue capacity; a full queue rejects (429).
    queue_capacity: int = 64
    #: Most submissions one writer flush coalesces into a single batch.
    max_batch: int = 16
    #: Seconds the writer blocks waiting for the first submission of a
    #: batch (also the responsiveness bound of shutdown).
    flush_interval: float = 0.05
    #: Default per-request deadline in seconds (None = no deadline).
    default_deadline: Optional[float] = None
    #: Seconds ``stop()`` waits for the writer to drain and exit.
    shutdown_timeout: float = 5.0
    #: Queue-depth fraction at which load shedding engages.
    shed_watermark: float = 0.75
    #: Queue-depth fraction at which load shedding disengages.
    shed_recovery: float = 0.25
    #: Run crash recovery (rollback, checkpoint, dead-letter replay)
    #: before the service goes ready.
    recover_on_start: bool = True
    #: Most dead letters startup recovery replays (None = all).
    replay_limit: Optional[int] = None
    #: Seconds above which a flush or end-to-end latency emits a
    #: ``slow_op`` event into the structured event log.
    slow_op_threshold: float = 1.0
    #: Sliding-window size of the streaming latency-quantile estimators
    #: (per phase: queue wait, flush, end-to-end).
    latency_window: int = 1024
    #: In-memory ring capacity of the structured event log.
    event_capacity: int = 512
    #: Also append every event as one JSON line to this file (None = no
    #: file; the in-memory ring is always on).
    event_log_path: Optional[str] = None

    def __post_init__(self) -> None:
        if self.queue_capacity < 1:
            raise ConfigurationError("queue_capacity must be >= 1")
        if self.max_batch < 1:
            raise ConfigurationError("max_batch must be >= 1")
        if self.flush_interval <= 0:
            raise ConfigurationError("flush_interval must be > 0")
        if self.default_deadline is not None and self.default_deadline <= 0:
            raise ConfigurationError("default_deadline must be > 0 or None")
        if self.shutdown_timeout <= 0:
            raise ConfigurationError("shutdown_timeout must be > 0")
        if not 0.0 < self.shed_watermark <= 1.0:
            raise ConfigurationError("shed_watermark must be in (0, 1]")
        if not 0.0 <= self.shed_recovery < self.shed_watermark:
            raise ConfigurationError(
                "shed_recovery must satisfy 0 <= shed_recovery < shed_watermark"
            )
        if self.slow_op_threshold <= 0:
            raise ConfigurationError("slow_op_threshold must be > 0")
        if self.latency_window < 1:
            raise ConfigurationError("latency_window must be >= 1")
        if self.event_capacity < 1:
            raise ConfigurationError("event_capacity must be >= 1")


@dataclass(frozen=True)
class ServiceStats:
    """A point-in-time snapshot of the service's accounting.

    ``submitted == ingested + failed + expired + queue_depth +
    in-flight`` at every quiescent point; the smoke harness asserts the
    closed-world version of this (no lost requests) after shutdown.
    """

    submitted: int
    rejected: int
    ingested: int
    failed: int
    expired: int
    batches: int
    replayed: int
    queue_depth: int
    shedding: bool
    writer_alive: bool
    running: bool
    #: p50/p95/p99 of the queue-wait phase (seconds, sliding window).
    queue_wait_seconds: Mapping[str, float] = field(default_factory=dict)
    #: p50/p95/p99 of the writer-flush phase (seconds, sliding window).
    flush_seconds: Mapping[str, float] = field(default_factory=dict)
    #: p50/p95/p99 of submit-to-ack latency (seconds, sliding window).
    e2e_seconds: Mapping[str, float] = field(default_factory=dict)
    #: Engine-open cost of the search index ("loaded" persisted images
    #: skip the rebuild; see ``Nebula.index_cold_start_seconds``).
    index_cold_start_seconds: float = 0.0
    #: Where the index came from: "loaded" / "rebuilt" / "memory".
    index_source: str = "memory"


class _ReadHandle:
    """One borrowed read connection plus how to give it back."""

    def __init__(self, connection: Connection, closer: Callable[[], None]) -> None:
        self.connection = connection
        self._closer = closer

    def release(self) -> None:
        try:
            self._closer()
        except Error:  # pragma: no cover - release is best-effort
            pass


class AnnotationService:
    """A long-running, threaded, multi-client annotation service."""

    def __init__(
        self,
        nebula: Nebula,
        config: Optional[ServiceConfig] = None,
    ) -> None:
        self.nebula = nebula
        self.config = config or ServiceConfig()
        self.backend = nebula.backend
        self.tracer = nebula.tracer
        self.metrics = nebula.metrics
        self._faults = nebula.config.fault_injector
        self._queue = SubmissionQueue(self.config.queue_capacity)
        #: Serializes the writer's flush against last-resort reads on the
        #: primary connection.  The writer never waits on readers —
        #: readers fall back to the primary only when both the reader
        #: and the pooled path are unavailable.
        self._write_lock = threading.Lock()
        self._writer: Optional[threading.Thread] = None
        self._writer_alive = False
        self._started = False
        self._stopped = False
        self._shedding = False
        self._crash: Optional[BaseException] = None
        #: Writer-thread-only counters (single writer: no lock needed).
        self._ingested = 0
        self._failed = 0
        self._expired = 0
        self._batches = 0
        self._replayed = 0
        self._m_ingested = self.metrics.counter("nebula_service_ingested_total")
        self._m_failed = self.metrics.counter("nebula_service_failed_total")
        self._m_expired = self.metrics.counter(
            "nebula_service_deadline_expired_total"
        )
        self._m_rejected = self.metrics.counter("nebula_service_rejected_total")
        self._m_submitted = self.metrics.counter("nebula_service_submitted_total")
        self._m_batches = self.metrics.counter("nebula_service_batches_total")
        self._m_batch_fallbacks = self.metrics.counter(
            "nebula_service_batch_fallbacks_total"
        )
        self._m_reader_fallbacks = self.metrics.counter(
            "nebula_service_reader_fallbacks_total"
        )
        self._m_shed = self.metrics.gauge("nebula_service_shedding")
        self._m_depth = self.metrics.gauge("nebula_service_queue_depth")
        self._m_batch_size = self.metrics.histogram(
            "nebula_service_batch_size",
            buckets=(1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0),
        )
        self._m_request_seconds = self.metrics.histogram(
            "nebula_service_request_seconds", TIME_BUCKETS
        )
        self._m_queue_wait_seconds = self.metrics.histogram(
            "nebula_service_queue_wait_seconds", TIME_BUCKETS
        )
        self._m_flush_seconds = self.metrics.histogram(
            "nebula_service_flush_seconds", TIME_BUCKETS
        )
        self.metrics.gauge("nebula_service_queue_capacity").set(
            float(self.config.queue_capacity)
        )
        #: Streaming p50/p95/p99 per latency phase, published as
        #: ``nebula_service_latency_seconds{phase,quantile}`` gauges.
        self.latency = PhaseQuantiles(
            self.metrics,
            "nebula_service_latency_seconds",
            ("queue", "flush", "e2e"),
            window=self.config.latency_window,
        )
        #: The structured, correlated event stream (bounded ring +
        #: optional JSONL file) — the third telemetry plane next to the
        #: metrics registry and the trace tree.
        self.events = EventLog(
            capacity=self.config.event_capacity,
            path=self.config.event_log_path,
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> "AnnotationService":
        """Recover, then start the writer loop and go ready."""
        if self._started:
            raise ServiceError("annotation service already started")
        if self._stopped:
            raise ServiceError("annotation service already stopped")
        if self.config.recover_on_start:
            self.recover()
        self._writer_alive = True
        self._writer = threading.Thread(
            target=self._writer_loop, name="nebula-service-writer", daemon=True
        )
        self._writer.start()
        self._started = True
        return self

    def stop(self, timeout: Optional[float] = None) -> bool:
        """Graceful, bounded shutdown.

        Closes the queue to new submissions, lets the writer flush
        everything already admitted, and joins it for up to ``timeout``
        (default ``config.shutdown_timeout``) seconds.  Whatever could
        not be flushed in the budget fails with
        :class:`ServiceUnavailableError` — a client is never left
        blocked on a ticket the service will not complete.  Returns True
        when the shutdown was clean (writer exited, nothing stranded).
        """
        budget = self.config.shutdown_timeout if timeout is None else timeout
        self._stopped = True
        self._queue.close()
        writer = self._writer
        if writer is not None and writer.is_alive():
            writer.join(budget)
        clean = writer is None or not writer.is_alive()
        stranded = self._queue.clear()
        for submission in stranded:
            submission.fail(
                ServiceUnavailableError(
                    "annotation service stopped before this submission "
                    "was flushed"
                )
            )
        self._update_depth_gauge()
        return clean and not stranded and self._crash is None

    def __enter__(self) -> "AnnotationService":
        return self.start()

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        self.stop()

    def recover(self) -> List[DiscoveryReport]:
        """Crash-safe startup recovery; returns the replayed reports.

        Rolls back any transaction a dead writer left half-flushed
        (acknowledged work was committed, so only unacked effects are
        discarded), truncates the WAL back into the database file,
        releases dead-letter claims stranded by a crashed replayer, and
        replays the pending dead letters — claim-protected, so a
        concurrent or repeated recovery cannot ingest a letter twice.
        """
        with self.tracer.span("service.recover") as span:
            self.nebula.connection.rollback()
            checkpoint = getattr(self.backend, "checkpoint", None)
            if callable(checkpoint):
                checkpoint()
            # Log-parity check: the materialized head tables must equal
            # the pure-history reconstruction through the current-version
            # views.  They commit atomically, so a mismatch means torn
            # state (e.g. a partially restored backup) — replay the head
            # from the append-only log, which is the source of truth.
            head_ok = self.nebula.commit_log.verify_head()
            span.set_attribute("head_parity", head_ok)
            if not head_ok:
                _logger.warning(
                    "materialized head diverged from the commit log; "
                    "restoring it from history"
                )
                self.nebula.commit_log.restore_head()
                self.metrics.counter("nebula_head_restores_total").inc()
            # The crash (or data loaded while the service was down) may
            # have left the persisted search index behind the data; the
            # stamp check rebuilds it before any traffic is accepted.
            index_rebuilt = self.nebula.ensure_index_fresh()
            span.set_attribute("index_rebuilt", index_rebuilt)
            released = self.nebula.dead_letters.release_claims()
            reports = self.nebula.reprocess_dead_letters(
                limit=self.config.replay_limit
            )
            self.nebula.connection.commit()
            self._replayed += len(reports)
            span.set_attribute("released_claims", released)
            span.set_attribute("replayed", len(reports))
        self.metrics.counter("nebula_service_recoveries_total").inc()
        return reports

    @property
    def running(self) -> bool:
        return self._started and not self._stopped

    @property
    def crashed(self) -> Optional[BaseException]:
        """The BaseException that killed the writer thread, if any."""
        return self._crash

    def ready(self) -> bool:
        """Readiness probe: accepting work and able to make progress."""
        return self.running and self._writer_alive

    def health(self) -> Dict[str, object]:
        """Liveness/health probe (cheap: no database access)."""
        if self._crash is not None:
            status = "crashed"
        elif not self.running:
            status = "stopped" if self._stopped else "starting"
        elif self._shedding:
            status = "degraded"
        else:
            status = "ok"
        return {
            "status": status,
            "ready": self.ready(),
            "backend": self.backend.name,
            "queue_depth": self._queue.depth,
            "queue_capacity": self.config.queue_capacity,
            "shedding": self._shedding,
            "writer_alive": self._writer_alive,
            "latency_seconds": {
                "queue": self.latency.percentiles("queue"),
                "flush": self.latency.percentiles("flush"),
                "e2e": self.latency.percentiles("e2e"),
            },
            "index_cold_start_seconds": self.nebula.index_cold_start_seconds,
            "index_source": self.nebula.index_source,
        }

    def stats(self) -> ServiceStats:
        return ServiceStats(
            submitted=self._queue.admitted,
            rejected=self._queue.rejected,
            ingested=self._ingested,
            failed=self._failed,
            expired=self._expired,
            batches=self._batches,
            replayed=self._replayed,
            queue_depth=self._queue.depth,
            shedding=self._shedding,
            writer_alive=self._writer_alive,
            running=self.running,
            queue_wait_seconds=self.latency.percentiles("queue"),
            flush_seconds=self.latency.percentiles("flush"),
            e2e_seconds=self.latency.percentiles("e2e"),
            index_cold_start_seconds=self.nebula.index_cold_start_seconds,
            index_source=self.nebula.index_source,
        )

    # ------------------------------------------------------------------
    # Telemetry endpoint
    # ------------------------------------------------------------------

    def render_exposition(self) -> str:
        """The Prometheus text exposition of this service's registry.

        Latency-percentile gauges are refreshed first, and the health
        document rides along as synthetic gauges — one render is a
        complete picture.  Each render runs under a ``service.export``
        span so scrape cost shows up in the trace taxonomy.
        """
        with self.tracer.span("service.export") as span:
            self.latency.publish()
            body = render_metrics(self.metrics) + render_health_gauges(
                self.health()
            )
            span.set_attribute("bytes", len(body))
        return body

    def serve_metrics(
        self, host: str = "127.0.0.1", port: int = 0
    ) -> TelemetryServer:
        """Start the telemetry HTTP endpoint; returns the running server.

        ``/metrics`` serves :meth:`render_exposition`, ``/healthz`` the
        :meth:`health` document (503 once the writer crashed), and
        ``/readyz`` the :meth:`ready` probe.  ``port=0`` binds an
        ephemeral port (read it from ``.port``).  The caller owns the
        server's lifecycle (``.stop()``); stopping the service does not
        stop an exporter still being scraped.
        """
        return TelemetryServer(
            self.render_exposition, self.health, self.ready, host=host, port=port
        ).start()

    # ------------------------------------------------------------------
    # Write path (client side)
    # ------------------------------------------------------------------

    def submit(
        self,
        request: RequestLike,
        attach_to: Sequence[TupleRef] = (),
        author: Optional[str] = None,
        deadline: object = _DEFAULT_DEADLINE,
    ) -> Submission:
        """Admit one annotation for ingestion; returns the ticket.

        ``request`` may be a prepared :class:`AnnotationRequest` or bare
        text (with ``attach_to``/``author`` applying to the latter).
        Raises :class:`ServiceOverloadedError` when admission control
        rejects (queue full) and :class:`ServiceUnavailableError` when
        the service is stopped.  Block on ``.result()`` for the report —
        a completed ticket means the annotation is committed.
        """
        if isinstance(request, str):
            prepared = AnnotationRequest.build(request, attach_to, author)
        else:
            prepared = coerce_request(request)
        seconds = (
            self.config.default_deadline
            if deadline is _DEFAULT_DEADLINE
            else deadline
        )
        if seconds is not None and not (
            isinstance(seconds, (int, float)) and seconds > 0
        ):
            raise ServiceError("deadline must be a positive number or None")
        submission = Submission(prepared, deadline=seconds)
        try:
            self._queue.put(submission)
        except Exception as error:
            self._m_rejected.inc()
            self.events.emit(
                "request_rejected",
                request_id=submission.request_id,
                reason=type(error).__name__,
                queue_depth=self._queue.depth,
            )
            raise
        self._m_submitted.inc()
        self._update_depth_gauge()
        self.events.emit(
            "request_admitted",
            request_id=submission.request_id,
            queue_depth=self._queue.depth,
        )
        return submission

    def ingest(
        self,
        request: RequestLike,
        attach_to: Sequence[TupleRef] = (),
        author: Optional[str] = None,
        deadline: object = _DEFAULT_DEADLINE,
        timeout: Optional[float] = None,
    ) -> DiscoveryReport:
        """Synchronous convenience: ``submit`` + ``result``."""
        ticket = self.submit(request, attach_to, author, deadline)
        report = ticket.result(timeout)
        assert isinstance(report, DiscoveryReport)
        return report

    # ------------------------------------------------------------------
    # Writer loop
    # ------------------------------------------------------------------

    def _writer_loop(self) -> None:
        try:
            while True:
                batch = self._queue.drain(
                    self.config.max_batch, self.config.flush_interval
                )
                self._update_depth_gauge()
                if not batch:
                    if self._queue.closed:
                        break
                    continue
                try:
                    self._flush(batch)
                except Exception as error:
                    # An unexpected (non-pipeline) failure must not kill
                    # the writer: fail this batch, serve the next one.
                    _logger.warning("service flush failed: %s", error)
                    self._rollback_quietly()
                    for submission in batch:
                        submission.fail(error)
                    self._failed += len(batch)
                    self._m_failed.inc(len(batch))
        except BaseException as crash:
            # A simulated (or real) crash: record it, acknowledge
            # nothing — recovery owns the truth from here.
            self._crash = crash
        finally:
            self._writer_alive = False

    def _flush(self, batch: List[Submission]) -> None:
        now = time.monotonic()
        live: List[Submission] = []
        for submission in batch:
            if submission.expired(now):
                self._expire(submission)
            else:
                live.append(submission)
        if not live:
            return
        self._update_shedding()
        if self._faults is not None:
            # Writer-stall / scripted-failure chaos point.
            self._faults.check("service.flush")
        batch_id = mint_batch_id()
        flush_started = time.monotonic()
        for submission in live:
            # Queue wait ends here: the flush owns the request from now
            # on, whatever path (batched or isolated) it takes.
            submission.batch_id = batch_id
            wait = flush_started - submission.submitted_at
            self.latency.observe("queue", wait)
            self._m_queue_wait_seconds.observe(wait)
        with self.tracer.span("service.batch_flush") as span:
            span.set_attribute("batch_size", len(live))
            span.set_attribute("batch_id", batch_id)
            shedding = self._shedding
            span.set_attribute("shedding", shedding)
            for submission in live:
                # Span links: one per member, resolving the coalesced
                # flush back to each admitted request.
                span.add_link(request_id=submission.request_id)
            try:
                with self._write_lock:
                    self._begin()
                    reports = self.nebula.insert_annotations(
                        [submission.request for submission in live],
                        use_spreading=True if shedding else None,
                        capture_dead_letter=False,
                        request_id=batch_id,
                    )
                    if self._faults is not None:
                        # Mid-batch crash chaos point: after the flush,
                        # before the commit — the acid test of ack-
                        # after-commit recovery.
                        self._faults.check("service.crash")
                    self._commit()
            except PipelineStageError:
                # One poisoned member must not fail its neighbors: the
                # batch rolled back without capturing dead letters;
                # isolate each member on the per-request path.
                span.set_attribute("poisoned", True)
                self._m_batch_fallbacks.inc()
                self._flush_individually(live, batch_id)
                return
            for submission, report in zip(live, reports):
                if shedding:
                    report.degradations.append(SERVICE_SHED)
                self._complete(submission, report, flush_started=flush_started)
        self._finish_batch(batch_id, live, flush_started, shedding)

    def _finish_batch(
        self,
        batch_id: str,
        live: List[Submission],
        flush_started: float,
        shedding: bool,
        poisoned: bool = False,
    ) -> None:
        elapsed = time.monotonic() - flush_started
        self._batches += 1
        self._m_batches.inc()
        self._m_batch_size.observe(float(len(live)))
        self.latency.observe("flush", elapsed)
        self._m_flush_seconds.observe(elapsed)
        self.latency.publish()
        self.events.emit(
            "batch_flushed",
            batch_id=batch_id,
            request_ids=[submission.request_id for submission in live],
            size=len(live),
            flush_seconds=round(elapsed, 6),
            shedding=shedding,
            poisoned=poisoned,
        )
        if elapsed > self.config.slow_op_threshold:
            self.events.emit(
                "slow_op",
                op="flush",
                batch_id=batch_id,
                seconds=round(elapsed, 6),
                threshold=self.config.slow_op_threshold,
            )

    def _flush_individually(
        self, submissions: List[Submission], batch_id: str
    ) -> None:
        """Per-request isolation after a poisoned batch.

        Each member re-runs alone; only the genuinely failing ones are
        dead-lettered (by ``insert_annotation`` itself, with the
        submission's ``request_id`` stamped onto the captured row) and
        failed back to their clients.
        """
        flush_started = time.monotonic()
        for submission in submissions:
            if submission.expired():
                self._expire(submission)
                continue
            with self.tracer.span("service.request") as span:
                span.set_attribute("request_id", submission.request_id)
                span.add_link(batch_id=batch_id)
                request = submission.request
                try:
                    with self._write_lock:
                        self._begin()
                        report = self.nebula.insert_annotation(
                            request.text,
                            attach_to=request.focal,
                            author=request.author,
                            request_id=submission.request_id,
                        )
                        self._commit()
                except PipelineStageError as error:
                    span.set_attribute("dead_letter_id", error.dead_letter_id)
                    self._fail(submission, error)
                else:
                    self._complete(submission, report)
        self._finish_batch(
            batch_id, submissions, flush_started, self._shedding, poisoned=True
        )

    def _complete(
        self,
        submission: Submission,
        report: DiscoveryReport,
        flush_started: Optional[float] = None,
    ) -> None:
        completed = time.monotonic()
        e2e = completed - submission.submitted_at
        report.request_id = submission.request_id
        self._ingested += 1
        self._m_ingested.inc()
        self._m_request_seconds.observe(e2e)
        self.latency.observe("e2e", e2e)
        self.events.emit(
            "request_flushed",
            request_id=submission.request_id,
            batch_id=submission.batch_id,
            annotation_id=report.annotation_id,
            e2e_seconds=round(e2e, 6),
        )
        if e2e > self.config.slow_op_threshold:
            self.events.emit(
                "slow_op",
                op="e2e",
                request_id=submission.request_id,
                batch_id=submission.batch_id,
                seconds=round(e2e, 6),
                threshold=self.config.slow_op_threshold,
            )
        submission.succeed(report)

    def _fail(self, submission: Submission, error: PipelineStageError) -> None:
        """Fail one poisoned member: stamp + record its dead letter."""
        self._failed += 1
        self._m_failed.inc()
        letter_id = error.dead_letter_id
        if letter_id is not None:
            try:
                self.nebula.dead_letters.assign_request(
                    int(letter_id), submission.request_id
                )
            except Exception as stamp_error:  # pragma: no cover - best effort
                _logger.warning(
                    "could not stamp request id on dead letter %s: %s",
                    letter_id, stamp_error,
                )
        self.events.emit(
            "request_dead_lettered",
            request_id=submission.request_id,
            batch_id=submission.batch_id,
            letter_id=letter_id,
            stage=error.stage,
        )
        self.events.emit(
            "request_failed",
            request_id=submission.request_id,
            batch_id=submission.batch_id,
            error=type(error).__name__,
        )
        submission.fail(error)

    def _expire(self, submission: Submission) -> None:
        submission.expire()
        self._expired += 1
        self._m_expired.inc()
        self.events.emit(
            "request_expired",
            request_id=submission.request_id,
            waited_seconds=round(submission.waited(), 6),
            deadline=submission.deadline,
        )

    def _begin(self) -> None:
        """Open an explicit transaction for the coming flush.

        Without it the pipeline's outermost SAVEPOINT *is* the
        transaction — SQLite commits on its RELEASE — and the service's
        commit-before-ack step would be a no-op: a crash after the flush
        could then leave never-acknowledged annotations durable.  With
        the explicit ``BEGIN`` the savepoint nests inside the service's
        transaction, and durability happens exactly at :meth:`_commit`.
        """
        if not self.nebula.connection.in_transaction:
            self.nebula.connection.execute("BEGIN")

    def _commit(self) -> None:
        """The flush's durability point, traced as ``service.commit``."""
        with self.tracer.span("service.commit") as span:
            self.nebula.retry.run(self.nebula.connection.commit, "service.commit")
            span.set_attribute("head", self.nebula.commit_log.head())

    def _rollback_quietly(self) -> None:
        try:
            self.nebula.connection.rollback()
        except Error:  # pragma: no cover - rollback is best-effort
            pass

    def _update_shedding(self) -> None:
        depth = self._queue.depth
        capacity = self.config.queue_capacity
        if not self._shedding and depth >= capacity * self.config.shed_watermark:
            self._shedding = True
            self._m_shed.set(1)
            count_degradation(SERVICE_SHED)
            self.events.emit(
                "shed_engaged", queue_depth=depth, queue_capacity=capacity
            )
            _logger.warning(
                "service shedding load: queue %d/%d, pinning approximate search",
                depth, capacity,
            )
        elif self._shedding and depth <= capacity * self.config.shed_recovery:
            self._shedding = False
            self._m_shed.set(0)
            self.events.emit(
                "shed_released", queue_depth=depth, queue_capacity=capacity
            )

    def _update_depth_gauge(self) -> None:
        self._m_depth.set(self._queue.depth)

    # ------------------------------------------------------------------
    # Read path (caller's thread; never blocks the writer)
    # ------------------------------------------------------------------

    def annotation_count(self) -> int:
        """Total stored annotations (reader connection)."""
        return self._read(
            lambda connection: int(
                connection.execute(
                    "SELECT COUNT(*) FROM _nebula_annotations"
                ).fetchone()[0]
            )
        )

    def head_commit(self) -> Optional[int]:
        """The newest commit id in the append-only log.

        A client pins this once, then passes it as ``as_of`` to the read
        endpoints: because history rows are immutable, every pinned read
        sees the same snapshot no matter how many batches the writer
        commits in between.  None on a database with no commits yet.
        """
        return self._read(
            lambda connection: (
                lambda value: None if value is None else int(value)
            )(
                connection.execute(
                    "SELECT MAX(commit_id) FROM _nebula_commits"
                ).fetchone()[0]
            )
        )

    def find_annotations(
        self, needle: str, limit: int = 20, as_of: Optional[int] = None
    ) -> List[Tuple[int, str, Optional[str]]]:
        """Substring search over annotation content, newest first.

        ``as_of`` pins the search to a commit id (see
        :meth:`head_commit`); the default reads the materialized head.
        """
        if as_of is None:
            sql = (
                "SELECT annotation_id, content, author "
                "FROM _nebula_annotations "
                "WHERE content LIKE '%' || ? || '%' "
                "ORDER BY annotation_id DESC LIMIT ?"
            )
            params: Tuple = (needle, int(limit))
        else:
            sql = _FIND_AS_OF
            params = (int(as_of), needle, int(limit))
        return self._read(
            lambda connection: [
                (int(row[0]), str(row[1]), row[2])
                for row in connection.execute(sql, params)
            ]
        )

    def annotations_for(
        self, table: str, rowid: int, as_of: Optional[int] = None
    ) -> List[Tuple[int, str, float, str]]:
        """Annotations attached to one tuple: (id, content, confidence,
        kind), strongest first.  ``as_of`` pins the read to a commit."""
        if as_of is None:
            sql = (
                "SELECT a.annotation_id, a.content, t.confidence, t.kind "
                "FROM _nebula_annotations a "
                "JOIN _nebula_attachments t "
                "ON t.annotation_id = a.annotation_id "
                "WHERE t.target_table = ? AND t.target_rowid = ? "
                "ORDER BY t.confidence DESC, a.annotation_id"
            )
            params: Tuple = (table, int(rowid))
        else:
            sql = _ANNOTATIONS_FOR_AS_OF
            params = (int(as_of), int(as_of), table, int(rowid))
        return self._read(
            lambda connection: [
                (int(row[0]), str(row[1]), float(row[2]), str(row[3]))
                for row in connection.execute(sql, params)
            ]
        )

    def pending_verifications(
        self, limit: Optional[int] = None, as_of: Optional[int] = None
    ) -> List[Tuple[int, int, str, int, float]]:
        """Pending verification tasks: (task, annotation, table, rowid,
        confidence), most confident first.

        With ``as_of`` the listing is restricted to tasks whose
        annotation was visible at the pinned commit (the task table is
        operational state, not itself versioned).
        """
        bound = -1 if limit is None else int(limit)
        if as_of is None:
            sql = (
                "SELECT task_id, annotation_id, target_table, target_rowid, "
                "confidence FROM _nebula_verification_tasks "
                "WHERE status = 'pending' "
                "ORDER BY confidence DESC, task_id LIMIT ?"
            )
            params: Tuple = (bound,)
        else:
            sql = _PENDING_AS_OF
            params = (int(as_of), bound)
        return self._read(
            lambda connection: [
                (int(r[0]), int(r[1]), str(r[2]), int(r[3]), float(r[4]))
                for r in connection.execute(sql, params)
            ]
        )

    def dead_letter_count(self) -> int:
        """Pending dead letters (reader connection)."""
        return self._read(
            lambda connection: int(
                connection.execute(
                    "SELECT COUNT(*) FROM _nebula_dead_letters "
                    "WHERE status = 'pending'"
                ).fetchone()[0]
            )
        )

    def _read(self, fn: Callable[[Connection], T]) -> T:
        handle = self._acquire_reader()
        try:
            return fn(handle.connection)
        except Error as error:
            # Shared-cache readers (the memory engine has no WAL) take
            # table-level locks: a read overlapping the writer's open
            # transaction raises ``database table is locked`` instead of
            # blocking.  Serialize this one read against the writer on
            # the primary connection and retry.
            if handle.connection is self.nebula.connection:
                raise
            if not is_transient_operational_error(error):
                raise
            self._m_reader_fallbacks.inc()
            count_degradation(SERVICE_READER_FALLBACK)
            self._write_lock.acquire()
        finally:
            handle.release()
        retry = _ReadHandle(self.nebula.connection, self._write_lock.release)
        try:
            return fn(retry.connection)
        finally:
            retry.release()

    def _acquire_reader(self) -> _ReadHandle:
        """A connection safe for reads concurrent with the writer.

        The ladder: a read-only reader connection; then (reader outage,
        or an engine without readers) a pooled read-write handle used
        read-only; then, last resort, the primary connection serialized
        against the writer by the write lock.  Every step down is
        recorded as :data:`SERVICE_READER_FALLBACK`.
        """
        try:
            if self._faults is not None:
                # Reader-outage chaos point.
                self._faults.check("service.reader")
            reader = self.backend.open_reader()
            if reader is not None:
                return _ReadHandle(reader, reader.close)
        except Exception as error:
            _logger.warning("service reader unavailable, degrading: %s", error)
        self._m_reader_fallbacks.inc()
        count_degradation(SERVICE_READER_FALLBACK)
        try:
            lease = self.backend.acquire(timeout=self.config.flush_interval)
            return _ReadHandle(lease.connection, lease.release)
        except (StorageError, Error):
            # No pool either (e.g. a private in-memory database): use
            # the primary, serialized against the writer's flushes.
            self._write_lock.acquire()
            return _ReadHandle(self.nebula.connection, self._write_lock.release)


#: The historical spelling some tools prefer.
def serve(nebula: Nebula, config: Optional[ServiceConfig] = None) -> AnnotationService:
    """Construct and start an :class:`AnnotationService` (one call)."""
    return AnnotationService(nebula, config).start()
