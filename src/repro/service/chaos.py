"""The chaos harness: scripted failures against a live service.

A :class:`ChaosHarness` wraps the :class:`~repro.resilience.faults.
FaultInjector` a service was configured with and names the scenarios the
robustness suite (``tests/test_service_chaos.py``) runs:

* :meth:`writer_stall` — the writer's flush blocks (slow disk, fsync
  storm).  The invariant under a stalled writer: reads keep completing
  (WAL readers never wait on the write transaction) and admission
  control starts rejecting once the queue fills — no unbounded buffering.
* :meth:`reader_outage` — opening a reader connection fails; the read
  path must step down its fallback ladder instead of erroring out.
* :meth:`poison_batch` — Stage 3 fails mid-batch; one bad member must
  not take its neighbors down (per-request isolation + dead letter).
* :meth:`crash_before_commit` — a :class:`~repro.resilience.faults.
  SimulatedCrash` (a ``BaseException``, uncatchable by robust code)
  fires after a batch flushed but before it committed.  The invariant:
  after restart + recovery, the database holds exactly the acknowledged
  annotations — the crashed batch's members were never acked, their
  writes rolled back, nothing is duplicated by replay.

The harness only *arms* faults; the service's own fault-point checks
(``service.flush`` / ``service.reader`` / ``service.crash`` /
``queue.triage``) fire them.  Everything is deterministic — no random
sleeps, no wall-clock races.
"""

from __future__ import annotations

from typing import Optional

from ..errors import ConfigurationError
from ..resilience.faults import FaultInjector, SimulatedCrash


class ChaosHarness:
    """Named chaos scenarios over a service's fault injector."""

    def __init__(self, faults: Optional[FaultInjector]) -> None:
        if faults is None:
            raise ConfigurationError(
                "chaos needs a fault injector: construct the engine with "
                "NebulaConfig(fault_injector=FaultInjector())"
            )
        self.faults = faults

    def writer_stall(self, seconds: float, times: int = 1) -> "ChaosHarness":
        """The next ``times`` batch flushes stall ``seconds`` each."""
        self.faults.arm_stall("service.flush", seconds, times=times)
        return self

    def reader_outage(self, times: int = 1) -> "ChaosHarness":
        """The next ``times`` reader-connection opens fail."""
        self.faults.arm("service.reader", times=times)
        return self

    def poison_batch(self, times: int = 1) -> "ChaosHarness":
        """Stage-3 triage fails for the next ``times`` annotations.

        Against a batch flush: the first failure poisons the whole
        batch (rolled back, no dead letters); the service's per-request
        fallback then re-runs each member, where the remaining armed
        failures dead-letter only the members they hit.
        """
        self.faults.arm("queue.triage", times=times)
        return self

    def crash_before_commit(self) -> "ChaosHarness":
        """The next flushed batch dies between flush and commit."""
        self.faults.arm(
            "service.crash", lambda: SimulatedCrash("service.crash")
        )
        return self

    def fired(self, point: Optional[str] = None) -> int:
        """How many scripted faults actually fired."""
        return self.faults.fired(point)

    def reset(self) -> None:
        self.faults.reset()
