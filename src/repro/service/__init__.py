"""The concurrent annotation service (one writer, many clients).

:class:`AnnotationService` runs a :class:`~repro.core.nebula.Nebula`
engine as a long-lived threaded service: a bounded submission queue with
reject-on-full admission control feeds a single writer thread that
coalesces requests into batches, while read endpoints serve search and
stats from concurrent reader connections (WAL).  See ``docs/service.md``
for the architecture and the overload / recovery semantics.

>>> from repro import Nebula, AnnotationService
>>> service = AnnotationService(Nebula(backend)).start()
>>> ticket = service.submit("Sample #12 shows contamination")
>>> report = ticket.result(timeout=5.0)
>>> service.stop()
"""

from .chaos import ChaosHarness
from .queue import Submission, SubmissionQueue, mint_batch_id, mint_request_id
from .service import AnnotationService, ServiceConfig, ServiceStats, serve

__all__ = [
    "AnnotationService",
    "ChaosHarness",
    "ServiceConfig",
    "ServiceStats",
    "Submission",
    "SubmissionQueue",
    "mint_batch_id",
    "mint_request_id",
    "serve",
]
