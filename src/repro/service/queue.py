"""The bounded submission queue feeding the single-writer loop.

Clients hand :class:`Submission` tickets to :meth:`SubmissionQueue.put`
from any thread; the writer drains them in arrival order with
:meth:`SubmissionQueue.drain`, taking up to a whole batch at once so
concurrent submissions coalesce into one ``insert_annotations`` pass.

**Admission control is reject-on-full**: a ``put`` against a full queue
raises :class:`~repro.errors.ServiceOverloadedError` immediately (the
429 of this layer) instead of blocking the client — under overload the
queue bounds both memory and the worst-case latency of everything
already admitted.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from collections import deque
from typing import Deque, List, Optional

from ..errors import (
    DeadlineExceededError,
    ServiceOverloadedError,
    ServiceUnavailableError,
)
from ..perf import AnnotationRequest

#: Process-wide submission sequence.  ``next()`` on an ``itertools.count``
#: is atomic under the GIL, so ids stay unique across client threads; the
#: pid prefix keeps them unique across processes sharing a database.
_REQUEST_SEQUENCE = itertools.count(1)
_BATCH_SEQUENCE = itertools.count(1)


def mint_request_id() -> str:
    """A process-unique correlation id, minted at submission time.

    Deliberately not random: ``req-<pid>-<seq>`` sorts in admission
    order, which makes event logs and traces legible, and two ids never
    collide within or across concurrent service processes.
    """
    return f"req-{os.getpid():x}-{next(_REQUEST_SEQUENCE):08x}"


def mint_batch_id() -> str:
    """A process-unique id for one coalesced writer flush."""
    return f"batch-{os.getpid():x}-{next(_BATCH_SEQUENCE):08x}"


class Submission:
    """One admitted annotation request and its eventual outcome.

    The client thread holds the ticket and blocks in :meth:`result`;
    the writer thread completes it with ``succeed``/``fail``.  The
    ticket completes exactly once — later completions are ignored, so a
    crash-path sweep cannot overwrite a real outcome.
    """

    def __init__(
        self,
        request: AnnotationRequest,
        deadline: Optional[float] = None,
    ) -> None:
        self.request = request
        #: Correlation id threading this request through queue events,
        #: batch-flush span links, the ``DiscoveryReport``, and any
        #: dead-letter row it ends up in.
        self.request_id = mint_request_id()
        #: The coalesced batch that flushed this request (writer-set).
        self.batch_id: Optional[str] = None
        #: Seconds the request may wait end-to-end (None = no deadline).
        self.deadline = deadline
        self.submitted_at = time.monotonic()
        self._done = threading.Event()
        self._report: Optional[object] = None
        self._error: Optional[BaseException] = None

    # -- writer side ----------------------------------------------------

    def succeed(self, report: object) -> None:
        if not self._done.is_set():
            self._report = report
            self._done.set()

    def fail(self, error: BaseException) -> None:
        if not self._done.is_set():
            self._error = error
            self._done.set()

    def expired(self, now: Optional[float] = None) -> bool:
        """Whether the deadline elapsed (before the writer got to it)."""
        if self.deadline is None:
            return False
        now = time.monotonic() if now is None else now
        return now - self.submitted_at >= self.deadline

    def waited(self, now: Optional[float] = None) -> float:
        now = time.monotonic() if now is None else now
        return now - self.submitted_at

    def expire(self) -> None:
        """Complete the ticket with a :class:`DeadlineExceededError`."""
        assert self.deadline is not None
        self.fail(DeadlineExceededError(self.waited(), self.deadline))

    # -- client side ----------------------------------------------------

    @property
    def done(self) -> bool:
        return self._done.is_set()

    def result(self, timeout: Optional[float] = None) -> object:
        """Block until the writer completes the ticket.

        Returns the :class:`~repro.core.nebula.DiscoveryReport`; raises
        the writer-side error (deadline expiry, pipeline failure,
        shutdown) or :class:`TimeoutError` when ``timeout`` elapses
        first — in which case the submission is still in flight.
        """
        if not self._done.wait(timeout):
            raise TimeoutError("submission still in flight")
        if self._error is not None:
            raise self._error
        return self._report


class SubmissionQueue:
    """Bounded FIFO of submissions with reject-on-full admission."""

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("queue capacity must be >= 1")
        self.capacity = capacity
        self._items: Deque[Submission] = deque()
        self._condition = threading.Condition()
        self._closed = False
        #: Lifetime admission counters (guarded by the condition lock).
        self.admitted = 0
        self.rejected = 0

    @property
    def depth(self) -> int:
        with self._condition:
            return len(self._items)

    @property
    def closed(self) -> bool:
        with self._condition:
            return self._closed

    def put(self, submission: Submission) -> None:
        """Admit one submission or reject it immediately.

        Raises :class:`ServiceOverloadedError` on a full queue and
        :class:`ServiceUnavailableError` on a closed one.
        """
        with self._condition:
            if self._closed:
                raise ServiceUnavailableError(
                    "annotation service is not accepting submissions"
                )
            if len(self._items) >= self.capacity:
                self.rejected += 1
                raise ServiceOverloadedError(len(self._items), self.capacity)
            self._items.append(submission)
            self.admitted += 1
            self._condition.notify()

    def drain(self, max_items: int, timeout: float) -> List[Submission]:
        """Take up to ``max_items`` submissions, oldest first.

        Blocks up to ``timeout`` seconds for the first item; whatever
        else is already queued comes along in the same batch (the
        coalescing that turns concurrent clients into one
        ``insert_annotations`` call).  Returns ``[]`` on timeout or when
        the queue is closed and empty.
        """
        with self._condition:
            # Re-check the predicate after every wakeup: notify is
            # advisory, and a concurrent drain may have taken the item
            # that triggered it.
            deadline = time.monotonic() + timeout
            while not self._items and not self._closed:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                self._condition.wait(remaining)
            batch: List[Submission] = []
            while self._items and len(batch) < max_items:
                batch.append(self._items.popleft())
            return batch

    def close(self) -> List[Submission]:
        """Refuse new submissions; return whatever was still queued.

        The caller (the service's shutdown path) decides the fate of the
        returned stragglers — flush them within the shutdown budget or
        fail them with :class:`ServiceUnavailableError`.
        """
        with self._condition:
            self._closed = True
            self._condition.notify_all()
            return list(self._items)

    def clear(self) -> List[Submission]:
        """Remove and return every queued submission (shutdown sweep)."""
        with self._condition:
            items = list(self._items)
            self._items.clear()
            return items
