"""SQLite-backed annotation storage.

The store keeps two side tables alongside the user's data tables:

``_nebula_annotations``
    one row per annotation (free text, author, insertion order);

``_nebula_attachments``
    one row per (annotation, target) edge.  A target is a table plus an
    optional rowid plus an optional column, which encodes the granularities
    the passive engine supports:

    ========================  =========================================
    rowid set, column NULL     row annotation
    rowid set, column set      cell annotation
    rowid NULL, column set     column annotation (applies to all rows)
    rowid NULL, column NULL    table annotation
    ========================  =========================================

    ``kind`` distinguishes the paper's edge types: ``true`` attachments
    (weight 1.0, manually established or verified) and ``predicted``
    attachments (weight < 1.0, proposed by Nebula and pending resolution).

Arbitrary *sets* of targets are expressed as multiple attachment rows of
the same annotation, matching the paper's many-to-many edge model.

Both tables are *versioned* (PR 10): they hold the materialized head of
the append-only commit log in :mod:`repro.versioning`.  Every mutation
appends the matching history row through :class:`~repro.versioning.CommitLog`
inside the same transaction, the only UPDATE/DELETE statements against
them live in that package (lint rule NBL013), and every read method
accepts ``as_of=<commit_id>`` to reconstruct a historical state from
the log instead of the head.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Iterable, List, Optional, Sequence, Tuple

from ..errors import (
    StorageError,
    UnknownAnnotationError,
    UnknownColumnError,
    UnknownTableError,
)
from ..resilience.retry import RetryPolicy
from ..storage.compat import Connection, Cursor
from ..utils.sql import quote_identifier
from ..types import CellRef, TupleRef
from ..versioning import CommitLog, ensure_schema
from ..versioning import timetravel


#: Column list of every attachment SELECT (keep in sync with the DDL).
_ATTACHMENT_COLUMNS = (
    "attachment_id, annotation_id, target_table, target_rowid, "
    "target_rowid_hi, target_column, confidence, kind"
)


class AttachmentKind(str, Enum):
    """Edge types of the annotated-database model (paper Figure 2)."""

    TRUE = "true"
    PREDICTED = "predicted"


@dataclass(frozen=True)
class Annotation:
    """One stored annotation."""

    annotation_id: int
    content: str
    author: Optional[str]
    created_seq: int


@dataclass(frozen=True)
class Attachment:
    """One stored attachment edge.

    A *range* attachment (the compact representation of the substrate
    engine) covers every rowid in ``[rowid, rowid_hi]`` with one stored
    edge; plain attachments have ``rowid_hi is None``.
    """

    attachment_id: int
    annotation_id: int
    table: str
    rowid: Optional[int]
    column: Optional[str]
    confidence: float
    kind: AttachmentKind
    rowid_hi: Optional[int] = None

    @property
    def is_range(self) -> bool:
        return self.rowid_hi is not None

    @property
    def tuple_ref(self) -> Optional[TupleRef]:
        """TupleRef of a single-row attachment; None for column/table
        level and for multi-row ranges."""
        if self.rowid is None or self.is_range:
            return None
        return TupleRef(self.table, self.rowid)

    def covers(self, rowid: int) -> bool:
        """Whether this attachment applies to ``rowid`` (row-level only)."""
        if self.rowid is None:
            return True  # column/table level applies to every row
        if self.rowid_hi is None:
            return self.rowid == rowid
        return self.rowid <= rowid <= self.rowid_hi


class AnnotationStore:
    """Low-level persistence for annotations and attachments."""

    def __init__(
        self,
        connection: Connection,
        retry: Optional[RetryPolicy] = None,
    ) -> None:
        self.connection = connection
        #: Retry policy for transient lock/busy errors on writes; None
        #: keeps the historical fail-fast behavior.
        self.retry = retry
        # Schema ownership lives in the migration chain: a fresh database
        # gets the full versioned layout, a seed-era one is baseline-
        # stamped and upgraded in place.
        ensure_schema(connection)
        #: The append-only commit log every mutation below reports to.
        self.versioning = CommitLog(connection, retry=retry)
        # Schema lookups are on the hot path of bulk attachment; results are
        # cached and invalidated via ``invalidate_schema_cache`` on DDL.
        self._table_cache: dict = {}
        self._column_cache: dict = {}
        # Monotone insertion counter, seeded from the persisted maximum so
        # bulk inserts avoid a per-insert MAX() scan.
        row = self.connection.execute(
            "SELECT COALESCE(MAX(created_seq), 0) FROM _nebula_annotations"
        ).fetchone()
        self._next_seq = int(row[0]) + 1

    def _write(self, sql: str, params: Sequence = ()) -> Cursor:
        """Execute a mutating statement, retrying transient lock errors."""
        if self.retry is None:
            return self.connection.execute(sql, params)
        return self.retry.run(lambda: self.connection.execute(sql, params), sql)

    def _write_many(self, sql: str, rows: Sequence[Sequence]) -> Cursor:
        """``executemany`` with the same retry policy as :meth:`_write`."""
        if self.retry is None:
            return self.connection.executemany(sql, rows)
        return self.retry.run(lambda: self.connection.executemany(sql, rows), sql)

    # ------------------------------------------------------------------
    # Schema validation helpers
    # ------------------------------------------------------------------

    def invalidate_schema_cache(self) -> None:
        """Drop cached schema lookups after DDL changes."""
        self._table_cache.clear()
        self._column_cache.clear()

    def _user_tables(self) -> List[str]:
        rows = self.connection.execute(
            "SELECT name FROM sqlite_master WHERE type = 'table' "
            "AND name NOT LIKE '_nebula_%' AND name NOT LIKE 'sqlite_%'"
        ).fetchall()
        return [r[0] for r in rows]

    def validate_table(self, table: str) -> str:
        """Return the canonical table name, raising on unknown tables."""
        key = table.casefold()
        cached = self._table_cache.get(key)
        if cached is not None:
            return cached
        for name in self._user_tables():
            if name.casefold() == key:
                self._table_cache[key] = name
                return name
        raise UnknownTableError(table)

    def validate_column(self, table: str, column: str) -> str:
        """Return the canonical column name, raising on unknown columns."""
        canonical_table = self.validate_table(table)
        key = (canonical_table, column.casefold())
        cached = self._column_cache.get(key)
        if cached is not None:
            return cached
        for row in self.connection.execute(
            f"PRAGMA table_info({quote_identifier(canonical_table)})"
        ):
            if row[1].casefold() == column.casefold():
                self._column_cache[key] = row[1]
                return row[1]
        raise UnknownColumnError(table, column)

    # ------------------------------------------------------------------
    # Annotations
    # ------------------------------------------------------------------

    def insert_annotation(self, content: str, author: Optional[str] = None) -> Annotation:
        """Persist a new annotation and return it."""
        if not content or not content.strip():
            raise StorageError("annotation content must be non-empty")
        created_seq = self._next_seq
        self._next_seq += 1
        cursor = self._write(
            "INSERT INTO _nebula_annotations (content, author, created_seq) VALUES (?, ?, ?)",
            (content, author, created_seq),
        )
        annotation_id = int(cursor.lastrowid)
        self.versioning.record_annotation_insert(annotation_id)
        return Annotation(
            annotation_id=annotation_id,
            content=content,
            author=author,
            created_seq=created_seq,
        )

    def bulk_insert_annotations(
        self, items: Sequence[Tuple[str, Optional[str]]]
    ) -> List[Annotation]:
        """Persist many ``(content, author)`` pairs with one statement.

        Validation (non-empty content) runs over the whole batch before
        the first write, so a bad item fails the call without touching the
        database.  Sequence numbers are assigned contiguously in item
        order — iteration order is indistinguishable from the equivalent
        sequence of :meth:`insert_annotation` calls.
        """
        for content, _author in items:
            if not content or not content.strip():
                raise StorageError("annotation content must be non-empty")
        if not items:
            return []
        first_seq = self._next_seq
        self._next_seq += len(items)
        self._write_many(
            "INSERT INTO _nebula_annotations (content, author, created_seq) VALUES (?, ?, ?)",
            [
                (content, author, first_seq + position)
                for position, (content, author) in enumerate(items)
            ],
        )
        self.versioning.record_annotation_range(first_seq, first_seq + len(items) - 1)
        rows = self.connection.execute(
            "SELECT annotation_id, content, author, created_seq "
            "FROM _nebula_annotations WHERE created_seq BETWEEN ? AND ? "
            "ORDER BY created_seq",
            (first_seq, first_seq + len(items) - 1),
        ).fetchall()
        return [Annotation(*row) for row in rows]

    def bulk_attach_true(self, edges: Sequence[Tuple[int, CellRef]]) -> int:
        """Insert many *true* attachment edges with one statement.

        Intended for the focal edges of freshly inserted annotations (no
        pre-existing edges to collide with); duplicates *within* the batch
        are dropped in Python because the UNIQUE constraint treats NULL
        target columns as distinct.  Returns the number of edges written.
        """
        seen: set = set()
        rows: List[Tuple[int, str, Optional[int], Optional[str]]] = []
        for annotation_id, target in edges:
            table = self.validate_table(target.table)
            column = self.validate_column(table, target.column) if target.column else None
            dedupe_key = (annotation_id, table, target.rowid, column)
            if dedupe_key in seen:
                continue
            seen.add(dedupe_key)
            rows.append((annotation_id, table, target.rowid, column))
        if not rows:
            return 0
        watermark = self.versioning.attachment_watermark()
        self._write_many(
            "INSERT INTO _nebula_attachments "
            "(annotation_id, target_table, target_rowid, target_column, confidence, kind) "
            "VALUES (?, ?, ?, ?, 1.0, 'true')",
            rows,
        )
        self.versioning.record_attachments_above(watermark)
        return len(rows)

    def get_annotation(
        self, annotation_id: int, as_of: Optional[int] = None
    ) -> Annotation:
        if as_of is not None:
            pinned = timetravel.get_annotation_row(self.connection, annotation_id, as_of)
            if pinned is None:
                raise UnknownAnnotationError(annotation_id)
            return Annotation(*pinned)
        row = self.connection.execute(
            "SELECT annotation_id, content, author, created_seq "
            "FROM _nebula_annotations WHERE annotation_id = ?",
            (annotation_id,),
        ).fetchone()
        if row is None:
            raise UnknownAnnotationError(annotation_id)
        return Annotation(*row)

    def iter_annotations(self, as_of: Optional[int] = None) -> Iterable[Annotation]:
        if as_of is not None:
            for pinned in timetravel.iter_annotation_rows(self.connection, as_of):
                yield Annotation(*pinned)
            return
        cursor = self.connection.execute(
            "SELECT annotation_id, content, author, created_seq "
            "FROM _nebula_annotations ORDER BY created_seq"
        )
        for row in cursor:
            yield Annotation(*row)

    def count_annotations(self, as_of: Optional[int] = None) -> int:
        if as_of is not None:
            return timetravel.count_annotations(self.connection, as_of)
        return int(
            self.connection.execute("SELECT COUNT(*) FROM _nebula_annotations").fetchone()[0]
        )

    # ------------------------------------------------------------------
    # Attachments
    # ------------------------------------------------------------------

    def attach(
        self,
        annotation_id: int,
        target: CellRef,
        confidence: float = 1.0,
        kind: AttachmentKind = AttachmentKind.TRUE,
    ) -> Attachment:
        """Create an attachment edge; idempotent on duplicate targets.

        True attachments always carry confidence 1.0 (the paper's solid
        edges); predicted attachments must carry confidence < 1.0.
        """
        self.get_annotation(annotation_id)
        table = self.validate_table(target.table)
        column = self.validate_column(table, target.column) if target.column else None
        if kind is AttachmentKind.TRUE:
            confidence = 1.0
        elif not 0.0 <= confidence < 1.0:
            raise StorageError("predicted attachments require confidence in [0, 1)")
        existing = self._find(annotation_id, table, target.rowid, column)
        if existing is not None:
            return self._upgrade_if_needed(existing, confidence, kind)
        cursor = self._write(
            "INSERT INTO _nebula_attachments "
            "(annotation_id, target_table, target_rowid, target_column, confidence, kind) "
            "VALUES (?, ?, ?, ?, ?, ?)",
            (annotation_id, table, target.rowid, column, confidence, kind.value),
        )
        self.versioning.record_attachment_insert(int(cursor.lastrowid))
        return Attachment(
            attachment_id=int(cursor.lastrowid),
            annotation_id=annotation_id,
            table=table,
            rowid=target.rowid,
            column=column,
            confidence=confidence,
            kind=kind,
        )

    def attach_range(
        self,
        annotation_id: int,
        table: str,
        rowid_low: int,
        rowid_high: int,
        column: Optional[str] = None,
    ) -> Attachment:
        """Attach one annotation to every row in ``[rowid_low, rowid_high]``
        with a single stored edge — the substrate engine's compact
        representation for contiguous row sets.  Range edges are always
        *true* attachments (curator-established).
        """
        if rowid_low > rowid_high:
            raise StorageError("range attachment requires rowid_low <= rowid_high")
        if rowid_low == rowid_high:
            return self.attach(annotation_id, CellRef(table, rowid_low, column))
        self.get_annotation(annotation_id)
        canonical = self.validate_table(table)
        validated = self.validate_column(canonical, column) if column else None
        existing = self.connection.execute(
            "SELECT " + _ATTACHMENT_COLUMNS + " FROM _nebula_attachments "
            "WHERE annotation_id = ? AND target_table = ? AND target_rowid IS ? "
            "AND target_rowid_hi IS ? AND target_column IS ?",
            (annotation_id, canonical, rowid_low, rowid_high, validated),
        ).fetchone()
        if existing is not None:
            return _row_to_attachment(existing)
        cursor = self._write(
            "INSERT INTO _nebula_attachments "
            "(annotation_id, target_table, target_rowid, target_rowid_hi, "
            "target_column, confidence, kind) VALUES (?, ?, ?, ?, ?, 1.0, 'true')",
            (annotation_id, canonical, rowid_low, rowid_high, validated),
        )
        self.versioning.record_attachment_insert(int(cursor.lastrowid))
        return Attachment(
            attachment_id=int(cursor.lastrowid),
            annotation_id=annotation_id,
            table=canonical,
            rowid=rowid_low,
            rowid_hi=rowid_high,
            column=validated,
            confidence=1.0,
            kind=AttachmentKind.TRUE,
        )

    def _upgrade_if_needed(
        self, existing: Attachment, confidence: float, kind: AttachmentKind
    ) -> Attachment:
        """A re-attachment can only upgrade predicted -> true."""
        if existing.kind is AttachmentKind.TRUE or kind is AttachmentKind.PREDICTED:
            return existing
        self.versioning.promote_attachment(existing.attachment_id)
        return Attachment(
            attachment_id=existing.attachment_id,
            annotation_id=existing.annotation_id,
            table=existing.table,
            rowid=existing.rowid,
            column=existing.column,
            confidence=1.0,
            kind=AttachmentKind.TRUE,
        )

    def _find(
        self,
        annotation_id: int,
        table: str,
        rowid: Optional[int],
        column: Optional[str],
    ) -> Optional[Attachment]:
        row = self.connection.execute(
            "SELECT " + _ATTACHMENT_COLUMNS + " FROM _nebula_attachments "
            "WHERE annotation_id = ? AND target_table = ? "
            "AND target_rowid IS ? AND target_rowid_hi IS NULL "
            "AND target_column IS ?",
            (annotation_id, table, rowid, column),
        ).fetchone()
        return _row_to_attachment(row) if row is not None else None

    def detach(self, attachment_id: int) -> bool:
        """Remove one attachment edge; returns whether anything was removed.

        The commit log keeps a ``delete`` tombstone, so the edge stays
        visible to ``as_of`` reads at commits where it existed.
        """
        return self.versioning.delete_attachment(attachment_id)

    def promote(self, attachment_id: int) -> None:
        """Turn a predicted attachment into a true one (verified edge)."""
        if not self.versioning.promote_attachment(attachment_id):
            raise StorageError(f"unknown attachment id: {attachment_id}")

    def attachments_of(
        self, annotation_id: int, as_of: Optional[int] = None
    ) -> List[Attachment]:
        """All attachment edges of one annotation."""
        if as_of is not None:
            return [
                _row_to_attachment(r)
                for r in timetravel.attachments_of_rows(
                    self.connection, annotation_id, as_of
                )
            ]
        rows = self.connection.execute(
            "SELECT " + _ATTACHMENT_COLUMNS + " FROM _nebula_attachments "
            "WHERE annotation_id = ? ORDER BY attachment_id",
            (annotation_id,),
        ).fetchall()
        return [_row_to_attachment(r) for r in rows]

    def attachments_on(
        self,
        table: str,
        rowid: Optional[int] = None,
        column: Optional[str] = None,
        as_of: Optional[int] = None,
    ) -> List[Attachment]:
        """Attachment edges touching a table / row / cell target.

        Row queries also return column-level and table-level attachments,
        because those apply to every row (passive-engine semantics).
        """
        canonical = self.validate_table(table)
        canonical_column = (
            self.validate_column(canonical, column) if column is not None else None
        )
        if as_of is not None:
            return [
                _row_to_attachment(r)
                for r in timetravel.attachments_on_rows(
                    self.connection,
                    canonical,
                    as_of,
                    rowid=rowid,
                    column=canonical_column,
                )
            ]
        clauses = ["target_table = ?"]
        params: List[object] = [canonical]
        if rowid is not None:
            clauses.append(
                "(target_rowid IS NULL OR (target_rowid <= ? "
                "AND ? <= COALESCE(target_rowid_hi, target_rowid)))"
            )
            params.extend([rowid, rowid])
        if canonical_column is not None:
            clauses.append("(target_column = ? OR target_column IS NULL)")
            params.append(canonical_column)
        rows = self.connection.execute(
            "SELECT " + _ATTACHMENT_COLUMNS + " FROM _nebula_attachments "
            f"WHERE {' AND '.join(clauses)} ORDER BY attachment_id",
            params,
        ).fetchall()
        return [_row_to_attachment(r) for r in rows]

    def true_attachment_pairs(
        self, as_of: Optional[int] = None
    ) -> List[Tuple[int, TupleRef]]:
        """All (annotation_id, TupleRef) pairs of true row/cell attachments.

        Range attachments (the compact representation) are expanded
        against the rows currently present in the target table (user
        data tables are not versioned — only the annotation layer is).
        """
        if as_of is not None:
            rows = timetravel.true_pair_rows(self.connection, as_of)
        else:
            rows = self.connection.execute(
                "SELECT annotation_id, target_table, target_rowid, target_rowid_hi "
                "FROM _nebula_attachments "
                "WHERE kind = 'true' AND target_rowid IS NOT NULL ORDER BY attachment_id"
            ).fetchall()
        pairs: List[Tuple[int, TupleRef]] = []
        for annotation_id, table, rowid, rowid_hi in rows:
            if rowid_hi is None:
                pairs.append((int(annotation_id), TupleRef(str(table), int(rowid))))
                continue
            expanded = self.connection.execute(
                f"SELECT rowid FROM {quote_identifier(str(table))} "
                "WHERE rowid BETWEEN ? AND ? ORDER BY rowid",
                (int(rowid), int(rowid_hi)),
            ).fetchall()
            pairs.extend(
                (int(annotation_id), TupleRef(str(table), int(r[0])))
                for r in expanded
            )
        return pairs

    def count_attachments(
        self,
        kind: Optional[AttachmentKind] = None,
        as_of: Optional[int] = None,
    ) -> int:
        if as_of is not None:
            return timetravel.count_attachments(
                self.connection, as_of, kind=None if kind is None else kind.value
            )
        if kind is None:
            query, params = "SELECT COUNT(*) FROM _nebula_attachments", ()
        else:
            query, params = (
                "SELECT COUNT(*) FROM _nebula_attachments WHERE kind = ?",
                (kind.value,),
            )
        return int(self.connection.execute(query, params).fetchone()[0])


def _row_to_attachment(row: Sequence) -> Attachment:
    return Attachment(
        attachment_id=int(row[0]),
        annotation_id=int(row[1]),
        table=str(row[2]),
        rowid=None if row[3] is None else int(row[3]),
        rowid_hi=None if row[4] is None else int(row[4]),
        column=None if row[5] is None else str(row[5]),
        confidence=float(row[6]),
        kind=AttachmentKind(row[7]),
    )
