"""The passive annotation-manager facade.

``AnnotationManager`` is the public face of the substrate engine: adding an
annotation with its manual attachments (the annotation's *focal*), querying
the annotations of a tuple, and enumerating co-annotation relationships —
the raw material from which Nebula builds the ACG.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..errors import UnknownTupleError
from ..resilience.retry import RetryPolicy
from ..storage.compat import Connection
from ..types import CellRef, TupleRef
from ..utils.sql import quote_identifier
from .store import Annotation, AnnotationStore, Attachment, AttachmentKind


class AnnotationManager:
    """High-level API of the passive annotation engine."""

    def __init__(
        self,
        connection: Connection,
        retry: Optional[RetryPolicy] = None,
    ) -> None:
        self.connection = connection
        self.store = AnnotationStore(connection, retry=retry)

    # ------------------------------------------------------------------
    # Adding and attaching
    # ------------------------------------------------------------------

    def add_annotation(
        self,
        content: str,
        attach_to: Sequence[CellRef] = (),
        author: Optional[str] = None,
        verify_targets: bool = True,
    ) -> Annotation:
        """Insert an annotation and manually attach it to ``attach_to``.

        Manual attachments are *true* edges with confidence 1.0.  With
        ``verify_targets`` each row-level target is checked to exist.

        The row and its focal edges land under one ``ingest`` commit in
        the append-only log (joining the pipeline's commit when one is
        already open).
        """
        with self.store.versioning.scope("ingest", author=author):
            annotation = self.store.insert_annotation(content, author=author)
            for target in attach_to:
                if verify_targets and target.rowid is not None:
                    self._require_tuple(target.tuple_ref)
                self.store.attach(
                    annotation.annotation_id, target, kind=AttachmentKind.TRUE
                )
        return annotation

    def bulk_add_annotations(
        self,
        items: Sequence[Tuple[str, Sequence[CellRef], Optional[str]]],
        verify_targets: bool = True,
    ) -> List[Annotation]:
        """Insert many ``(content, attach_to, author)`` annotations at once.

        Stage-0 bulk path of the batched ingestion API: one ``executemany``
        for the annotation rows and one for all the true attachment edges,
        instead of 1 + sum(len(attach_to)) round trips.  Target validation
        (and existence checks, with ``verify_targets``) runs for the whole
        batch before anything is written.
        """
        for _content, attach_to, _author in items:
            for target in attach_to:
                self.store.validate_table(target.table)
                if verify_targets and target.rowid is not None:
                    self._require_tuple(target.tuple_ref)
        with self.store.versioning.scope("batch"):
            annotations = self.store.bulk_insert_annotations(
                [(content, author) for content, _attach_to, author in items]
            )
            edges: List[Tuple[int, CellRef]] = []
            for annotation, (_content, attach_to, _author) in zip(annotations, items):
                edges.extend(
                    (annotation.annotation_id, target) for target in attach_to
                )
            self.store.bulk_attach_true(edges)
        return annotations

    def attach_true(self, annotation_id: int, target: CellRef) -> Attachment:
        """Manually attach an existing annotation (true edge)."""
        return self.store.attach(annotation_id, target, kind=AttachmentKind.TRUE)

    def attach_predicted(
        self, annotation_id: int, target: CellRef, confidence: float
    ) -> Attachment:
        """Record a Nebula-predicted attachment (dotted edge, conf < 1)."""
        return self.store.attach(
            annotation_id, target, confidence=confidence, kind=AttachmentKind.PREDICTED
        )

    def attach_range(
        self,
        annotation_id: int,
        table: str,
        rowid_low: int,
        rowid_high: int,
        column: Optional[str] = None,
    ) -> Attachment:
        """Attach to a contiguous rowid range with one compact edge."""
        return self.store.attach_range(
            annotation_id, table, rowid_low, rowid_high, column=column
        )

    def _require_tuple(self, ref: TupleRef) -> None:
        table = self.store.validate_table(ref.table)
        row = self.connection.execute(
            f"SELECT 1 FROM {quote_identifier(table)} WHERE rowid = ?",
            (ref.rowid,),
        ).fetchone()
        if row is None:
            raise UnknownTupleError(ref.table, ref.rowid)

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------

    def annotation(
        self, annotation_id: int, as_of: Optional[int] = None
    ) -> Annotation:
        return self.store.get_annotation(annotation_id, as_of=as_of)

    def annotations_of_tuple(
        self,
        ref: TupleRef,
        include_predicted: bool = False,
        as_of: Optional[int] = None,
    ) -> List[Annotation]:
        """All annotations attached to a tuple (row, cell, column, table).

        ``as_of`` pins the read to a commit id: the answer is computed
        from the append-only history instead of the materialized head.
        """
        attachments = self.store.attachments_on(
            ref.table, rowid=ref.rowid, as_of=as_of
        )
        wanted = []
        seen: Set[int] = set()
        for attachment in attachments:
            if attachment.kind is AttachmentKind.PREDICTED and not include_predicted:
                continue
            if attachment.annotation_id in seen:
                continue
            seen.add(attachment.annotation_id)
            wanted.append(self.store.get_annotation(attachment.annotation_id, as_of=as_of))
        return wanted

    def focal_of(
        self, annotation_id: int, as_of: Optional[int] = None
    ) -> Tuple[TupleRef, ...]:
        """The annotation's focal: tuples it is *manually* attached to.

        Paper Definition 3.5 — only true row/cell attachments count.
        """
        refs: List[TupleRef] = []
        seen: Set[TupleRef] = set()
        for attachment in self.store.attachments_of(annotation_id, as_of=as_of):
            if attachment.kind is not AttachmentKind.TRUE:
                continue
            ref = attachment.tuple_ref
            if ref is not None and ref not in seen:
                seen.add(ref)
                refs.append(ref)
        return tuple(refs)

    def annotated_tuples(self, as_of: Optional[int] = None) -> List[TupleRef]:
        """Distinct tuples having at least one true attachment."""
        seen: Set[TupleRef] = set()
        ordered: List[TupleRef] = []
        for _, ref in self.store.true_attachment_pairs(as_of=as_of):
            if ref not in seen:
                seen.add(ref)
                ordered.append(ref)
        return ordered

    def co_annotation_index(
        self, as_of: Optional[int] = None
    ) -> Dict[TupleRef, Set[int]]:
        """Map each annotated tuple to the set of its annotation ids.

        This is the input from which the ACG derives its edges and weights:
        two tuples are connected iff their annotation sets intersect.
        """
        index: Dict[TupleRef, Set[int]] = {}
        for annotation_id, ref in self.store.true_attachment_pairs(as_of=as_of):
            index.setdefault(ref, set()).add(annotation_id)
        return index

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------

    def promote_attachment(self, attachment_id: int) -> None:
        """Verified prediction -> true attachment (confidence 1.0)."""
        self.store.promote(attachment_id)

    def discard_attachment(self, attachment_id: int) -> bool:
        """Drop a rejected predicted attachment."""
        return self.store.detach(attachment_id)

    def pending_predicted(self, annotation_id: Optional[int] = None) -> List[Attachment]:
        """All predicted attachments, optionally for one annotation."""
        if annotation_id is not None:
            return [
                a
                for a in self.store.attachments_of(annotation_id)
                if a.kind is AttachmentKind.PREDICTED
            ]
        rows = self.connection.execute(
            "SELECT attachment_id FROM _nebula_attachments WHERE kind = 'predicted'"
        ).fetchall()
        out: List[Attachment] = []
        for (attachment_id,) in rows:
            for attachment in self.store.attachments_of(
                self._annotation_of_attachment(attachment_id)
            ):
                if attachment.attachment_id == attachment_id:
                    out.append(attachment)
        return out

    def _annotation_of_attachment(self, attachment_id: int) -> int:
        row = self.connection.execute(
            "SELECT annotation_id FROM _nebula_attachments WHERE attachment_id = ?",
            (attachment_id,),
        ).fetchone()
        return int(row[0])
