"""Live data updates with annotation-aware side effects.

The passive engine's promise is that curation machinery keeps working as
the data changes.  :class:`DataEditor` is the write path that upholds it:
inserting a tuple through the editor

1. writes the row,
2. incrementally maintains the keyword-search engine's inverted value
   index (so the new tuple is immediately discoverable by Nebula), and
3. fires the predicate-based annotation rules on the new tuple.

Deleting a tuple detaches its row-level annotations (the edges would
otherwise dangle) and is refused while predicted attachments are pending
on it (the expert should resolve them first).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import StorageError
from ..search.index import InvertedValueIndex
from ..storage.compat import Connection
from ..utils.sql import quote_identifier
from ..types import TupleRef
from .engine import AnnotationManager
from .rules import AnnotationRule, RuleEngine
from .store import AttachmentKind


@dataclass
class InsertResult:
    """Outcome of one editor insert."""

    ref: TupleRef
    fired_rules: List[AnnotationRule] = field(default_factory=list)
    indexed_columns: List[str] = field(default_factory=list)


class DataEditor:
    """Annotation-aware insert/delete over the user tables."""

    def __init__(
        self,
        manager: AnnotationManager,
        index: Optional[InvertedValueIndex] = None,
        rules: Optional[RuleEngine] = None,
    ) -> None:
        self.manager = manager
        self.connection: Connection = manager.connection
        self.index = index
        self.rules = rules if rules is not None else RuleEngine(manager)

    # ------------------------------------------------------------------

    def insert(self, table: str, values: Dict[str, object]) -> InsertResult:
        """Insert one row, maintain the index, and fire rules."""
        canonical = self.manager.store.validate_table(table)
        columns = [
            self.manager.store.validate_column(canonical, name) for name in values
        ]
        placeholders = ", ".join("?" for _ in columns)
        column_list = ", ".join(quote_identifier(c) for c in columns)
        cursor = self.connection.execute(
            f"INSERT INTO {quote_identifier(canonical)} ({column_list}) "
            f"VALUES ({placeholders})",
            list(values.values()),
        )
        ref = TupleRef(canonical, int(cursor.lastrowid))
        result = InsertResult(ref=ref)

        if self.index is not None:
            indexed = {
                (t, c) for t, c in self.index.indexed_columns
            }
            for column, value in zip(columns, values.values()):
                if (canonical.casefold(), column.casefold()) in indexed and value is not None:
                    self.index.add_row(canonical, column, ref.rowid, str(value))
                    result.indexed_columns.append(column)

        result.fired_rules = self.rules.process_new_tuple(ref)
        return result

    def delete(self, ref: TupleRef, force: bool = False) -> int:
        """Delete one row and detach its row-level annotations.

        Refuses (``StorageError``) when predicted attachments are pending
        on the tuple, unless ``force`` — an expert decision should not be
        silently destroyed by a data edit.  Returns the number of
        attachments detached.
        """
        canonical = self.manager.store.validate_table(ref.table)
        attachments = [
            a
            for a in self.manager.store.attachments_on(canonical, rowid=ref.rowid)
            if a.rowid == ref.rowid
        ]
        pending = [a for a in attachments if a.kind is AttachmentKind.PREDICTED]
        if pending and not force:
            raise StorageError(
                f"{ref} has {len(pending)} pending predicted attachment(s); "
                "resolve them or pass force=True"
            )
        detached = 0
        for attachment in attachments:
            if self.manager.store.detach(attachment.attachment_id):
                detached += 1
        self.connection.execute(
            f"DELETE FROM {quote_identifier(canonical)} WHERE rowid = ?",
            (ref.rowid,),
        )
        return detached
