"""Annotation propagation onto query answers.

The passive engine's signature feature (paper §1, §2): when a user runs a
``SELECT``, each answer row arrives with the annotations that apply to it —
row-level and cell-level annotations of that row, plus column-level and
table-level annotations of the projected columns.

:func:`propagate` implements that operator over an arbitrary single-table
selection: it executes the query, then joins the answer with the attachment
side table and groups the applicable annotations per row.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..storage.compat import Connection
from ..types import TupleRef
from ..utils.sql import quote_identifier
from .store import AnnotationStore, Attachment, AttachmentKind


@dataclass(frozen=True)
class AnnotatedRow:
    """One answer row together with its propagated annotations."""

    ref: TupleRef
    values: Tuple
    #: (annotation content, attachment) pairs that apply to this row.
    annotations: Tuple[Tuple[str, Attachment], ...]


def propagate(
    connection: Connection,
    table: str,
    columns: Sequence[str] = ("*",),
    where: Optional[str] = None,
    parameters: Sequence = (),
    include_predicted: bool = False,
) -> List[AnnotatedRow]:
    """Run a selection and propagate applicable annotations to each row.

    Parameters mirror a simple single-table ``SELECT``: projected
    ``columns`` (default all), an optional ``where`` clause with bound
    ``parameters``.  Predicted (dotted) attachments are excluded unless
    ``include_predicted`` — the passive engine only ever shows true edges,
    while Nebula's UI also surfaces pending predictions.

    The join is batched: one pass collects the answer rowids, a second pass
    fetches every applicable attachment, then rows and annotations are
    merged in memory — the same structure as the side-table join of the
    original engine.
    """
    store = AnnotationStore(connection)
    canonical = store.validate_table(table)
    projected = list(columns)
    select_list = ", ".join(quote_identifier(c) for c in projected)
    sql = f"SELECT rowid, {select_list} FROM {quote_identifier(canonical)}"
    if where:
        # The propagate() API accepts a raw WHERE clause with bound
        # parameters, mirroring a plain SELECT.
        sql += f" WHERE {where}"
    answer = connection.execute(  # nebula-lint: ignore[NBL001]
        sql, parameters
    ).fetchall()
    if not answer:
        return []

    rowids = [int(r[0]) for r in answer]
    attachments = _collect_attachments(connection, canonical, rowids, include_predicted)
    contents = _annotation_contents(connection, attachments)

    projected_columns = _resolve_projection(connection, canonical, projected)
    rows: List[AnnotatedRow] = []
    for raw in answer:
        rowid = int(raw[0])
        applicable = [
            (contents[a.annotation_id], a)
            for a in attachments
            if _applies(a, rowid, projected_columns)
        ]
        rows.append(
            AnnotatedRow(
                ref=TupleRef(canonical, rowid),
                values=tuple(raw[1:]),
                annotations=tuple(applicable),
            )
        )
    return rows


def _collect_attachments(
    connection: Connection,
    table: str,
    rowids: Sequence[int],
    include_predicted: bool,
) -> List[Attachment]:
    placeholders = ", ".join("?" for _ in rowids)
    kinds = "('true', 'predicted')" if include_predicted else "('true')"
    rows = connection.execute(
        "SELECT attachment_id, annotation_id, target_table, target_rowid, "
        "target_rowid_hi, target_column, confidence, kind "
        "FROM _nebula_attachments "
        f"WHERE target_table = ? AND kind IN {kinds} "
        f"AND (target_rowid IS NULL OR target_rowid IN ({placeholders}) "
        "OR target_rowid_hi IS NOT NULL)",
        [table, *rowids],
    ).fetchall()
    collected = [
        Attachment(
            attachment_id=int(r[0]),
            annotation_id=int(r[1]),
            table=str(r[2]),
            rowid=None if r[3] is None else int(r[3]),
            rowid_hi=None if r[4] is None else int(r[4]),
            column=None if r[5] is None else str(r[5]),
            confidence=float(r[6]),
            kind=AttachmentKind(r[7]),
        )
        for r in rows
    ]
    wanted = set(rowids)
    return [
        a
        for a in collected
        if a.rowid is None or any(a.covers(r) for r in wanted)
    ]


def _annotation_contents(
    connection: Connection, attachments: Sequence[Attachment]
) -> Dict[int, str]:
    ids = sorted({a.annotation_id for a in attachments})
    if not ids:
        return {}
    placeholders = ", ".join("?" for _ in ids)
    rows = connection.execute(
        f"SELECT annotation_id, content FROM _nebula_annotations "
        f"WHERE annotation_id IN ({placeholders})",
        ids,
    ).fetchall()
    return {int(r[0]): str(r[1]) for r in rows}


@dataclass(frozen=True)
class AnnotatedJoinRow:
    """One joined answer row with per-side propagated annotations."""

    refs: Tuple[TupleRef, ...]
    values: Tuple
    #: (annotation content, attachment) pairs from every joined base row.
    annotations: Tuple[Tuple[str, Attachment], ...]


def propagate_join(
    connection: Connection,
    left_table: str,
    right_table: str,
    on: str,
    where: Optional[str] = None,
    parameters: Sequence = (),
    include_predicted: bool = False,
) -> List[AnnotatedJoinRow]:
    """Propagate annotations through a two-table FK join.

    The passive engine's algebra carries annotations *through* operators:
    a joined answer row inherits the annotations of both base rows it was
    produced from (plus their column/table-level annotations).  ``on`` is
    the join condition with the aliases ``l`` and ``r`` (e.g.
    ``"l.GID = r.GID"``).
    """
    store = AnnotationStore(connection)
    left = store.validate_table(left_table)
    right = store.validate_table(right_table)
    sql = (
        f"SELECT l.rowid, r.rowid, l.*, r.* "
        f"FROM {quote_identifier(left)} l "
        f"JOIN {quote_identifier(right)} r ON {on}"
    )
    if where:
        # ``on`` and ``where`` are raw join/filter clauses by design.
        sql += f" WHERE {where}"
    answer = connection.execute(  # nebula-lint: ignore[NBL001]
        sql, parameters
    ).fetchall()
    if not answer:
        return []

    left_rowids = sorted({int(r[0]) for r in answer})
    right_rowids = sorted({int(r[1]) for r in answer})
    left_attachments = _collect_attachments(
        connection, left, left_rowids, include_predicted
    )
    right_attachments = _collect_attachments(
        connection, right, right_rowids, include_predicted
    )
    contents = _annotation_contents(
        connection, [*left_attachments, *right_attachments]
    )

    rows: List[AnnotatedJoinRow] = []
    for raw in answer:
        left_rowid, right_rowid = int(raw[0]), int(raw[1])
        applicable = [
            (contents[a.annotation_id], a)
            for a in left_attachments
            if _applies(a, left_rowid, None)
        ] + [
            (contents[a.annotation_id], a)
            for a in right_attachments
            if _applies(a, right_rowid, None)
        ]
        rows.append(
            AnnotatedJoinRow(
                refs=(TupleRef(left, left_rowid), TupleRef(right, right_rowid)),
                values=tuple(raw[2:]),
                annotations=tuple(applicable),
            )
        )
    return rows


def _resolve_projection(
    connection: Connection, table: str, projected: Sequence[str]
) -> Optional[frozenset]:
    """Casefolded projected column names, or None when projecting ``*``."""
    if any(c.strip() == "*" for c in projected):
        return None
    return frozenset(c.strip().casefold() for c in projected)


def _applies(attachment: Attachment, rowid: int, projected: Optional[frozenset]) -> bool:
    if not attachment.covers(rowid):
        return False
    if attachment.column is not None and projected is not None:
        return attachment.column.casefold() in projected
    return True
