"""Extended-SQL command layer.

The passive engine exposes curation functionality through SQL-like
statements; Nebula adds one more (paper §7):

``ADD ANNOTATION '<text>' ON <table> [COLUMN <col>] WHERE <predicate>``
    the predicate-based attachment of [18, 25]: the annotation is attached
    to every current row satisfying the predicate;

``ADD ANNOTATION '<text>' ON <table> [COLUMN <col>] ROWS (<id>, ...)``
    explicit attachment to an enumerated row set;

``VERIFY ATTACHMENT <vid>`` / ``REJECT ATTACHMENT <vid>``
    resolve a pending verification task (the paper's new statement; the
    paper's spelling ``ATTACHEMENT`` is accepted too).

``LIST PENDING``
    report pending verification tasks.

The processor is deliberately a small regex-dispatch parser: the statements
form a fixed command language, not general SQL (data queries go through the
DBMS directly).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import List, Optional, Protocol, Sequence, Tuple

from ..errors import CommandError
from ..utils.sql import quote_identifier
from ..types import CellRef
from .engine import AnnotationManager

_ADD_RE = re.compile(
    r"""
    \s*ADD\s+ANNOTATION\s+
    '(?P<text>(?:[^']|'')*)'\s+
    ON\s+(?P<table>\w+)
    (?:\s+COLUMN\s+(?P<column>\w+))?
    \s+(?:
        WHERE\s+(?P<where>.+?)
        |
        ROWS\s*\(\s*(?P<rows>[\d\s,]+)\)
    )
    \s*;?\s*$
    """,
    re.IGNORECASE | re.VERBOSE | re.DOTALL,
)

_VERIFY_RE = re.compile(
    r"\s*(?P<action>VERIFY|REJECT)\s+ATTACHE?MENT\s+(?P<vid>\d+)\s*;?\s*$",
    re.IGNORECASE,
)

_LIST_RE = re.compile(r"\s*LIST\s+PENDING\s*;?\s*$", re.IGNORECASE)


class VerificationResolver(Protocol):
    """The Stage-3 hooks the command layer dispatches VERIFY/REJECT to."""

    def verify(self, task_id: int) -> object: ...

    def reject(self, task_id: int) -> object: ...

    def pending(self) -> Sequence[object]: ...


@dataclass
class CommandResult:
    """Outcome of one processed statement."""

    command: str
    #: Human-readable outcome line.
    message: str
    #: Ids touched by the statement (annotation id or task id).
    ids: Tuple[int, ...] = ()
    #: Rows returned by reporting commands such as LIST PENDING.
    rows: Tuple = field(default_factory=tuple)


class CommandProcessor:
    """Parse and execute extended-SQL curation statements."""

    def __init__(
        self,
        manager: AnnotationManager,
        resolver: Optional[VerificationResolver] = None,
        author: Optional[str] = None,
    ) -> None:
        self.manager = manager
        self.resolver = resolver
        self.author = author

    def execute(self, statement: str) -> CommandResult:
        """Execute one statement, returning a :class:`CommandResult`."""
        if not statement or not statement.strip():
            raise CommandError("empty statement")
        match = _ADD_RE.match(statement)
        if match:
            return self._add_annotation(match)
        match = _VERIFY_RE.match(statement)
        if match:
            return self._resolve(match)
        if _LIST_RE.match(statement):
            return self._list_pending()
        raise CommandError(f"unrecognized statement: {statement.strip()[:80]!r}")

    # ------------------------------------------------------------------

    def _add_annotation(self, match: re.Match) -> CommandResult:
        text = match.group("text").replace("''", "'")
        table = match.group("table")
        column = match.group("column")
        targets = self._resolve_targets(
            table, column, match.group("where"), match.group("rows")
        )
        annotation = self.manager.add_annotation(text, attach_to=targets, author=self.author)
        return CommandResult(
            command="ADD ANNOTATION",
            message=(
                f"annotation {annotation.annotation_id} attached to "
                f"{len(targets)} target(s) on {table}"
            ),
            ids=(annotation.annotation_id,),
        )

    def _resolve_targets(
        self,
        table: str,
        column: Optional[str],
        where: Optional[str],
        rows: Optional[str],
    ) -> List[CellRef]:
        canonical = self.manager.store.validate_table(table)
        if rows is not None:
            rowids = [int(part) for part in rows.replace(",", " ").split()]
        else:
            if _looks_unsafe(where or ""):
                raise CommandError("predicate contains a disallowed token")
            try:
                # The command language accepts a raw predicate by design;
                # it is token-screened by _looks_unsafe above.
                fetched = self.manager.connection.execute(
                    f"SELECT rowid FROM {quote_identifier(canonical)} "
                    f"WHERE {where}"  # nebula-lint: ignore[NBL001]
                ).fetchall()
            except Exception as exc:  # sqlite3 errors carry the detail
                raise CommandError(f"invalid predicate: {exc}") from exc
            rowids = [int(r[0]) for r in fetched]
        return [CellRef(canonical, rowid, column) for rowid in rowids]

    def _resolve(self, match: re.Match) -> CommandResult:
        if self.resolver is None:
            raise CommandError("no verification resolver registered")
        task_id = int(match.group("vid"))
        action = match.group("action").upper()
        if action == "VERIFY":
            self.resolver.verify(task_id)
            message = f"attachment {task_id} verified and promoted"
        else:
            self.resolver.reject(task_id)
            message = f"attachment {task_id} rejected and discarded"
        return CommandResult(command=action + " ATTACHMENT", message=message, ids=(task_id,))

    def _list_pending(self) -> CommandResult:
        if self.resolver is None:
            raise CommandError("no verification resolver registered")
        pending = tuple(self.resolver.pending())
        return CommandResult(
            command="LIST PENDING",
            message=f"{len(pending)} pending verification task(s)",
            rows=pending,
        )


_UNSAFE_RE = re.compile(r";|--|\b(?:drop|delete|insert|update|attach|pragma)\b", re.IGNORECASE)


def _looks_unsafe(predicate: str) -> bool:
    """Reject predicates smuggling statements; curator input is trusted-ish
    but the command layer still refuses obvious injection shapes."""
    return bool(_UNSAFE_RE.search(predicate))
