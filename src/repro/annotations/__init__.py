"""The passive annotation-management substrate.

Nebula is "implemented on top of an existing annotation management system"
(Eltabakh et al., EDBT 2009) which provides end-to-end *passive*
functionality: adding annotations, transparently storing and indexing them,
and propagating them with query answers.  That system is not open source,
so this package rebuilds it from its published description:

* :mod:`repro.annotations.store` — SQLite-backed storage of annotations and
  their attachments at cell / row / column / set granularity;
* :mod:`repro.annotations.engine` — the ``AnnotationManager`` facade;
* :mod:`repro.annotations.propagation` — annotation propagation onto
  ``SELECT`` answers;
* :mod:`repro.annotations.commands` — the extended-SQL command layer,
  including the ``VERIFY|REJECT ATTACHMENT`` statement Nebula adds.
"""

from .store import AnnotationStore, Annotation, Attachment, AttachmentKind
from .engine import AnnotationManager
from .propagation import AnnotatedJoinRow, AnnotatedRow, propagate, propagate_join
from .commands import CommandProcessor, CommandResult
from .rules import AnnotationRule, RuleEngine
from .editor import DataEditor, InsertResult

__all__ = [
    "AnnotationStore",
    "Annotation",
    "Attachment",
    "AttachmentKind",
    "AnnotationManager",
    "AnnotatedRow",
    "AnnotatedJoinRow",
    "propagate",
    "propagate_join",
    "DataEditor",
    "InsertResult",
    "CommandProcessor",
    "CommandResult",
    "AnnotationRule",
    "RuleEngine",
]
