"""Predicate-based annotation rules (the mechanism of [18, 25]).

The paper's Related Work describes the complementary *structured*
automation the substrate engine offers: a curator defines an annotation
together with a SQL predicate over a table, and "newly added data tuples
satisfying these predicates will have the corresponding annotation
automatically attached to them".  (Nebula exists because this mechanism
cannot look *inside* annotation text — but the mechanism itself is part
of the substrate and is implemented here.)

A :class:`AnnotationRule` stores the annotation, target table, optional
column, and predicate.  :class:`RuleEngine` persists rules in a system
table, applies them retroactively on creation, and re-applies them to
newly inserted tuples via :meth:`RuleEngine.process_new_tuple` (or in
bulk via :meth:`RuleEngine.sweep`).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..errors import CommandError, StorageError
from ..storage.compat import Connection, Error
from ..types import CellRef, TupleRef
from ..utils.sql import quote_identifier
from .engine import AnnotationManager
from .store import AttachmentKind

_RULES_DDL = """
CREATE TABLE IF NOT EXISTS _nebula_annotation_rules (
    rule_id       INTEGER PRIMARY KEY,
    annotation_id INTEGER NOT NULL REFERENCES _nebula_annotations(annotation_id),
    target_table  TEXT NOT NULL,
    target_column TEXT,
    predicate     TEXT NOT NULL,
    active        INTEGER NOT NULL DEFAULT 1
);
"""

_UNSAFE_RE = re.compile(
    r";|--|\b(?:drop|delete|insert|update|attach|pragma)\b", re.IGNORECASE
)


@dataclass(frozen=True)
class AnnotationRule:
    """One persisted predicate rule."""

    rule_id: int
    annotation_id: int
    table: str
    column: Optional[str]
    predicate: str
    active: bool = True


class RuleEngine:
    """Creates, lists, and applies predicate-based annotation rules."""

    def __init__(self, manager: AnnotationManager) -> None:
        self.manager = manager
        self.connection: Connection = manager.connection
        self.connection.executescript(_RULES_DDL)

    # ------------------------------------------------------------------
    # Rule management
    # ------------------------------------------------------------------

    def create_rule(
        self,
        annotation_id: int,
        table: str,
        predicate: str,
        column: Optional[str] = None,
        apply_retroactively: bool = True,
    ) -> Tuple[AnnotationRule, int]:
        """Persist a rule; returns (rule, retroactive attachment count).

        The predicate is validated by running it; statement-smuggling
        shapes are rejected up front.
        """
        self.manager.annotation(annotation_id)  # must exist
        canonical = self.manager.store.validate_table(table)
        if column is not None:
            column = self.manager.store.validate_column(canonical, column)
        if _UNSAFE_RE.search(predicate):
            raise CommandError("rule predicate contains a disallowed token")
        try:
            matching = self._matching_rowids(canonical, predicate)
        except Error as exc:
            raise CommandError(f"invalid rule predicate: {exc}") from exc
        cursor = self.connection.execute(
            "INSERT INTO _nebula_annotation_rules "
            "(annotation_id, target_table, target_column, predicate) "
            "VALUES (?, ?, ?, ?)",
            (annotation_id, canonical, column, predicate),
        )
        rule = AnnotationRule(
            rule_id=int(cursor.lastrowid),
            annotation_id=annotation_id,
            table=canonical,
            column=column,
            predicate=predicate,
        )
        attached = 0
        if apply_retroactively:
            attached = self._attach_all(rule, matching)
        return rule, attached

    def deactivate(self, rule_id: int) -> None:
        """Stop a rule from firing on future tuples (past edges remain)."""
        cursor = self.connection.execute(
            "UPDATE _nebula_annotation_rules SET active = 0 WHERE rule_id = ?",
            (rule_id,),
        )
        if cursor.rowcount == 0:
            raise StorageError(f"unknown rule id: {rule_id}")

    def rules(self, table: Optional[str] = None, active_only: bool = True) -> List[AnnotationRule]:
        sql = (
            "SELECT rule_id, annotation_id, target_table, target_column, "
            "predicate, active FROM _nebula_annotation_rules WHERE 1=1"
        )
        params: List[object] = []
        if table is not None:
            sql += " AND target_table = ?"
            params.append(self.manager.store.validate_table(table))
        if active_only:
            sql += " AND active = 1"
        rows = self.connection.execute(sql + " ORDER BY rule_id", params)
        return [
            AnnotationRule(
                rule_id=int(r[0]),
                annotation_id=int(r[1]),
                table=str(r[2]),
                column=None if r[3] is None else str(r[3]),
                predicate=str(r[4]),
                active=bool(r[5]),
            )
            for r in rows
        ]

    # ------------------------------------------------------------------
    # Application
    # ------------------------------------------------------------------

    def process_new_tuple(self, ref: TupleRef) -> List[AnnotationRule]:
        """Apply every active rule of the tuple's table to one new tuple.

        Returns the rules that fired (matched and attached).
        """
        fired: List[AnnotationRule] = []
        for rule in self.rules(table=ref.table):
            if self._matches(rule, ref.rowid):
                self.manager.store.attach(
                    rule.annotation_id,
                    CellRef(rule.table, ref.rowid, rule.column),
                    kind=AttachmentKind.TRUE,
                )
                fired.append(rule)
        return fired

    def sweep(self, table: Optional[str] = None) -> int:
        """Re-apply all active rules to the current data; returns the
        number of attachments created (idempotent on repeats)."""
        created = 0
        for rule in self.rules(table=table):
            before = self.manager.store.count_attachments()
            self._attach_all(rule, self._matching_rowids(rule.table, rule.predicate))
            created += self.manager.store.count_attachments() - before
        return created

    # ------------------------------------------------------------------

    def _matching_rowids(self, table: str, predicate: str) -> List[int]:
        # Rule predicates are raw SQL by design (the ADD RULE command
        # language); they are screened at registration time.
        rows = self.connection.execute(
            f"SELECT rowid FROM {quote_identifier(table)} "
            f"WHERE {predicate}"  # nebula-lint: ignore[NBL001]
        ).fetchall()
        return [int(r[0]) for r in rows]

    def _matches(self, rule: AnnotationRule, rowid: int) -> bool:
        row = self.connection.execute(
            f"SELECT 1 FROM {quote_identifier(rule.table)} "
            f"WHERE rowid = ? AND ({rule.predicate})",  # nebula-lint: ignore[NBL001]
            (rowid,),
        ).fetchone()
        return row is not None

    def _attach_all(self, rule: AnnotationRule, rowids: Sequence[int]) -> int:
        attached = 0
        for rowid in rowids:
            self.manager.store.attach(
                rule.annotation_id,
                CellRef(rule.table, rowid, rule.column),
                kind=AttachmentKind.TRUE,
            )
            attached += 1
        return attached
