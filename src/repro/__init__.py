"""Nebula: proactive annotation management in relational databases.

A from-scratch reproduction of Ibrahim, Du & Eltabakh, *Proactive
Annotation Management in Relational Databases*, SIGMOD 2015.

Quickstart::

    from repro import (
        BioDatabaseSpec, Nebula, NebulaConfig, generate_bio_database,
    )

    db = generate_bio_database(BioDatabaseSpec(genes=120, proteins=70,
                                               publications=600))
    nebula = Nebula(db.connection, db.meta, NebulaConfig(epsilon=0.6),
                    aliases=db.aliases)
    gene = db.genes[0]
    report = nebula.insert_annotation(
        f"From the exp, this gene seems correlated to {db.genes[1].gid}.",
        attach_to=[db.resolve("gene", gene.gid)],
    )
    for task in report.tasks:
        print(task.ref, task.confidence, task.decision)

See DESIGN.md for the architecture and EXPERIMENTS.md for the paper
reproduction results.
"""

from .config import NEBULA_06, NEBULA_08, NebulaConfig
from .errors import (
    CommandError,
    ConfigurationError,
    DeadLetterError,
    DeadlineExceededError,
    MetadataError,
    NebulaError,
    PipelineStageError,
    PoolExhaustedError,
    SearchError,
    ServiceError,
    ServiceOverloadedError,
    ServiceUnavailableError,
    StorageError,
    TransientStorageError,
    VerificationError,
    WorkloadError,
)
from .storage import (
    SQLITE_DIALECT,
    ConnectionPool,
    Dialect,
    SqliteFileBackend,
    SqliteMemoryBackend,
    StorageBackend,
    get_backend,
    register_backend,
    wrap_connection,
)
from .observability import (
    EventLog,
    JsonlExporter,
    MetricsRegistry,
    NoopTracer,
    NOOP_TRACER,
    PhaseQuantiles,
    RingBufferExporter,
    SqlProfiler,
    StreamingQuantiles,
    TelemetryServer,
    Tracer,
    get_metrics,
    parse_exposition,
    render_metrics,
    set_metrics,
    validate_exposition,
)
from .resilience import (
    DeadLetter,
    DeadLetterQueue,
    FaultInjector,
    InjectedFault,
    RetryPolicy,
    Savepoint,
    SimulatedCrash,
)
from .service import (
    AnnotationService,
    ChaosHarness,
    ServiceConfig,
    ServiceStats,
    Submission,
    serve,
)
from .perf import AnalysisCache, AnnotationRequest, ParallelSqlExecutor
from .types import CellRef, ScoredTuple, TupleRef
from .annotations import (
    AnnotationManager,
    AnnotationStore,
    AnnotationRule,
    CommandProcessor,
    DataEditor,
    RuleEngine,
    propagate,
    propagate_join,
)
from .meta import (
    ConceptLearner,
    ConceptRef,
    Lexicon,
    NebulaMeta,
    Ontology,
    ValuePattern,
    apply_proposals,
    infer_pattern,
)
from .search import (
    InvertedValueIndex,
    KeywordQuery,
    KeywordSearchEngine,
    NaiveSearch,
    SchemaGraph,
    SearchScope,
)
from .core import (
    AnnotatedDatabaseModel,
    SpamGuard,
    TaskExplanation,
    explain_task,
    AnnotationsConnectivityGraph,
    Assessment,
    BoundsChoice,
    BoundsSetting,
    Decision,
    DiscoveryReport,
    HopProfile,
    MiniDatabase,
    Nebula,
    SharedExecutor,
    StabilityTracker,
    VerificationQueue,
    VerificationTask,
    assess,
    build_context_map,
    false_negative_ratio,
    false_positive_ratio,
    generate_queries,
    identify_related_tuples,
    spreading_scope,
)
from .datagen import (
    AnnotationWorkload,
    DatasetStats,
    collect_stats,
    BioDatabase,
    BioDatabaseSpec,
    WorkloadAnnotation,
    WorkloadSpec,
    generate_bio_database,
    generate_workload,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # configuration
    "NebulaConfig",
    "NEBULA_06",
    "NEBULA_08",
    # errors
    "NebulaError",
    "ConfigurationError",
    "StorageError",
    "TransientStorageError",
    "MetadataError",
    "SearchError",
    "WorkloadError",
    "VerificationError",
    "CommandError",
    "PipelineStageError",
    "PoolExhaustedError",
    "DeadLetterError",
    "ServiceError",
    "ServiceOverloadedError",
    "ServiceUnavailableError",
    "DeadlineExceededError",
    # storage layer
    "StorageBackend",
    "ConnectionPool",
    "Dialect",
    "SQLITE_DIALECT",
    "SqliteFileBackend",
    "SqliteMemoryBackend",
    "get_backend",
    "register_backend",
    "wrap_connection",
    # observability layer
    "Tracer",
    "NoopTracer",
    "NOOP_TRACER",
    "RingBufferExporter",
    "JsonlExporter",
    "MetricsRegistry",
    "get_metrics",
    "set_metrics",
    "SqlProfiler",
    "StreamingQuantiles",
    "PhaseQuantiles",
    "EventLog",
    "TelemetryServer",
    "render_metrics",
    "parse_exposition",
    "validate_exposition",
    # resilience layer
    "RetryPolicy",
    "Savepoint",
    "FaultInjector",
    "InjectedFault",
    "SimulatedCrash",
    "DeadLetter",
    "DeadLetterQueue",
    # service layer
    "AnnotationService",
    "ServiceConfig",
    "ServiceStats",
    "Submission",
    "ChaosHarness",
    "serve",
    # performance layer
    "AnalysisCache",
    "AnnotationRequest",
    "ParallelSqlExecutor",
    # shared types
    "TupleRef",
    "CellRef",
    "ScoredTuple",
    # substrate: passive annotation engine
    "AnnotationManager",
    "AnnotationStore",
    "AnnotationRule",
    "RuleEngine",
    "CommandProcessor",
    "DataEditor",
    "propagate",
    "propagate_join",
    # substrate: NebulaMeta
    "NebulaMeta",
    "ConceptRef",
    "ConceptLearner",
    "apply_proposals",
    "Lexicon",
    "Ontology",
    "ValuePattern",
    "infer_pattern",
    # substrate: keyword search
    "KeywordSearchEngine",
    "KeywordQuery",
    "SearchScope",
    "SchemaGraph",
    "InvertedValueIndex",
    "NaiveSearch",
    # core
    "Nebula",
    "DiscoveryReport",
    "AnnotatedDatabaseModel",
    "AnnotationsConnectivityGraph",
    "HopProfile",
    "StabilityTracker",
    "MiniDatabase",
    "SharedExecutor",
    "VerificationQueue",
    "VerificationTask",
    "Decision",
    "SpamGuard",
    "TaskExplanation",
    "explain_task",
    "Assessment",
    "BoundsSetting",
    "BoundsChoice",
    "assess",
    "build_context_map",
    "generate_queries",
    "identify_related_tuples",
    "spreading_scope",
    "false_negative_ratio",
    "false_positive_ratio",
    # data generation
    "BioDatabase",
    "BioDatabaseSpec",
    "generate_bio_database",
    "AnnotationWorkload",
    "WorkloadAnnotation",
    "WorkloadSpec",
    "generate_workload",
    "DatasetStats",
    "collect_stats",
]
