"""Approximate searching with focal-based spreading (paper §6.3).

Once the ACG is stable (Def. 6.1), the embedded references of a new
annotation most likely point at tuples *near* the annotation's focal.  The
Fixed-Scope variant therefore replaces the whole-database search with a
search over a **mini database**: a materialized view holding only the
K-hop ACG neighbors of the focal tuples, each mini table following the
schema of its original table (rowids preserved).

``spreading_scope`` computes the neighbor set, materializes the mini
tables, and returns the :class:`~repro.search.engine.SearchScope` that
makes the regular execution pipeline run against them.

K is either fixed (``NebulaConfig.spreading_hops``) or auto-selected from
the :class:`~repro.core.acg.HopProfile` for a target coverage (Figure 7:
"by setting K = 2, or K = 3, we expect to discover 71%, or 93% of the
candidates").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from ..resilience.retry import RetryPolicy
from ..search.engine import SearchScope
from ..storage.compat import Connection, Cursor
from ..types import TupleRef
from ..utils.sql import quote_identifier
from .acg import AnnotationsConnectivityGraph, HopProfile

_MINI_PREFIX = "_minidb_"


@dataclass
class MiniDatabase:
    """Materialized K-hop neighborhood, one mini table per source table."""

    connection: Connection
    #: original table -> mini table name.
    tables: Dict[str, str] = field(default_factory=dict)
    #: rows copied per original table.
    row_counts: Dict[str, int] = field(default_factory=dict)

    @classmethod
    def materialize(
        cls,
        connection: Connection,
        refs: Iterable[TupleRef],
        retry: Optional[RetryPolicy] = None,
    ) -> "MiniDatabase":
        """Copy the referenced rows into ``_minidb_*`` tables.

        Rowids are preserved (``INSERT`` with explicit rowid), so the
        answers coming out of the mini database are directly the original
        tuple references.  Transient lock errors during materialization
        are retried under ``retry``; each statement is idempotent (DROP
        IF EXISTS + CREATE + INSERT), so a retried statement cannot
        duplicate rows.
        """
        def execute(sql: str, params: Sequence = ()) -> Cursor:
            if retry is None:
                return connection.execute(sql, params)
            return retry.run(lambda: connection.execute(sql, params), sql)

        mini = cls(connection=connection)
        buckets: Dict[str, List[int]] = {}
        for ref in refs:
            buckets.setdefault(ref.table, []).append(ref.rowid)
        for table, rowids in sorted(buckets.items()):
            name = f"{_MINI_PREFIX}{table}"
            execute(f"DROP TABLE IF EXISTS {quote_identifier(name)}")
            columns = [
                row[1]
                for row in connection.execute(
                    f"PRAGMA table_info({quote_identifier(table)})"
                )
            ]
            column_list = ", ".join(quote_identifier(c) for c in columns)
            execute(
                f"CREATE TEMP TABLE {quote_identifier(name)} AS "
                f"SELECT rowid AS rowid_copy, {column_list} "
                f"FROM {quote_identifier(table)} WHERE 0"
            )
            placeholders = ", ".join("?" for _ in rowids)
            execute(
                f"INSERT INTO {quote_identifier(name)} (rowid, rowid_copy, {column_list}) "
                f"SELECT rowid, rowid, {column_list} FROM {quote_identifier(table)} "
                f"WHERE rowid IN ({placeholders})",
                rowids,
            )
            mini.tables[table] = name
            mini.row_counts[table] = len(rowids)
        return mini

    @property
    def total_rows(self) -> int:
        return sum(self.row_counts.values())

    def drop(self) -> None:
        """Drop the materialized mini tables."""
        for name in self.tables.values():
            self.connection.execute(f"DROP TABLE IF EXISTS {quote_identifier(name)}")
        self.tables.clear()
        self.row_counts.clear()

    def __enter__(self) -> "MiniDatabase":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.drop()


def select_radius(
    profile: Optional[HopProfile],
    target_recall: float,
    fallback: int,
) -> int:
    """Pick K from the profile; fall back to the configured radius."""
    if profile is None or profile.total == 0:
        return fallback
    return profile.select_k(target_recall)


def spreading_scope(
    connection: Connection,
    acg: AnnotationsConnectivityGraph,
    focal: Sequence[TupleRef],
    k: int,
    materialize: bool = True,
    retry: Optional[RetryPolicy] = None,
) -> Tuple[SearchScope, Optional[MiniDatabase]]:
    """Build the K-hop search scope around ``focal``.

    Returns the scope and, when ``materialize``, the mini database backing
    it (caller is responsible for dropping it — it supports ``with``).
    The scope always includes the focal tuples themselves, even when they
    are not yet in the ACG (a brand-new annotation's focal may be a
    previously unannotated tuple).
    """
    neighbors = set(acg.k_hop_neighbors(focal, k, include_seeds=True))
    neighbors.update(focal)
    mini: Optional[MiniDatabase] = None
    physical: Dict[str, str] = {}
    if materialize:
        mini = MiniDatabase.materialize(connection, neighbors, retry=retry)
        physical = {table.casefold(): name for table, name in mini.tables.items()}
    scope = SearchScope.from_refs(neighbors, physical=physical)
    return scope, mini
