"""Assessment criteria for predicted attachments (paper Definition 7.2).

Given one annotation's triaged predictions, the ideal attachment set, and
the focal, the four criteria are:

.. math::

    F_N = (N_{ideal} - (N_{verify-T} + N_{accept-T} + N_{focal})) / N_{ideal}
    F_P = N_{accept-F} / (N_{verify-T} + N_{accept} + N_{focal})
    M_F = N_{verify}
    M_H = N_{verify-T} / N_{verify}

``N_verify*`` counts the pending (expert) band; in the experiments the
expert is played by the oracle (a pending prediction is verified-true iff
its edge exists in ``D_ideal``), exactly as the paper's own evaluation
computes these factors automatically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import AbstractSet, Dict, Iterable, List, Sequence, Tuple

from ..types import ScoredTuple, TupleRef


@dataclass(frozen=True)
class Assessment:
    """The four criteria plus the underlying Figure-8 counters."""

    f_n: float
    f_p: float
    m_f: int
    m_h: float
    n_ideal: int
    n_focal: int
    n_reject: int
    n_verify_t: int
    n_verify_f: int
    n_accept_t: int
    n_accept_f: int

    @property
    def n_verify(self) -> int:
        return self.n_verify_t + self.n_verify_f

    @property
    def n_accept(self) -> int:
        return self.n_accept_t + self.n_accept_f


def band_counts(
    candidates: Sequence[ScoredTuple],
    ideal: AbstractSet[TupleRef],
    focal: Sequence[TupleRef],
    beta_lower: float,
    beta_upper: float,
) -> Tuple[int, int, int, int, int]:
    """(n_reject, n_verify_t, n_verify_f, n_accept_t, n_accept_f).

    Focal tuples among the candidates are excluded (they are existing
    attachments, not predictions) — mirroring the triage.
    """
    focal_set = set(focal)
    n_reject = n_verify_t = n_verify_f = n_accept_t = n_accept_f = 0
    for candidate in candidates:
        if candidate.ref in focal_set:
            continue
        correct = candidate.ref in ideal
        if candidate.confidence < beta_lower:
            n_reject += 1
        elif candidate.confidence > beta_upper:
            if correct:
                n_accept_t += 1
            else:
                n_accept_f += 1
        else:
            if correct:
                n_verify_t += 1
            else:
                n_verify_f += 1
    return n_reject, n_verify_t, n_verify_f, n_accept_t, n_accept_f


def assess(
    candidates: Sequence[ScoredTuple],
    ideal: AbstractSet[TupleRef],
    focal: Sequence[TupleRef],
    beta_lower: float,
    beta_upper: float,
) -> Assessment:
    """Compute Definition 7.2 for one annotation's prediction."""
    focal_set = {f for f in focal if f in ideal}
    n_ideal = len(ideal)
    n_focal = len(focal_set)
    n_reject, n_verify_t, n_verify_f, n_accept_t, n_accept_f = band_counts(
        candidates, ideal, focal, beta_lower, beta_upper
    )
    n_verify = n_verify_t + n_verify_f
    n_accept = n_accept_t + n_accept_f
    covered = n_verify_t + n_accept_t + n_focal
    f_n = (n_ideal - covered) / n_ideal if n_ideal else 0.0
    denominator = n_verify_t + n_accept + n_focal
    f_p = n_accept_f / denominator if denominator else 0.0
    m_h = n_verify_t / n_verify if n_verify else 0.0
    return Assessment(
        f_n=max(0.0, f_n),
        f_p=f_p,
        m_f=n_verify,
        m_h=m_h,
        n_ideal=n_ideal,
        n_focal=n_focal,
        n_reject=n_reject,
        n_verify_t=n_verify_t,
        n_verify_f=n_verify_f,
        n_accept_t=n_accept_t,
        n_accept_f=n_accept_f,
    )


def average_assessments(assessments: Sequence[Assessment]) -> Assessment:
    """Average the criteria over a set of annotations (paper Step 3)."""
    if not assessments:
        raise ValueError("cannot average zero assessments")
    n = len(assessments)

    def mean(values: Iterable[float]) -> float:
        return sum(values) / n

    return Assessment(
        f_n=mean(a.f_n for a in assessments),
        f_p=mean(a.f_p for a in assessments),
        m_f=round(mean(a.m_f for a in assessments)),
        m_h=mean(a.m_h for a in assessments),
        n_ideal=round(mean(a.n_ideal for a in assessments)),
        n_focal=round(mean(a.n_focal for a in assessments)),
        n_reject=round(mean(a.n_reject for a in assessments)),
        n_verify_t=round(mean(a.n_verify_t for a in assessments)),
        n_verify_f=round(mean(a.n_verify_f for a in assessments)),
        n_accept_t=round(mean(a.n_accept_t for a in assessments)),
        n_accept_f=round(mean(a.n_accept_f for a in assessments)),
    )
