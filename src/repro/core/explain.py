"""Human-readable explanations of verification tasks.

Definition 7.1 attaches *evidence* to every verification task — "the set
of evidences supporting Nebula's prediction ... to help the DB admins in
the verification process".  The stored evidence strings are the labels of
the keyword queries that produced the candidate tuple
(``q@<position>:<match kind>:<kw>+<kw>``); this module turns them back
into something an expert can act on:

* the query's keywords and the match type that formed it;
* the *context window* of the annotation text around the originating
  word — the sentence fragment the expert actually needs to read;
* the candidate tuple's row values, for side-by-side comparison.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..annotations.engine import AnnotationManager
from ..storage.compat import Connection
from ..utils.sql import quote_identifier
from ..utils.tokenize import tokenize
from .verification import VerificationTask

_LABEL_RE = re.compile(
    r"q@(?P<position>\d+):(?P<kind>[a-z0-9-]+):(?P<keywords>.+)", re.IGNORECASE
)

_KIND_DESCRIPTIONS = {
    "type1": "table + column + value match",
    "type2": "table + value match",
    "type3": "column + value match",
    "backward-type2": "value paired with an earlier table mention",
    "backward-type3": "value paired with an earlier column mention",
}


@dataclass(frozen=True)
class EvidenceLine:
    """One decoded piece of evidence."""

    keywords: Tuple[str, ...]
    match_kind: str
    description: str
    #: Fragment of the annotation text around the originating word.
    context: str


@dataclass(frozen=True)
class TaskExplanation:
    """The full expert-facing view of one verification task."""

    task: VerificationTask
    annotation_excerpt: str
    tuple_values: Dict[str, object]
    evidence: Tuple[EvidenceLine, ...]

    def lines(self) -> List[str]:
        out = [
            f"task {self.task.task_id}: attach annotation "
            f"{self.task.annotation_id} to {self.task.ref} "
            f"(confidence {self.task.confidence:.2f})",
            f"annotation: {self.annotation_excerpt}",
            "tuple: "
            + ", ".join(f"{k}={v!r}" for k, v in self.tuple_values.items()),
        ]
        for line in self.evidence:
            out.append(
                f"  - {' + '.join(line.keywords)} ({line.description})"
            )
            if line.context:
                out.append(f"      ...{line.context}...")
        return out


def _context_window(text: str, position: int, radius: int = 6) -> str:
    """The words around token ``position`` in the annotation text."""
    tokens = tokenize(text)
    if not tokens:
        return ""
    lo = max(0, position - radius)
    hi = min(len(tokens), position + radius + 1)
    window = tokens[lo:hi]
    if not window:
        return ""
    start = window[0].offset
    last = window[-1]
    end = last.offset + len(last.surface)
    return text[start:end]


def decode_evidence(label: str, annotation_text: str) -> Optional[EvidenceLine]:
    """Decode one stored evidence label; None for foreign formats."""
    match = _LABEL_RE.match(label)
    if match is None:
        return None
    position = int(match.group("position"))
    kind = match.group("kind").lower()
    keywords = tuple(match.group("keywords").split("+"))
    return EvidenceLine(
        keywords=keywords,
        match_kind=kind,
        description=_KIND_DESCRIPTIONS.get(kind, kind),
        context=_context_window(annotation_text, position),
    )


def explain_task(
    manager: AnnotationManager,
    task: VerificationTask,
    excerpt_length: int = 160,
) -> TaskExplanation:
    """Build the expert-facing explanation of one verification task."""
    annotation = manager.annotation(task.annotation_id)
    excerpt = annotation.content
    if len(excerpt) > excerpt_length:
        excerpt = excerpt[: excerpt_length - 3] + "..."

    values = _tuple_values(manager.connection, task.ref.table, task.ref.rowid)

    evidence: List[EvidenceLine] = []
    for label in task.evidence:
        decoded = decode_evidence(label, annotation.content)
        if decoded is not None:
            evidence.append(decoded)
        else:
            evidence.append(
                EvidenceLine(
                    keywords=(label,), match_kind="raw",
                    description="raw evidence", context="",
                )
            )
    return TaskExplanation(
        task=task,
        annotation_excerpt=excerpt,
        tuple_values=values,
        evidence=tuple(evidence),
    )


def _tuple_values(
    connection: Connection, table: str, rowid: int
) -> Dict[str, object]:
    columns = [
        row[1]
        for row in connection.execute(f"PRAGMA table_info({quote_identifier(table)})")
    ]
    select_list = ", ".join(quote_identifier(c) for c in columns)
    row = connection.execute(
        f"SELECT {select_list} FROM {quote_identifier(table)} WHERE rowid = ?",
        (rowid,),
    ).fetchone()
    if row is None:
        return {}
    return dict(zip(columns, row))
