"""The Annotations Connectivity Graph (paper §6.2-6.3, Figures 6 & 7).

Nodes are annotated tuples; an edge connects two tuples iff they share at
least one annotation.  An edge's weight is "the ratio between the common
annotations to the total number of annotations attached to both tuples" —
the Jaccard ratio of the two annotation sets — so weights live in (0, 1]
and are recomputed from the live sets (never stale).

The module also hosts the two bookkeeping structures built on the ACG:

* :class:`StabilityTracker` — Definition 6.1: over non-overlapping batches
  of B annotations with M total attachments adding N new edges, the ACG is
  *stable* iff ``N / M < mu``;
* :class:`HopProfile` — the histogram of Figure 7: for every discovered
  attachment, the shortest unweighted hop distance from the tuple to the
  annotation's focal, used to auto-select the spreading radius K.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from ..annotations.engine import AnnotationManager
from ..storage.compat import Connection
from ..types import TupleRef

#: Hop distance reported when a tuple cannot be reached from the focal.
UNREACHABLE = -1


class AnnotationsConnectivityGraph:
    """Incremental co-annotation graph over tuples."""

    def __init__(self) -> None:
        self._annotations_of: Dict[TupleRef, Set[int]] = {}
        self._tuples_of: Dict[int, Set[TupleRef]] = {}
        self._adjacency: Dict[TupleRef, Set[TupleRef]] = {}
        self._edge_count = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def build_from_manager(
        cls,
        manager: AnnotationManager,
        as_of: Optional[int] = None,
    ) -> "AnnotationsConnectivityGraph":
        """Build at once from all true attachments in the store (§8.1:
        "The ACG is built at once and not in an incremental fashion").

        With ``as_of`` the graph is reconstructed from the commit log —
        the exact co-annotation topology that existed at that commit,
        which lets candidate scoring replay a historical graph.
        """
        graph = cls()
        for annotation_id, ref in manager.store.true_attachment_pairs(as_of=as_of):
            graph.add_attachment(annotation_id, ref)
        return graph

    def add_attachment(self, annotation_id: int, ref: TupleRef) -> int:
        """Record one attachment; returns the number of *new* ACG edges."""
        siblings = self._tuples_of.setdefault(annotation_id, set())
        if ref in siblings:
            return 0
        self._annotations_of.setdefault(ref, set()).add(annotation_id)
        new_edges = 0
        for sibling in siblings:
            if self._add_edge(ref, sibling):
                new_edges += 1
        siblings.add(ref)
        return new_edges

    def remove_annotation(self, annotation_id: int) -> int:
        """Remove every attachment of one annotation; returns edges dropped.

        The inverse of the ``add_attachment`` calls made for the
        annotation — used by the pipeline's fault boundary to restore the
        in-memory graph after the persistent Stage 0 writes roll back.
        An edge survives only while the two tuples still share at least
        one *other* annotation (the live-set semantics of :meth:`weight`).
        """
        refs = self._tuples_of.pop(annotation_id, set())
        for ref in refs:
            annotations = self._annotations_of.get(ref)
            if annotations is not None:
                annotations.discard(annotation_id)
        removed = 0
        for ref in refs:
            for neighbor in list(self._adjacency.get(ref, ())):
                if self.weight(ref, neighbor) == 0.0:
                    self._adjacency[ref].discard(neighbor)
                    self._adjacency.get(neighbor, set()).discard(ref)
                    if not self._adjacency.get(neighbor):
                        self._adjacency.pop(neighbor, None)
                    self._edge_count -= 1
                    removed += 1
        for ref in refs:
            if not self._annotations_of.get(ref):
                self._annotations_of.pop(ref, None)
            if not self._adjacency.get(ref):
                self._adjacency.pop(ref, None)
        return removed

    def _add_edge(self, a: TupleRef, b: TupleRef) -> bool:
        if a == b:
            return False
        neighbors = self._adjacency.setdefault(a, set())
        if b in neighbors:
            return False
        neighbors.add(b)
        self._adjacency.setdefault(b, set()).add(a)
        self._edge_count += 1
        return True

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------

    @property
    def node_count(self) -> int:
        return len(self._annotations_of)

    @property
    def edge_count(self) -> int:
        return self._edge_count

    def contains(self, ref: TupleRef) -> bool:
        return ref in self._annotations_of

    def neighbors(self, ref: TupleRef) -> FrozenSet[TupleRef]:
        return frozenset(self._adjacency.get(ref, frozenset()))

    def annotations_of(self, ref: TupleRef) -> FrozenSet[int]:
        return frozenset(self._annotations_of.get(ref, frozenset()))

    def weight(self, a: TupleRef, b: TupleRef) -> float:
        """Edge weight: |common annotations| / |total annotations on both|.

        0.0 when the tuples share no annotation (no edge).
        """
        first = self._annotations_of.get(a)
        second = self._annotations_of.get(b)
        if not first or not second:
            return 0.0
        common = len(first & second)
        if common == 0:
            return 0.0
        return common / len(first | second)

    # ------------------------------------------------------------------
    # Traversals
    # ------------------------------------------------------------------

    def k_hop_neighbors(
        self, seeds: Iterable[TupleRef], k: int, include_seeds: bool = True
    ) -> FrozenSet[TupleRef]:
        """All tuples within ``k`` hops of any seed (BFS, unweighted)."""
        seeds = [s for s in seeds if s in self._annotations_of]
        visited: Dict[TupleRef, int] = {s: 0 for s in seeds}
        queue = deque(seeds)
        while queue:
            current = queue.popleft()
            depth = visited[current]
            if depth >= k:
                continue
            for neighbor in self._adjacency.get(current, ()):
                if neighbor not in visited:
                    visited[neighbor] = depth + 1
                    queue.append(neighbor)
        if include_seeds:
            return frozenset(visited)
        return frozenset(v for v, d in visited.items() if d > 0)

    def best_path_weight(self, source: TupleRef, target: TupleRef, max_hops: int) -> float:
        """Maximum edge-weight *product* over paths of at most ``max_hops``.

        This is the quantity the paper's multi-hop extension of the focal
        adjustment rewards by ("multiplying the weights of the in-between
        edges").  Computed by bounded dynamic programming: ``best[v]`` is
        the best product reaching ``v`` within ``h`` hops.  Returns 0.0
        when no path of that length exists.
        """
        if source == target:
            return 1.0
        if source not in self._annotations_of or target not in self._annotations_of:
            return 0.0
        best: Dict[TupleRef, float] = {source: 1.0}
        for _ in range(max(0, max_hops)):
            frontier: Dict[TupleRef, float] = {}
            for node, product in best.items():
                for neighbor in self._adjacency.get(node, ()):
                    candidate = product * self.weight(node, neighbor)
                    if candidate > best.get(neighbor, 0.0) and candidate > frontier.get(
                        neighbor, 0.0
                    ):
                        frontier[neighbor] = candidate
            if not frontier:
                break
            for node, product in frontier.items():
                if product > best.get(node, 0.0):
                    best[node] = product
        return best.get(target, 0.0)

    def shortest_hops(self, ref: TupleRef, seeds: Iterable[TupleRef]) -> int:
        """Shortest unweighted hop count from ``ref`` to any seed.

        Returns 0 when ``ref`` is itself a seed, :data:`UNREACHABLE` when
        no path exists (or ``ref`` is not in the graph).
        """
        seed_set = {s for s in seeds if s in self._annotations_of}
        if not seed_set:
            return UNREACHABLE
        if ref in seed_set:
            return 0
        if ref not in self._annotations_of:
            return UNREACHABLE
        visited = {ref}
        queue = deque([(ref, 0)])
        while queue:
            current, depth = queue.popleft()
            for neighbor in self._adjacency.get(current, ()):
                if neighbor in seed_set:
                    return depth + 1
                if neighbor not in visited:
                    visited.add(neighbor)
                    queue.append((neighbor, depth + 1))
        return UNREACHABLE


# ----------------------------------------------------------------------
# Stability (Definition 6.1)
# ----------------------------------------------------------------------


@dataclass
class StabilityTracker:
    """Non-overlapping-batch stability detection over the ACG.

    For each batch of ``batch_size`` annotations with ``M`` total
    attachments and ``N`` newly added ACG edges, the graph is stable iff
    ``N / M < mu``.  The flag is re-evaluated per completed batch; counters
    reset between batches.
    """

    batch_size: int
    mu: float
    stable: bool = False
    _batch_annotations: int = 0
    _batch_attachments: int = 0
    _batch_new_edges: int = 0
    #: (batch M, batch N, resulting stability) per completed batch.
    history: List[Tuple[int, int, bool]] = field(default_factory=list)

    def record_annotation(self, attachments: int, new_edges: int) -> Optional[bool]:
        """Record one processed annotation; returns the new stability flag
        when this annotation completed a batch, else None."""
        self._batch_annotations += 1
        self._batch_attachments += attachments
        self._batch_new_edges += new_edges
        if self._batch_annotations < self.batch_size:
            return None
        m = max(1, self._batch_attachments)
        self.stable = (self._batch_new_edges / m) < self.mu
        self.history.append((self._batch_attachments, self._batch_new_edges, self.stable))
        self._batch_annotations = 0
        self._batch_attachments = 0
        self._batch_new_edges = 0
        return self.stable


# ----------------------------------------------------------------------
# Hop-distance profile (Figure 7)
# ----------------------------------------------------------------------


@dataclass
class HopProfile:
    """Histogram of shortest hop distances of discovered attachments."""

    buckets: Dict[int, int] = field(default_factory=dict)
    unreachable: int = 0

    def record(self, hops: int) -> None:
        if hops == UNREACHABLE:
            self.unreachable += 1
            return
        self.buckets[hops] = self.buckets.get(hops, 0) + 1

    @property
    def total(self) -> int:
        return sum(self.buckets.values()) + self.unreachable

    def coverage(self, k: int) -> float:
        """Expected fraction of candidates within ``k`` hops of the focal."""
        if self.total == 0:
            return 0.0
        covered = sum(count for hops, count in self.buckets.items() if hops <= k)
        return covered / self.total

    def select_k(self, target_recall: float, k_max: int = 16) -> int:
        """Smallest K whose historical coverage meets ``target_recall``.

        With no history, falls back to ``k_max`` (search wide until the
        profile has data).
        """
        if self.total == 0:
            return k_max
        for k in range(0, k_max + 1):
            if self.coverage(k) >= target_recall:
                return max(1, k)
        return k_max

    def as_rows(self, k_max: Optional[int] = None) -> List[Tuple[int, int, float]]:
        """(k, count, cumulative coverage) rows for reporting."""
        if not self.buckets:
            return []
        top = k_max if k_max is not None else max(self.buckets)
        return [(k, self.buckets.get(k, 0), self.coverage(k)) for k in range(top + 1)]


class PersistentHopProfile(HopProfile):
    """A hop profile mirrored into the ``_nebula_hop_profile`` table.

    The histogram loads from the table at construction and every
    :meth:`record` upserts its bucket, so the radius-selection history
    survives process restarts — a freshly opened service selects K from
    everything the database has seen, not from an empty profile.

    ``record`` runs inside the pipeline's ingestion SAVEPOINT, so a
    rolled-back annotation reverts its bucket increments together with
    the in-memory restore in ``Nebula._abort_insert``.  Unreachable
    discoveries persist under ``hops = -1`` (:data:`UNREACHABLE`).
    """

    def __init__(self, connection: "Connection") -> None:
        super().__init__()
        self.connection = connection
        connection.execute(
            "CREATE TABLE IF NOT EXISTS _nebula_hop_profile ("
            "hops INTEGER PRIMARY KEY, count INTEGER NOT NULL)"
        )
        for hops, count in connection.execute(
            "SELECT hops, count FROM _nebula_hop_profile"
        ):
            if int(hops) == UNREACHABLE:
                self.unreachable = int(count)
            else:
                self.buckets[int(hops)] = int(count)

    def record(self, hops: int) -> None:
        super().record(hops)
        self.connection.execute(
            "INSERT INTO _nebula_hop_profile (hops, count) VALUES (?, 1) "
            "ON CONFLICT (hops) DO UPDATE SET count = count + 1",
            (int(hops),),
        )
