"""Shared execution of the SQL queries of multiple keyword queries (§6).

The queries generated from one annotation are executed as a *group*
instead of in isolation, exploiting two kinds of sharing:

* **deduplication** — different keyword queries frequently compile to the
  same SQL (e.g. two Type-2/Type-3 variants probing the same column for
  the same value); identical statements run once;
* **batching** — single-condition probes of the same column (the dominant
  query shape: ``WHERE Gene.GID = 'JW0014'``) merge into one ``IN``-list
  statement whose answer is distributed back to the member queries.

Both preserve exactly the per-query answer sets of isolated execution —
the paper reports "around 40% to 50% speedup ... while producing the same
number of output tuples" (Figure 13).

:meth:`SharedExecutor.execute_groups` extends the same sharing **across
annotations**: a batch of annotations contributes one query group each,
every group's SQL is pooled into a single dedup/batch pass, and each
group's results are assembled from the pooled answers — so ten
annotations mentioning the same gene probe the database once, not ten
times (the sustained-ingestion regime behind the paper's scaling
claims, where Figure 13's per-annotation savings compound).

When a :class:`~repro.perf.parallel.ParallelSqlExecutor` is attached and
usable (file-backed database, no scope restriction), the planned
statements run concurrently on read-only worker connections; any failure
falls back to sequential execution on the main connection.  Parallelism
never changes answers: the plan is fixed before execution and results are
consumed in plan order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..observability.metrics import get_metrics
from ..perf.parallel import ParallelSqlExecutor
from ..search.engine import KeywordQuery, KeywordSearchEngine, SearchResult, SearchScope
from ..search.sqlgen import GeneratedSQL
from ..storage.dialect import SQLITE_DIALECT, Dialect
from ..types import ScoredTuple, TupleRef


@dataclass
class SharedExecutionStats:
    """Execution accounting (how much sharing happened)."""

    total_sql: int = 0
    executed_statements: int = 0
    batched_statements: int = 0
    parallel_statements: int = 0

    @property
    def saved_statements(self) -> int:
        return self.total_sql - self.executed_statements

    @property
    def hit_ratio(self) -> float:
        """Fraction of the generated statements sharing saved (Fig. 13)."""
        return self.saved_statements / self.total_sql if self.total_sql else 0.0


class SharedExecutor:
    """Executes groups of keyword queries with cross-query sharing."""

    def __init__(
        self,
        engine: KeywordSearchEngine,
        parallel: Optional[ParallelSqlExecutor] = None,
        dialect: Dialect = SQLITE_DIALECT,
    ) -> None:
        self.engine = engine
        self.parallel = parallel
        self.dialect = dialect
        self.last_stats = SharedExecutionStats()

    # ------------------------------------------------------------------

    def search_all(
        self,
        queries: Sequence[KeywordQuery],
        scope: Optional[SearchScope] = None,
    ) -> Dict[str, SearchResult]:
        """Per-query results identical to isolated ``engine.search`` calls."""
        return self.execute_groups([queries], scope)[0]

    def execute_groups(
        self,
        groups: Sequence[Sequence[KeywordQuery]],
        scope: Optional[SearchScope] = None,
    ) -> List[Dict[str, SearchResult]]:
        """One result dict per group, with sharing across ALL groups.

        Each group is one annotation's generated queries.  Generation runs
        per group exactly as in isolation; the flattened SQL of every
        group then goes through a single dedup + batch + execute pass, and
        each group's answers are assembled from the shared answer cache —
        per-group results are byte-identical to running the groups one at
        a time.
        """
        prepared: List[Dict[str, Tuple[KeywordQuery, List[GeneratedSQL]]]] = []
        for queries in groups:
            generated: Dict[str, Tuple[KeywordQuery, List[GeneratedSQL]]] = {}
            for query in queries:
                generated[query.describe()] = (query, self.engine.generate(query, scope))
            prepared.append(generated)

        cache = self._execute_shared(
            [
                sql
                for generated in prepared
                for _, sqls in generated.values()
                for sql in sqls
            ],
            scope,
        )

        return [self._assemble(generated, cache) for generated in prepared]

    def _assemble(
        self,
        generated: Dict[str, Tuple[KeywordQuery, List[GeneratedSQL]]],
        cache: Dict[Tuple, List[int]],
    ) -> Dict[str, SearchResult]:
        results: Dict[str, SearchResult] = {}
        for label, (query, sqls) in generated.items():
            best: Dict[TupleRef, float] = {}
            for sql_query in sqls:
                for rowid in cache[sql_query.signature]:
                    ref = TupleRef(sql_query.target_table, rowid)
                    if sql_query.confidence > best.get(ref, 0.0):
                        best[ref] = sql_query.confidence
            tuples = [
                ScoredTuple(ref=ref, confidence=conf, provenance=(label,))
                for ref, conf in sorted(best.items(), key=lambda kv: (-kv[1], kv[0]))
            ]
            results[label] = SearchResult(query=query, tuples=tuples, sql_queries=sqls)
        return results

    # ------------------------------------------------------------------

    def _execute_shared(
        self, sqls: Sequence[GeneratedSQL], scope: Optional[SearchScope]
    ) -> Dict[Tuple, List[int]]:
        stats = SharedExecutionStats(total_sql=len(sqls))
        unique: Dict[Tuple, GeneratedSQL] = {}
        for sql_query in sqls:
            unique.setdefault(sql_query.signature, sql_query)

        # Plan: partition into direct statements and IN-list batches.
        direct: List[GeneratedSQL] = []
        batches: Dict[Tuple[str, str], List[GeneratedSQL]] = {}
        for sql_query in unique.values():
            if sql_query.is_single_local_condition:
                condition = sql_query.conditions[0]
                key = (condition.table.casefold(), condition.column.casefold())
                batches.setdefault(key, []).append(sql_query)
            else:
                direct.append(sql_query)
        merged: List[List[GeneratedSQL]] = []
        for members in batches.values():
            if len(members) == 1:
                direct.append(members[0])
            else:
                merged.append(members)

        statements: List[Tuple[str, Sequence[str]]] = [
            (sql_query.sql, tuple(sql_query.params)) for sql_query in direct
        ]
        #: Per merged group: how many chunked statements it contributed
        #: (one unless the IN list exceeds the dialect's variable limit).
        batch_plan: List[Tuple[Sequence[GeneratedSQL], int]] = []
        for members in merged:
            chunked = self._batch_statements(members, scope)
            batch_plan.append((members, len(chunked)))
            statements.extend(chunked)

        # Execute the fixed plan (parallel when possible), then distribute.
        rows_per_statement = self._run_statements(statements, scope, stats)

        cache: Dict[Tuple, List[int]] = {}
        for position, sql_query in enumerate(direct):
            cache[sql_query.signature] = [
                int(row[0]) for row in rows_per_statement[position]
            ]
        index = len(direct)
        for members, chunk_count in batch_plan:
            rows = [
                row
                for statement_rows in rows_per_statement[index : index + chunk_count]
                for row in statement_rows
            ]
            index += chunk_count
            by_value: Dict[str, List[int]] = {}
            for rowid, value in rows:
                by_value.setdefault(str(value).casefold(), []).append(int(rowid))
            for member in members:
                wanted = member.conditions[0].value.casefold()
                cache[member.signature] = list(by_value.get(wanted, ()))

        stats.executed_statements = len(statements)
        stats.batched_statements = len(merged)
        self.last_stats = stats
        metrics = get_metrics()
        metrics.counter("nebula_shared_sql_total").inc(stats.total_sql)
        metrics.counter("nebula_shared_sql_executed_total").inc(
            stats.executed_statements
        )
        metrics.counter("nebula_shared_sql_batched_total").inc(
            stats.batched_statements
        )
        metrics.counter("nebula_shared_sql_saved_total").inc(stats.saved_statements)
        metrics.counter("nebula_shared_sql_parallel_total").inc(
            stats.parallel_statements
        )
        metrics.gauge("nebula_shared_hit_ratio").set(stats.hit_ratio)
        return cache

    def _run_statements(
        self,
        statements: Sequence[Tuple[str, Sequence[str]]],
        scope: Optional[SearchScope],
        stats: SharedExecutionStats,
    ) -> List[List[Tuple]]:
        """Rows per planned statement, in plan order.

        The parallel path requires ``scope is None``: a scope means the
        statements reference uncommitted mini-database tables (or inline
        rowid filters over them) that the read-only worker connections
        cannot see.  Any parallel failure falls back to sequential
        execution on the main connection — answers are unaffected either
        way, only timing.
        """
        use_parallel = (
            self.parallel is not None
            and self.parallel.available
            and scope is None
            and len(statements) >= 2
        )
        if use_parallel:
            assert self.parallel is not None
            try:
                outcomes = self.parallel.run(statements)
            except Exception:
                get_metrics().counter("nebula_parallel_fallbacks_total").inc()
            else:
                # Profiling and metric handles are not thread-safe, so
                # worker timings are recorded here on the main thread.
                for (sql, _params), (rows, elapsed) in zip(statements, outcomes):
                    self.engine.record_execution(sql, elapsed, len(rows))
                stats.parallel_statements = len(statements)
                return [rows for rows, _elapsed in outcomes]
        return [self.engine.execute_rows(sql, params) for sql, params in statements]

    def _batch_statements(
        self,
        members: Sequence[GeneratedSQL],
        scope: Optional[SearchScope],
    ) -> List[Tuple[str, Sequence[str]]]:
        """IN-list statements answering every member probe.

        Normally one statement; the dialect's host-variable limit
        (``max_variables``, 999 for SQLite) splits an oversized value set
        into several chunks whose rows are concatenated by the caller.
        """
        condition = members[0].conditions[0]
        table, column = condition.table, condition.column
        values = sorted({m.conditions[0].value for m in members}, key=str.casefold)
        quote = self.dialect.quote_identifier
        physical = table
        if scope is not None:
            physical = scope.physical.get(table.casefold(), table)
        suffix = ""
        if scope is not None and physical == table:
            fragment = scope.sql_filters().get(table.casefold())
            if fragment:
                suffix = f" AND {fragment}"
        statements: List[Tuple[str, Sequence[str]]] = []
        for chunk in self.dialect.chunked(values):
            sql = (
                f"SELECT rowid, {quote(column)} "
                f"FROM {quote(physical)} "
                f"WHERE {quote(column)} COLLATE NOCASE "
                f"IN ({self.dialect.placeholders(len(chunk))})"
            ) + suffix
            statements.append((sql, tuple(chunk)))
        return statements
