"""Shared execution of the SQL queries of multiple keyword queries (§6).

The queries generated from one annotation are executed as a *group*
instead of in isolation, exploiting two kinds of sharing:

* **deduplication** — different keyword queries frequently compile to the
  same SQL (e.g. two Type-2/Type-3 variants probing the same column for
  the same value); identical statements run once;
* **batching** — single-condition probes of the same column (the dominant
  query shape: ``WHERE Gene.GID = 'JW0014'``) merge into one ``IN``-list
  statement whose answer is distributed back to the member queries.

Both preserve exactly the per-query answer sets of isolated execution —
the paper reports "around 40% to 50% speedup ... while producing the same
number of output tuples" (Figure 13).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..observability.metrics import get_metrics
from ..search.engine import KeywordQuery, KeywordSearchEngine, SearchResult, SearchScope
from ..search.sqlgen import GeneratedSQL
from ..types import ScoredTuple, TupleRef


@dataclass
class SharedExecutionStats:
    """Execution accounting (how much sharing happened)."""

    total_sql: int = 0
    executed_statements: int = 0
    batched_statements: int = 0

    @property
    def saved_statements(self) -> int:
        return self.total_sql - self.executed_statements

    @property
    def hit_ratio(self) -> float:
        """Fraction of the generated statements sharing saved (Fig. 13)."""
        return self.saved_statements / self.total_sql if self.total_sql else 0.0


class SharedExecutor:
    """Executes a group of keyword queries with cross-query sharing."""

    def __init__(self, engine: KeywordSearchEngine) -> None:
        self.engine = engine
        self.last_stats = SharedExecutionStats()

    # ------------------------------------------------------------------

    def search_all(
        self,
        queries: Sequence[KeywordQuery],
        scope: Optional[SearchScope] = None,
    ) -> Dict[str, SearchResult]:
        """Per-query results identical to isolated ``engine.search`` calls."""
        generated: Dict[str, Tuple[KeywordQuery, List[GeneratedSQL]]] = {}
        for query in queries:
            generated[query.describe()] = (query, self.engine.generate(query, scope))

        cache = self._execute_shared(
            [sql for _, sqls in generated.values() for sql in sqls], scope
        )

        results: Dict[str, SearchResult] = {}
        for label, (query, sqls) in generated.items():
            best: Dict[TupleRef, float] = {}
            for sql_query in sqls:
                for rowid in cache[sql_query.signature]:
                    ref = TupleRef(sql_query.target_table, rowid)
                    if sql_query.confidence > best.get(ref, 0.0):
                        best[ref] = sql_query.confidence
            tuples = [
                ScoredTuple(ref=ref, confidence=conf, provenance=(label,))
                for ref, conf in sorted(best.items(), key=lambda kv: (-kv[1], kv[0]))
            ]
            results[label] = SearchResult(query=query, tuples=tuples, sql_queries=sqls)
        return results

    # ------------------------------------------------------------------

    def _execute_shared(
        self, sqls: Sequence[GeneratedSQL], scope: Optional[SearchScope]
    ) -> Dict[Tuple, List[int]]:
        stats = SharedExecutionStats(total_sql=len(sqls))
        unique: Dict[Tuple, GeneratedSQL] = {}
        for sql_query in sqls:
            unique.setdefault(sql_query.signature, sql_query)

        cache: Dict[Tuple, List[int]] = {}
        batches: Dict[Tuple[str, str], List[GeneratedSQL]] = {}
        for signature, sql_query in unique.items():
            if sql_query.is_single_local_condition:
                condition = sql_query.conditions[0]
                key = (condition.table.casefold(), condition.column.casefold())
                batches.setdefault(key, []).append(sql_query)
            else:
                cache[signature] = self.engine.execute_sql(sql_query)
                stats.executed_statements += 1

        for (table_key, column_key), members in batches.items():
            if len(members) == 1:
                member = members[0]
                cache[member.signature] = self.engine.execute_sql(member)
                stats.executed_statements += 1
                continue
            self._execute_batch(members, scope, cache)
            stats.executed_statements += 1
            stats.batched_statements += 1

        self.last_stats = stats
        metrics = get_metrics()
        metrics.counter("nebula_shared_sql_total").inc(stats.total_sql)
        metrics.counter("nebula_shared_sql_executed_total").inc(
            stats.executed_statements
        )
        metrics.counter("nebula_shared_sql_batched_total").inc(
            stats.batched_statements
        )
        metrics.counter("nebula_shared_sql_saved_total").inc(stats.saved_statements)
        metrics.gauge("nebula_shared_hit_ratio").set(stats.hit_ratio)
        return cache

    def _execute_batch(
        self,
        members: Sequence[GeneratedSQL],
        scope: Optional[SearchScope],
        cache: Dict[Tuple, List[int]],
    ) -> None:
        """One IN-list statement answering every member probe."""
        condition = members[0].conditions[0]
        table, column = condition.table, condition.column
        values = sorted({m.conditions[0].value for m in members}, key=str.casefold)
        placeholders = ", ".join("?" for _ in values)
        physical = table
        if scope is not None:
            physical = scope.physical.get(table.casefold(), table)
        sql = (
            f"SELECT rowid, {column} FROM {physical} "
            f"WHERE {column} COLLATE NOCASE IN ({placeholders})"
        )
        if scope is not None and physical == table:
            fragment = scope.sql_filters().get(table.casefold())
            if fragment:
                sql += f" AND {fragment}"
        by_value: Dict[str, List[int]] = {}
        for rowid, value in self.engine.execute_rows(sql, values):
            by_value.setdefault(str(value).casefold(), []).append(int(rowid))
        for member in members:
            wanted = member.conditions[0].value.casefold()
            cache[member.signature] = list(by_value.get(wanted, ()))
