"""Spam-annotation detection (paper §3, footnote 1).

The problem statement assumes "spam-like annotations, e.g., an annotation
that references all (or most) data tuples, do not exist" and cites
bipartite-graph click-spam detection [26] for handling them.  This module
provides the guard that upholds that assumption in practice: before
triaging an annotation's candidates, Nebula can screen the prediction for
spam signals and quarantine the annotation instead of flooding the
database with attachments.

Signals (any one suffices):

* **coverage** — the candidate set covers more than ``max_coverage`` of
  the searchable tuples ("references most data tuples");
* **flatness** — the confidence distribution is nearly uniform across a
  large candidate set (no reference stands out, the signature of text
  that merely *mentions everything*);
* **fan-out** — the number of candidates exceeds ``max_candidates``
  regardless of database size.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from ..storage.compat import Connection
from ..types import ScoredTuple
from ..utils.sql import quote_identifier


@dataclass(frozen=True)
class SpamVerdict:
    """Outcome of the spam screen for one annotation's prediction."""

    is_spam: bool
    #: Which signal fired (``"coverage"``, ``"flatness"``, ``"fan-out"``)
    #: or None.
    reason: Optional[str]
    coverage: float
    candidate_count: int
    confidence_spread: float


class SpamGuard:
    """Screens candidate sets for spam-like annotations."""

    def __init__(
        self,
        max_coverage: float = 0.30,
        max_candidates: int = 500,
        flatness_minimum: int = 50,
        flatness_spread: float = 0.15,
    ) -> None:
        self.max_coverage = max_coverage
        self.max_candidates = max_candidates
        self.flatness_minimum = flatness_minimum
        self.flatness_spread = flatness_spread

    def screen(
        self,
        candidates: Sequence[ScoredTuple],
        searchable_tuples: int,
    ) -> SpamVerdict:
        """Evaluate one candidate set.

        ``searchable_tuples`` is the total number of tuples the search can
        reach (the coverage denominator).
        """
        count = len(candidates)
        coverage = count / searchable_tuples if searchable_tuples else 0.0
        spread = self._spread(candidates)

        if count > self.max_candidates:
            return SpamVerdict(True, "fan-out", coverage, count, spread)
        if coverage > self.max_coverage:
            return SpamVerdict(True, "coverage", coverage, count, spread)
        if count >= self.flatness_minimum and spread < self.flatness_spread:
            return SpamVerdict(True, "flatness", coverage, count, spread)
        return SpamVerdict(False, None, coverage, count, spread)

    @staticmethod
    def _spread(candidates: Sequence[ScoredTuple]) -> float:
        """Max minus median confidence — 0 for perfectly flat sets."""
        if not candidates:
            return 1.0
        confidences = sorted(t.confidence for t in candidates)
        median = confidences[len(confidences) // 2]
        return confidences[-1] - median


def count_searchable_tuples(
    connection: Connection, tables: Sequence[str]
) -> int:
    """Total rows of the searchable tables (the coverage denominator)."""
    total = 0
    for table in dict.fromkeys(tables):
        row = connection.execute(
            f"SELECT COUNT(*) FROM {quote_identifier(table)}"
        ).fetchone()
        total += int(row[0])
    return total
