"""The annotated-database model (paper §3, Stage 0).

An annotated database is a weighted bipartite graph ``D = {A, T, E}``:
annotation nodes, tuple nodes, and attachment edges.  *True* edges carry
weight 1.0; *predicted* edges carry the engine's confidence < 1.0.

The module also implements the paper's divergence metrics against an ideal
edge set (Equations 1 & 2):

.. math::

    D.F_N = |E_{ideal} - E| / |E_{ideal}|
    D.F_P = |E - E_{ideal}| / |E|

Both are pure set computations over ``(annotation_id, TupleRef)`` pairs, so
they are reused verbatim by the Stage-3 assessment and by tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import AbstractSet, Dict, FrozenSet, Iterable, List, Set, Tuple

from ..annotations.engine import AnnotationManager
from ..annotations.store import AttachmentKind
from ..types import TupleRef

#: An edge identity: (annotation id, tuple).
EdgeKey = Tuple[int, TupleRef]

#: Weight of a *true* (solid) edge — the paper's Figure 2 semantics.  The
#: static analyzer (rule NBL004) pins this to exactly 1.0; predicted-edge
#: confidences must stay strictly inside (0, 1).
TRUE_EDGE_WEIGHT = 1.0


@dataclass(frozen=True)
class Edge:
    """One attachment edge with its weight and kind."""

    annotation_id: int
    ref: TupleRef
    weight: float
    kind: AttachmentKind

    @property
    def key(self) -> EdgeKey:
        return (self.annotation_id, self.ref)


def false_negative_ratio(
    ideal: AbstractSet[EdgeKey], actual: AbstractSet[EdgeKey]
) -> float:
    """Equation 1: the ratio of ideal edges missing from ``actual``.

    Returns 0.0 for an empty ideal set (nothing can be missing).
    """
    if not ideal:
        return 0.0
    return len(set(ideal) - set(actual)) / len(ideal)


def false_positive_ratio(
    ideal: AbstractSet[EdgeKey], actual: AbstractSet[EdgeKey]
) -> float:
    """Equation 2: the ratio of actual edges absent from ``ideal``.

    Returns 0.0 for an empty actual set.
    """
    if not actual:
        return 0.0
    return len(set(actual) - set(ideal)) / len(actual)


class AnnotatedDatabaseModel:
    """Graph view over the annotation store.

    The model materializes the row-level attachment edges of the store and
    offers the paper's quality metrics against a supplied ideal edge set.
    """

    def __init__(self, manager: AnnotationManager) -> None:
        self.manager = manager

    def edges(self, include_predicted: bool = True) -> List[Edge]:
        """All row-level attachment edges currently stored."""
        rows = self.manager.connection.execute(
            "SELECT annotation_id, target_table, target_rowid, confidence, kind "
            "FROM _nebula_attachments WHERE target_rowid IS NOT NULL "
            "ORDER BY attachment_id"
        ).fetchall()
        collected: List[Edge] = []
        for annotation_id, table, rowid, confidence, kind in rows:
            edge_kind = AttachmentKind(kind)
            if edge_kind is AttachmentKind.PREDICTED and not include_predicted:
                continue
            collected.append(
                Edge(
                    annotation_id=int(annotation_id),
                    ref=TupleRef(str(table), int(rowid)),
                    weight=float(confidence),
                    kind=edge_kind,
                )
            )
        return collected

    def edge_keys(self, include_predicted: bool = True) -> FrozenSet[EdgeKey]:
        return frozenset(e.key for e in self.edges(include_predicted))

    def true_edge_keys(self) -> FrozenSet[EdgeKey]:
        return frozenset(
            e.key for e in self.edges() if e.kind is AttachmentKind.TRUE
        )

    # ------------------------------------------------------------------

    def quality(
        self, ideal: AbstractSet[EdgeKey], include_predicted: bool = True
    ) -> Tuple[float, float]:
        """(D.F_N, D.F_P) of the current edge set against ``ideal``."""
        actual = self.edge_keys(include_predicted)
        return false_negative_ratio(ideal, actual), false_positive_ratio(ideal, actual)

    def annotation_degree(self) -> Dict[int, int]:
        """Number of row-level edges per annotation."""
        degrees: Dict[int, int] = {}
        for edge in self.edges():
            degrees[edge.annotation_id] = degrees.get(edge.annotation_id, 0) + 1
        return degrees

    def tuple_degree(self) -> Dict[TupleRef, int]:
        """Number of row-level edges per tuple."""
        degrees: Dict[TupleRef, int] = {}
        for edge in self.edges():
            degrees[edge.ref] = degrees.get(edge.ref, 0) + 1
        return degrees
