"""Adaptive tuning of the verification bounds (paper §7, Figure 9).

The BoundsSetting() algorithm:

1. take a training dataset in which each annotation's attachments are
   complete (our oracle world);
2. distort it — keep only Δ links per annotation (``D_incomplete``);
3. rediscover the missing attachments with the regular pipeline;
4. assess the predictions for a grid of (β_lower, β_upper) settings —
   note the candidate set does not depend on the bounds, so discovery
   runs once per annotation and the grid sweep is pure arithmetic;
5. average per setting and pick the one minimizing the expert effort
   ``M_F`` subject to acceptable ``F_N`` and ``F_P``.

The M_H-guided refinement of the paper's "further enhancements" is also
implemented: when the chosen setting's manual hit ratio is very high, the
upper bound shifts left (more auto-accepts) while the constraints hold.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import AbstractSet, Iterable, List, Optional, Sequence, Tuple

from ..types import ScoredTuple, TupleRef
from .assessment import Assessment, assess, average_assessments


@dataclass(frozen=True)
class TrainingSample:
    """One distorted training annotation, already rediscovered.

    ``candidates`` is the normalized output of IdentifyRelatedTuples();
    ``ideal`` the oracle attachment set; ``focal`` the links kept by the
    distortion.
    """

    candidates: Tuple[ScoredTuple, ...]
    ideal: frozenset
    focal: Tuple[TupleRef, ...]


@dataclass(frozen=True)
class BoundsChoice:
    """The tuned bounds and their averaged training assessment."""

    beta_lower: float
    beta_upper: float
    assessment: Assessment


def _default_grid(step: float = 0.06) -> List[Tuple[float, float]]:
    values = [round(step * i, 4) for i in range(int(1.0 / step) + 1)]
    return [(lo, hi) for lo in values for hi in values if lo <= hi]


class BoundsSetting:
    """Grid sweep + constrained selection of (β_lower, β_upper)."""

    def __init__(
        self,
        fn_limit: float = 0.25,
        fp_limit: float = 0.10,
        grid: Optional[Sequence[Tuple[float, float]]] = None,
        mh_refinement: bool = True,
        mh_threshold: float = 0.9,
    ) -> None:
        self.fn_limit = fn_limit
        self.fp_limit = fp_limit
        self.grid = list(grid) if grid is not None else _default_grid()
        self.mh_refinement = mh_refinement
        self.mh_threshold = mh_threshold

    # ------------------------------------------------------------------

    def evaluate(
        self, samples: Sequence[TrainingSample], beta_lower: float, beta_upper: float
    ) -> Assessment:
        """Average assessment of one bounds setting over the samples."""
        assessments = [
            assess(s.candidates, s.ideal, s.focal, beta_lower, beta_upper)
            for s in samples
        ]
        return average_assessments(assessments)

    def sweep(self, samples: Sequence[TrainingSample]) -> List[BoundsChoice]:
        """Assess every grid setting (Step 3's exploration loop)."""
        return [
            BoundsChoice(lo, hi, self.evaluate(samples, lo, hi))
            for lo, hi in self.grid
        ]

    def tune(self, samples: Sequence[TrainingSample]) -> BoundsChoice:
        """Pick the best setting: minimize M_F within the F_N/F_P limits.

        When no setting satisfies both limits, the constraint miss
        ``max(0, F_N - limit) + max(0, F_P - limit)`` is minimized instead
        (graceful degradation), then M_F breaks ties.
        """
        if not samples:
            raise ValueError("bounds tuning needs at least one training sample")
        choices = self.sweep(samples)
        feasible = [
            c
            for c in choices
            if c.assessment.f_n <= self.fn_limit and c.assessment.f_p <= self.fp_limit
        ]
        if feasible:
            best = min(
                feasible,
                key=lambda c: (
                    c.assessment.m_f,
                    c.assessment.f_n + c.assessment.f_p,
                    -c.beta_upper,
                ),
            )
        else:
            best = min(
                choices,
                key=lambda c: (
                    max(0.0, c.assessment.f_n - self.fn_limit)
                    + max(0.0, c.assessment.f_p - self.fp_limit),
                    c.assessment.m_f,
                ),
            )
        if self.mh_refinement:
            best = self._refine_with_mh(samples, best)
        return best

    # ------------------------------------------------------------------

    def _refine_with_mh(
        self, samples: Sequence[TrainingSample], best: BoundsChoice
    ) -> BoundsChoice:
        """M_H-guided refinement: a hit ratio near 1 means nearly all
        manually verified predictions get accepted, so β_upper can move
        left to auto-accept more — as long as the limits keep holding."""
        current = best
        while current.assessment.m_h >= self.mh_threshold and current.assessment.m_f > 0:
            lowered = round(current.beta_upper - 0.02, 4)
            if lowered <= current.beta_lower:
                break
            candidate = BoundsChoice(
                current.beta_lower,
                lowered,
                self.evaluate(samples, current.beta_lower, lowered),
            )
            if (
                candidate.assessment.f_n > self.fn_limit
                or candidate.assessment.f_p > self.fp_limit
            ):
                break
            current = candidate
        return current
