"""IdentifyRelatedTuples() — the Stage-2 execution algorithm (Figure 5).

Given the keyword queries generated from an annotation:

* **Step 1** — execute every query through the (black-box) search engine;
  each answered tuple's confidence is multiplied by the query's weight;
* **Step 2** — group identical tuples across queries and *sum* their
  confidences (tuples satisfying several queries of the same annotation
  are more likely related to it); when an ACG and the annotation's focal
  are supplied, the focal-based confidence adjustment (§6.2) runs here;
* **Step 3** — normalize all confidences by the maximum.

The optional ``executor`` argument plugs in the shared multi-query
execution optimization; the optional ``scope`` confines the search to the
K-hop mini database of the focal-based spreading technique.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .shared_execution import SharedExecutor

from ..observability.metrics import COUNT_BUCKETS, get_metrics
from ..search.engine import KeywordQuery, KeywordSearchEngine, SearchResult, SearchScope
from ..types import ScoredTuple, TupleRef
from .acg import AnnotationsConnectivityGraph
from .focal import apply_focal_adjustment


@dataclass
class IdentifiedTuples:
    """The candidate set ``T`` produced for one annotation."""

    #: Final candidates, confidence-normalized to (0, 1], best first.
    tuples: List[ScoredTuple]
    #: Per-query raw results (keyed by the query's describe() label).
    per_query: Dict[str, SearchResult] = field(default_factory=dict)
    #: Sum of the raw per-query answer sizes (before grouping).
    raw_tuple_count: int = 0
    elapsed: float = 0.0

    @property
    def refs(self) -> List[TupleRef]:
        return [t.ref for t in self.tuples]

    def confidence_of(self, ref: TupleRef) -> float:
        for scored in self.tuples:
            if scored.ref == ref:
                return scored.confidence
        return 0.0


def identify_related_tuples(
    queries: Sequence[KeywordQuery],
    engine: KeywordSearchEngine,
    scope: Optional[SearchScope] = None,
    acg: Optional[AnnotationsConnectivityGraph] = None,
    focal: Sequence[TupleRef] = (),
    executor: Optional["SharedExecutor"] = None,
    focal_mode: str = "direct",
    focal_max_hops: int = 4,
    precomputed: Optional[Dict[str, SearchResult]] = None,
) -> IdentifiedTuples:
    """Run the full IdentifyRelatedTuples() algorithm.

    ``precomputed`` supplies per-query results executed elsewhere (the
    batched cross-annotation shared execution of
    :meth:`repro.core.nebula.Nebula.insert_annotations`); Steps 2-3 —
    grouping, focal adjustment, normalization — still run here, so the
    ACG-dependent parts see the caller's current graph state.
    """
    started = time.perf_counter()

    # Step 1: execute the queries and weight their answers.
    if precomputed is not None:
        per_query = precomputed
    elif executor is not None:
        per_query = executor.search_all(queries, scope=scope)
    else:
        per_query = {q.describe(): engine.search(q, scope=scope) for q in queries}

    grouped: Dict[TupleRef, float] = {}
    provenance: Dict[TupleRef, List[str]] = {}
    raw_count = 0
    for query in queries:
        result = per_query[query.describe()]
        raw_count += len(result.tuples)
        for scored in result.tuples:
            weighted = scored.confidence * query.weight
            # Step 2: group and reward tuples produced by several queries.
            grouped[scored.ref] = grouped.get(scored.ref, 0.0) + weighted
            provenance.setdefault(scored.ref, []).append(query.describe())

    # Focal-based adjustment (the §6.2 extension, after grouping).
    if acg is not None and focal:
        grouped = apply_focal_adjustment(
            grouped, acg, focal, mode=focal_mode, max_hops=focal_max_hops
        )

    # Step 3: normalize relative to the largest confidence.
    tuples = _normalize(grouped, provenance)
    metrics = get_metrics()
    metrics.counter("nebula_tuples_scored_total").inc(len(tuples))
    metrics.counter("nebula_raw_tuples_total").inc(raw_count)
    metrics.histogram("nebula_candidate_tuples", COUNT_BUCKETS).observe(len(tuples))
    return IdentifiedTuples(
        tuples=tuples,
        per_query=per_query,
        raw_tuple_count=raw_count,
        elapsed=time.perf_counter() - started,
    )


def _normalize(
    grouped: Dict[TupleRef, float], provenance: Dict[TupleRef, List[str]]
) -> List[ScoredTuple]:
    if not grouped:
        return []
    max_confidence = max(grouped.values())
    if max_confidence <= 0.0:
        return []
    tuples = [
        ScoredTuple(
            ref=ref,
            confidence=conf / max_confidence,
            provenance=tuple(provenance.get(ref, ())),
        )
        for ref, conf in grouped.items()
    ]
    tuples.sort(key=lambda t: (-t.confidence, t.ref))
    return tuples
