"""Verification of predicted attachments (paper §7, Figure 8).

Every candidate attachment becomes a :class:`VerificationTask`
``v = (vid, a, t, confidence, evidence)``.  Tasks are triaged against the
two bounds:

* ``confidence < beta_lower``  -> automatically rejected (discarded);
* ``confidence > beta_upper``  -> automatically accepted (True Attachment);
* otherwise                    -> *pending*, stored in a system table for
  experts to resolve via ``VERIFY|REJECT ATTACHMENT <vid>``.

Acceptance (automatic or manual) triggers the paper's transparent action
sequence: (1) the annotation is attached to the tuple as a true edge,
(2) the ACG is updated, and (3) the hop-distance profile that guides the
focal-based spreading is updated (hops measured *before* the new edges are
added).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..annotations.engine import AnnotationManager
from ..errors import UnknownVerificationTaskError, VerificationError
from ..storage.compat import Connection
from ..types import CellRef, ScoredTuple, TupleRef
from .acg import AnnotationsConnectivityGraph, HopProfile

_TASKS_DDL = """
CREATE TABLE IF NOT EXISTS _nebula_verification_tasks (
    task_id       INTEGER PRIMARY KEY,
    annotation_id INTEGER NOT NULL,
    target_table  TEXT NOT NULL,
    target_rowid  INTEGER NOT NULL,
    confidence    REAL NOT NULL,
    evidence      TEXT NOT NULL,
    status        TEXT NOT NULL CHECK (status IN
        ('pending', 'auto_accepted', 'auto_rejected', 'verified', 'rejected'))
);
"""


class Decision(str, Enum):
    """Lifecycle states of a verification task."""

    PENDING = "pending"
    AUTO_ACCEPTED = "auto_accepted"
    AUTO_REJECTED = "auto_rejected"
    VERIFIED = "verified"  # expert accepted
    REJECTED = "rejected"  # expert rejected

    @property
    def is_accepted(self) -> bool:
        return self in (Decision.AUTO_ACCEPTED, Decision.VERIFIED)

    @property
    def is_resolved(self) -> bool:
        return self is not Decision.PENDING


@dataclass(frozen=True)
class VerificationTask:
    """One predicted attachment awaiting (or past) its decision."""

    task_id: int
    annotation_id: int
    ref: TupleRef
    confidence: float
    evidence: Tuple[str, ...]
    decision: Decision


class VerificationQueue:
    """Triages candidate tuples and manages the pending-task table."""

    def __init__(
        self,
        manager: AnnotationManager,
        acg: Optional[AnnotationsConnectivityGraph] = None,
        profile: Optional[HopProfile] = None,
    ) -> None:
        self.manager = manager
        self.acg = acg
        self.profile = profile
        self.connection: Connection = manager.connection
        self.connection.executescript(_TASKS_DDL)
        #: Focal of each triaged annotation — needed for profile updates.
        self._focal_of: Dict[int, Tuple[TupleRef, ...]] = {}

    # ------------------------------------------------------------------
    # Triage
    # ------------------------------------------------------------------

    def triage(
        self,
        annotation_id: int,
        candidates: Sequence[ScoredTuple],
        beta_lower: float,
        beta_upper: float,
        focal: Sequence[TupleRef] = (),
    ) -> List[VerificationTask]:
        """Create and band the verification tasks of one annotation.

        Candidates that are already attached (focal tuples rediscovered by
        the search) are skipped — they are not *missing* attachments.
        """
        if not 0.0 <= beta_lower <= beta_upper <= 1.0:
            raise VerificationError("bounds must satisfy 0 <= lower <= upper <= 1")
        focal = tuple(focal) or self.manager.focal_of(annotation_id)
        self._focal_of[annotation_id] = focal
        focal_set = set(focal)
        tasks: List[VerificationTask] = []
        for candidate in candidates:
            if candidate.ref in focal_set:
                continue
            if candidate.confidence < beta_lower:
                decision = Decision.AUTO_REJECTED
            elif candidate.confidence > beta_upper:
                decision = Decision.AUTO_ACCEPTED
            else:
                decision = Decision.PENDING
            task = self._insert_task(annotation_id, candidate, decision)
            if decision is Decision.AUTO_ACCEPTED:
                self._accept(task)
            elif decision is Decision.PENDING:
                self.manager.attach_predicted(
                    annotation_id,
                    CellRef(candidate.ref.table, candidate.ref.rowid),
                    confidence=min(candidate.confidence, 0.999),
                )
            tasks.append(task)
        return tasks

    def _insert_task(
        self, annotation_id: int, candidate: ScoredTuple, decision: Decision
    ) -> VerificationTask:
        cursor = self.connection.execute(
            "INSERT INTO _nebula_verification_tasks "
            "(annotation_id, target_table, target_rowid, confidence, evidence, status) "
            "VALUES (?, ?, ?, ?, ?, ?)",
            (
                annotation_id,
                candidate.ref.table,
                candidate.ref.rowid,
                candidate.confidence,
                "\n".join(candidate.provenance),
                decision.value,
            ),
        )
        return VerificationTask(
            task_id=int(cursor.lastrowid),
            annotation_id=annotation_id,
            ref=candidate.ref,
            confidence=candidate.confidence,
            evidence=tuple(candidate.provenance),
            decision=decision,
        )

    # ------------------------------------------------------------------
    # Expert resolution (the VERIFY | REJECT ATTACHMENT command)
    # ------------------------------------------------------------------

    def verify(self, task_id: int) -> VerificationTask:
        """Expert accepts a pending task: it becomes a True Attachment.

        The resolution lands as one ``verify`` commit in the append-only
        log (after the task is known to exist, so a bad id leaves no
        empty commit behind).
        """
        task = self._load_pending(task_id)
        with self.manager.store.versioning.scope("verify", note=f"task:{task_id}"):
            resolved = self._set_status(task, Decision.VERIFIED)
            self._accept(resolved)
        return resolved

    def reject(self, task_id: int) -> VerificationTask:
        """Expert rejects a pending task: the prediction is discarded.

        Recorded as one ``reject`` commit; the dropped edge's tombstone
        in the attachment history shows *what* was discarded.
        """
        task = self._load_pending(task_id)
        with self.manager.store.versioning.scope("reject", note=f"task:{task_id}"):
            resolved = self._set_status(task, Decision.REJECTED)
            for attachment in self.manager.pending_predicted(task.annotation_id):
                if attachment.tuple_ref == task.ref:
                    self.manager.discard_attachment(attachment.attachment_id)
        return resolved

    def forget(self, annotation_id: int) -> None:
        """Drop the in-memory triage bookkeeping of one annotation.

        Called by the pipeline's fault boundary when an ingestion rolls
        back: the persisted task rows vanish with the SAVEPOINT, and this
        keeps the focal cache consistent with them.
        """
        self._focal_of.pop(annotation_id, None)

    def pending(self, annotation_id: Optional[int] = None) -> List[VerificationTask]:
        """Pending tasks, optionally for one annotation."""
        sql = (
            "SELECT task_id, annotation_id, target_table, target_rowid, "
            "confidence, evidence, status FROM _nebula_verification_tasks "
            "WHERE status = 'pending'"
        )
        params: Tuple = ()
        if annotation_id is not None:
            sql += " AND annotation_id = ?"
            params = (annotation_id,)
        return [_row_to_task(r) for r in self.connection.execute(sql, params)]

    def tasks_of(self, annotation_id: int) -> List[VerificationTask]:
        rows = self.connection.execute(
            "SELECT task_id, annotation_id, target_table, target_rowid, "
            "confidence, evidence, status FROM _nebula_verification_tasks "
            "WHERE annotation_id = ? ORDER BY task_id",
            (annotation_id,),
        )
        return [_row_to_task(r) for r in rows]

    # ------------------------------------------------------------------
    # Acceptance side effects (paper §7: the transparent action sequence)
    # ------------------------------------------------------------------

    def _accept(self, task: VerificationTask) -> None:
        focal = self._focal_of.get(task.annotation_id) or self.manager.focal_of(
            task.annotation_id
        )
        # (3) profile update first: hops measured before the new edges.
        if self.profile is not None and self.acg is not None and focal:
            self.profile.record(self.acg.shortest_hops(task.ref, focal))
        # (1) attach as a true edge.
        self.manager.attach_true(
            task.annotation_id, CellRef(task.ref.table, task.ref.rowid)
        )
        # (2) ACG update.
        if self.acg is not None:
            self.acg.add_attachment(task.annotation_id, task.ref)

    # ------------------------------------------------------------------

    def _load_pending(self, task_id: int) -> VerificationTask:
        row = self.connection.execute(
            "SELECT task_id, annotation_id, target_table, target_rowid, "
            "confidence, evidence, status FROM _nebula_verification_tasks "
            "WHERE task_id = ?",
            (task_id,),
        ).fetchone()
        if row is None or Decision(row[6]) is not Decision.PENDING:
            raise UnknownVerificationTaskError(task_id)
        return _row_to_task(row)

    def _set_status(self, task: VerificationTask, decision: Decision) -> VerificationTask:
        self.connection.execute(
            "UPDATE _nebula_verification_tasks SET status = ? WHERE task_id = ?",
            (decision.value, task.task_id),
        )
        return VerificationTask(
            task_id=task.task_id,
            annotation_id=task.annotation_id,
            ref=task.ref,
            confidence=task.confidence,
            evidence=task.evidence,
            decision=decision,
        )


def _row_to_task(row: Sequence) -> VerificationTask:
    evidence = tuple(part for part in str(row[5]).split("\n") if part)
    return VerificationTask(
        task_id=int(row[0]),
        annotation_id=int(row[1]),
        ref=TupleRef(str(row[2]), int(row[3])),
        confidence=float(row[4]),
        evidence=evidence,
        decision=Decision(row[6]),
    )
