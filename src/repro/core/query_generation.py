"""Keyword-query generation (paper §5.2, Figure 4, Step 4).

``generate_queries`` is the paper's QueryGeneration() algorithm end to end:

1. build the Concept-Map and Value-Map (cutoff ε);
2. overlay into the Context-Map and run the context-based adjustment;
3. ConceptMap-To-Queries(): for every emphasized word take its best
   mapping, form the strongest match within the influence range, and emit
   a keyword query ({k1, k2, k3} for Type-1; {k1, k2} for Type-2/3);
4. the *backward concept search* special case: a value word with no
   concept partner in range (common in lists — "genes JW0014 ... grpC")
   searches backward for the closest concept word and pairs with it when
   their mappings are compatible;
5. de-duplicate (keep the heaviest query per keyword set) and normalize
   the weights to [0, 1].

Each of the three phases is timed separately; Figure 11(a) reports the
per-phase split.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..config import NebulaConfig
from ..meta.repository import NebulaMeta
from ..observability.metrics import TIME_BUCKETS, get_metrics
from ..observability.tracing import TracerLike
from ..resilience.degradation import (
    CONTEXT_FALLBACK,
    count_degradation,
    logger as _resilience_logger,
)
from ..search.engine import KeywordQuery
from ..utils.timer import PhaseTimer
from ..utils.tokenize import normalize_word, tokenize
from .context_adjust import MatchReport, adjust_context_weights
from .signature_maps import (
    SHAPE_COLUMN,
    SHAPE_TABLE,
    SHAPE_VALUE,
    ContextMap,
    MapEntry,
    WeightedMapping,
    build_concept_map,
    build_value_map,
    overlay_maps,
)

PHASE_MAPS = "map_generation"
PHASE_CONTEXT = "context_adjustment"
PHASE_QUERIES = "query_formation"

#: Trace span per Figure 11a phase (the stage-1 part of the taxonomy).
SPAN_NAMES = {
    PHASE_MAPS: "stage1.maps",
    PHASE_CONTEXT: "stage1.context",
    PHASE_QUERIES: "stage1.queries",
}


@dataclass(frozen=True)
class CandidateQuery:
    """A keyword query before deduplication/normalization."""

    keywords: Tuple[str, ...]
    weight: float
    origin_position: int
    match_kind: str


@dataclass
class QueryGenerationResult:
    """Everything Stage 1 produced for one annotation."""

    queries: List[KeywordQuery]
    context_map: ContextMap
    phase_times: Dict[str, float] = field(default_factory=dict)
    adjustment_reports: List[MatchReport] = field(default_factory=list)
    candidates: List[CandidateQuery] = field(default_factory=list)
    #: Degradation labels for optimizations that failed and fell back
    #: (currently only the context-based adjustment).
    degradations: List[str] = field(default_factory=list)

    @property
    def total_time(self) -> float:
        return sum(self.phase_times.values())


def generate_queries(
    text: str,
    meta: NebulaMeta,
    config: NebulaConfig,
    tracer: Optional[TracerLike] = None,
) -> QueryGenerationResult:
    """Run QueryGeneration() on one annotation's text.

    ``tracer`` (optional) threads the enclosing trace through: the three
    Figure 11a phases then appear as ``stage1.maps`` / ``stage1.context``
    / ``stage1.queries`` spans, measured by the same stopwatches that
    fill ``phase_times``.
    """
    timer = PhaseTimer(tracer=tracer, span_names=SPAN_NAMES)
    with timer.phase(PHASE_MAPS):
        tokens = tokenize(text)
        concept_entries = build_concept_map(tokens, meta, config.epsilon)
        value_entries = build_value_map(tokens, meta, config.epsilon)
    degradations: List[str] = []
    with timer.phase(PHASE_CONTEXT):
        context_map = overlay_maps(tokens, concept_entries, value_entries)
        reports: List[MatchReport] = []
        if config.context_adjustment:
            try:
                reports = adjust_context_weights(context_map, config)
            except Exception as error:
                # Degradation ladder: a broken adjustment must not sink the
                # annotation — rebuild the overlay (the adjuster mutates
                # weights in place) and search with unadjusted weights.
                _resilience_logger.warning(
                    "context adjustment failed, using unadjusted weights: %s", error
                )
                context_map = overlay_maps(tokens, concept_entries, value_entries)
                degradations.append(CONTEXT_FALLBACK)
                count_degradation(CONTEXT_FALLBACK)
    with timer.phase(PHASE_QUERIES):
        candidates = _form_candidates(context_map, config)
        queries = _finalize(candidates, config)
    phase_times = timer.totals()
    _count_generation(queries, phase_times)
    return QueryGenerationResult(
        queries=queries,
        context_map=context_map,
        phase_times=phase_times,
        adjustment_reports=reports,
        candidates=candidates,
        degradations=degradations,
    )


def _count_generation(
    queries: Sequence[KeywordQuery], phase_times: Dict[str, float]
) -> None:
    """Fold one generation pass into the metrics registry."""
    metrics = get_metrics()
    metrics.counter("nebula_queries_generated_total").inc(len(queries))
    for query in queries:
        # Labels are "q@<position>:<match kind>:<keywords>" by construction.
        parts = query.label.split(":")
        kind = parts[1] if len(parts) >= 3 else "unknown"
        metrics.counter(
            "nebula_queries_generated_total", {"type": kind}
        ).inc()
    for phase, elapsed in phase_times.items():
        metrics.histogram(
            "nebula_phase_seconds", TIME_BUCKETS, {"phase": phase}
        ).observe(elapsed)


# ----------------------------------------------------------------------
# ConceptMap-To-Queries()
# ----------------------------------------------------------------------


def _form_candidates(
    context_map: ContextMap, config: NebulaConfig
) -> List[CandidateQuery]:
    candidates: List[CandidateQuery] = []
    for position in context_map.emphasized_positions():
        entry = context_map.entries[position]
        best = entry.best()
        if best is None:
            continue
        neighbors = context_map.neighbors(position, config.alpha)
        candidate = _best_match_query(entry, best, neighbors)
        if candidate is None and best.shape == SHAPE_VALUE and config.backward_concept_search:
            candidate = _backward_query(context_map, entry, best)
        if candidate is not None:
            candidates.append(candidate)
    return candidates


def _best_match_query(
    entry: MapEntry, best: WeightedMapping, neighbors: Sequence[MapEntry]
) -> Optional[CandidateQuery]:
    """Form the strongest-type match for ``best`` within the range."""
    if best.shape == SHAPE_VALUE:
        table_partner = _find_partner(neighbors, SHAPE_TABLE, best.table, None)
        column_partner = _find_partner(neighbors, SHAPE_COLUMN, best.table, best.column)
        if table_partner and column_partner:
            return _candidate(
                entry, "type1", (table_partner, column_partner), best
            )
        if table_partner:
            return _candidate(entry, "type2", (table_partner,), best)
        if column_partner:
            return _candidate(entry, "type3", (column_partner,), best)
        return None
    if best.shape == SHAPE_TABLE:
        value_partner = _find_value_partner(neighbors, best.table, None)
        if value_partner is None:
            return None
        value_entry, value_mapping = value_partner
        column_partner = _find_partner(
            neighbors, SHAPE_COLUMN, value_mapping.table, value_mapping.column
        )
        if column_partner:
            return _candidate(
                entry, "type1", (column_partner, (value_entry, value_mapping)), best
            )
        return _candidate(entry, "type2", ((value_entry, value_mapping),), best)
    # SHAPE_COLUMN
    value_partner = _find_value_partner(neighbors, best.table, best.column)
    if value_partner is None:
        return None
    value_entry, value_mapping = value_partner
    table_partner = _find_partner(neighbors, SHAPE_TABLE, best.table, None)
    if table_partner:
        return _candidate(
            entry, "type1", (table_partner, (value_entry, value_mapping)), best
        )
    return _candidate(entry, "type3", ((value_entry, value_mapping),), best)


def _find_partner(
    neighbors: Sequence[MapEntry],
    shape: str,
    table: str,
    column: Optional[str],
) -> Optional[Tuple[MapEntry, WeightedMapping]]:
    """Best (entry, mapping) of the given shape consistent with the target."""
    best_pair: Optional[Tuple[MapEntry, WeightedMapping]] = None
    for neighbor in neighbors:
        for mapping in neighbor.mappings:
            if mapping.shape != shape:
                continue
            if mapping.table.casefold() != table.casefold():
                continue
            if column is not None and (mapping.column or "").casefold() != column.casefold():
                continue
            if best_pair is None or mapping.weight > best_pair[1].weight:
                best_pair = (neighbor, mapping)
    return best_pair


def _find_value_partner(
    neighbors: Sequence[MapEntry], table: str, column: Optional[str]
) -> Optional[Tuple[MapEntry, WeightedMapping]]:
    best_pair: Optional[Tuple[MapEntry, WeightedMapping]] = None
    for neighbor in neighbors:
        for mapping in neighbor.mappings:
            if mapping.shape != SHAPE_VALUE:
                continue
            if mapping.table.casefold() != table.casefold():
                continue
            if column is not None and (mapping.column or "").casefold() != column.casefold():
                continue
            if best_pair is None or mapping.weight > best_pair[1].weight:
                best_pair = (neighbor, mapping)
    return best_pair


def _candidate(
    entry: MapEntry,
    match_kind: str,
    partners: Sequence[Tuple[MapEntry, WeightedMapping]],
    best: WeightedMapping,
) -> CandidateQuery:
    """Assemble the query in text order, weight = sum of mapping weights."""
    pieces = [(entry.position, entry.token.cleaned, best.weight)]
    for partner_entry, partner_mapping in partners:
        pieces.append(
            (partner_entry.position, partner_entry.token.cleaned, partner_mapping.weight)
        )
    pieces.sort(key=lambda p: p[0])
    return CandidateQuery(
        keywords=tuple(p[1] for p in pieces),
        weight=sum(p[2] for p in pieces),
        origin_position=entry.position,
        match_kind=match_kind,
    )


def _backward_query(
    context_map: ContextMap, entry: MapEntry, best: WeightedMapping
) -> Optional[CandidateQuery]:
    """Lines 8-12 of ConceptMap-To-Queries(): backward concept search.

    The paper triggers this for a hexagon word with an "empty" influence
    range; we read "empty" as *holding no usable concept partner* — the
    list case ("genes JW0014 ... grpC ... yaaB") leaves later values with
    hexagon-only neighborhoods, which is precisely the case the special
    case exists for.  Searching backward from the word's position, the
    closest concept word whose mapping is *compatible* with the value's
    (same table for Type-2, same column for Type-3) becomes the partner;
    incompatible concepts on the way are skipped (a "PName" column word
    must not block the "proteins" table word right behind it).  A value
    with no compatible concept anywhere before it is ignored.
    """
    for position in range(entry.position - 1, -1, -1):
        candidate_entry = context_map.entries.get(position)
        if candidate_entry is None:
            continue
        concept_mappings = [m for m in candidate_entry.mappings if m.is_concept]
        if not concept_mappings:
            continue
        compatible = [
            m
            for m in concept_mappings
            if m.table.casefold() == best.table.casefold()
            and (
                m.shape == SHAPE_TABLE
                or (m.column or "").casefold() == (best.column or "").casefold()
            )
        ]
        if not compatible:
            continue  # skip incompatible concepts, keep scanning backward
        partner = max(compatible, key=lambda m: m.weight)
        kind = "type2" if partner.shape == SHAPE_TABLE else "type3"
        return CandidateQuery(
            keywords=(candidate_entry.token.cleaned, entry.token.cleaned),
            weight=partner.weight + best.weight,
            origin_position=entry.position,
            match_kind=f"backward-{kind}",
        )
    return None


# ----------------------------------------------------------------------
# Dedup + normalization (Lines 15-16)
# ----------------------------------------------------------------------


def _finalize(
    candidates: Sequence[CandidateQuery], config: NebulaConfig
) -> List[KeywordQuery]:
    best_by_keywords: Dict[frozenset, CandidateQuery] = {}
    for candidate in candidates:
        if len(candidate.keywords) > config.max_query_keywords:
            continue
        key = frozenset(normalize_word(k) for k in candidate.keywords)
        current = best_by_keywords.get(key)
        if current is None or candidate.weight > current.weight:
            best_by_keywords[key] = candidate
    if not best_by_keywords:
        return []
    max_weight = max(c.weight for c in best_by_keywords.values())
    queries = [
        KeywordQuery(
            keywords=c.keywords,
            weight=c.weight / max_weight if max_weight > 0 else 0.0,
            label=f"q@{c.origin_position}:{c.match_kind}:{'+'.join(c.keywords)}",
        )
        for c in best_by_keywords.values()
    ]
    queries.sort(key=lambda q: (-q.weight, q.keywords))
    return queries
