"""Context-based weight adjustment (paper §5.2.2, Figure 17).

Three context match types, strongest first:

* **Type-1** — {table, column, value} within one influence range, mutually
  consistent: the column belongs to the table and the value belongs to
  that column (``{"gene", "Id", "JW0018"}``);
* **Type-2** — {table, value}: a value of some column of the table
  (``"gene yaaB"``);
* **Type-3** — {column, value}: a value of exactly that column.

For each word ``w`` and each of its mappings, the adjuster looks for the
strongest match type formable with the mappings of the words inside
``w``'s influence range (±α words).  Only the strongest formable type
rewards the mapping: each distinct match of that type boosts the weight by
β1 / β2 / β3 percent respectively (β1 > β2 > β3).  Per the paper's
Figure 17 the boosted weights are *not* clamped — query weights are
normalized to [0, 1] at the end of query generation, and clamping here
would compress the reward of strong mappings relative to weak ones.

Rewards are computed against a snapshot of the incoming weights, so the
outcome is independent of word iteration order.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Iterator, List, Optional, Sequence, Tuple

from ..config import NebulaConfig
from .signature_maps import (
    SHAPE_COLUMN,
    SHAPE_TABLE,
    SHAPE_VALUE,
    ContextMap,
    MapEntry,
    WeightedMapping,
)


class MatchType(Enum):
    TYPE1 = 1
    TYPE2 = 2
    TYPE3 = 3


@dataclass(frozen=True)
class MatchReport:
    """How one mapping was rewarded (kept for explainability/tests)."""

    position: int
    mapping_description: str
    match_type: Optional[MatchType]
    match_count: int
    old_weight: float
    new_weight: float


def adjust_context_weights(
    context_map: ContextMap, config: NebulaConfig
) -> List[MatchReport]:
    """Run the ContextBasedAdjustment() function over the map in place.

    Returns per-mapping reports of what was rewarded.
    """
    reports: List[MatchReport] = []
    # Snapshot neighbor mappings first: rewards must not feed each other.
    plan: List[Tuple[WeightedMapping, Optional[MatchType], int, int]] = []
    for position in context_map.emphasized_positions():
        entry = context_map.entries[position]
        neighbors = context_map.neighbors(position, config.alpha)
        for mapping in entry.mappings:
            match_type, count = _best_match(mapping, neighbors)
            plan.append((mapping, match_type, count, position))
    for mapping, match_type, count, position in plan:
        old_weight = mapping.weight
        if match_type is not None and count > 0:
            beta = {
                MatchType.TYPE1: config.beta1,
                MatchType.TYPE2: config.beta2,
                MatchType.TYPE3: config.beta3,
            }[match_type]
            mapping.weight = mapping.weight * (1.0 + beta * count)
        reports.append(
            MatchReport(
                position=position,
                mapping_description=mapping.describe(),
                match_type=match_type,
                match_count=count,
                old_weight=old_weight,
                new_weight=mapping.weight,
            )
        )
    return reports


# ----------------------------------------------------------------------


def _best_match(
    mapping: WeightedMapping, neighbors: Sequence[MapEntry]
) -> Tuple[Optional[MatchType], int]:
    """Strongest match type formable for ``mapping`` and its match count."""
    count = _count_type1(mapping, neighbors)
    if count:
        return MatchType.TYPE1, count
    count = _count_type2(mapping, neighbors)
    if count:
        return MatchType.TYPE2, count
    count = _count_type3(mapping, neighbors)
    if count:
        return MatchType.TYPE3, count
    return None, 0


def _neighbor_mappings(
    neighbors: Sequence[MapEntry], shape: str
) -> Iterator[Tuple[int, WeightedMapping]]:
    for entry in neighbors:
        for mapping in entry.mappings:
            if mapping.shape == shape:
                yield entry.position, mapping


def _count_type1(mapping: WeightedMapping, neighbors: Sequence[MapEntry]) -> int:
    """{table, column, value} — column in table, value in that column."""
    if mapping.shape == SHAPE_VALUE:
        tables = {
            p
            for p, m in _neighbor_mappings(neighbors, SHAPE_TABLE)
            if _same(m.table, mapping.table)
        }
        columns = {
            p
            for p, m in _neighbor_mappings(neighbors, SHAPE_COLUMN)
            if _same(m.table, mapping.table) and _same(m.column, mapping.column)
        }
        return len(tables) * len(columns)
    if mapping.shape == SHAPE_TABLE:
        count = 0
        column_positions = [
            (p, m)
            for p, m in _neighbor_mappings(neighbors, SHAPE_COLUMN)
            if _same(m.table, mapping.table)
        ]
        for _, column_mapping in column_positions:
            count += sum(
                1
                for _, value_mapping in _neighbor_mappings(neighbors, SHAPE_VALUE)
                if _same(value_mapping.table, mapping.table)
                and _same(value_mapping.column, column_mapping.column)
            )
        return count
    # SHAPE_COLUMN
    count = 0
    has_table = any(
        _same(m.table, mapping.table)
        for _, m in _neighbor_mappings(neighbors, SHAPE_TABLE)
    )
    if not has_table:
        return 0
    count = sum(
        1
        for _, value_mapping in _neighbor_mappings(neighbors, SHAPE_VALUE)
        if _same(value_mapping.table, mapping.table)
        and _same(value_mapping.column, mapping.column)
    )
    return count


def _count_type2(mapping: WeightedMapping, neighbors: Sequence[MapEntry]) -> int:
    """{table, value} — the value belongs to some column of the table."""
    if mapping.shape == SHAPE_VALUE:
        return sum(
            1
            for _, m in _neighbor_mappings(neighbors, SHAPE_TABLE)
            if _same(m.table, mapping.table)
        )
    if mapping.shape == SHAPE_TABLE:
        return sum(
            1
            for _, m in _neighbor_mappings(neighbors, SHAPE_VALUE)
            if _same(m.table, mapping.table)
        )
    return 0


def _count_type3(mapping: WeightedMapping, neighbors: Sequence[MapEntry]) -> int:
    """{column, value} — the value belongs to exactly that column."""
    if mapping.shape == SHAPE_VALUE:
        return sum(
            1
            for _, m in _neighbor_mappings(neighbors, SHAPE_COLUMN)
            if _same(m.table, mapping.table) and _same(m.column, mapping.column)
        )
    if mapping.shape == SHAPE_COLUMN:
        return sum(
            1
            for _, m in _neighbor_mappings(neighbors, SHAPE_VALUE)
            if _same(m.table, mapping.table) and _same(m.column, mapping.column)
        )
    return 0


def _same(a: Optional[str], b: Optional[str]) -> bool:
    if a is None or b is None:
        return a is b
    return a.casefold() == b.casefold()
