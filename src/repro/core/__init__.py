"""Nebula's core: the paper's primary contribution.

The pipeline follows the paper's stages (Figure 16):

* **Stage 0** — :mod:`repro.core.model`: the annotated database as a
  weighted bipartite graph, with the F_N / F_P quality metrics.
* **Stage 1** — :mod:`repro.core.signature_maps`,
  :mod:`repro.core.context_adjust`, :mod:`repro.core.query_generation`:
  from an annotation's text to weighted keyword-search queries.
* **Stage 2** — :mod:`repro.core.execution`, :mod:`repro.core.focal`,
  :mod:`repro.core.shared_execution`, :mod:`repro.core.acg`,
  :mod:`repro.core.spreading`: executing the queries (full search or
  approximate focal-based spreading) and scoring candidate tuples.
* **Stage 3** — :mod:`repro.core.verification`,
  :mod:`repro.core.assessment`, :mod:`repro.core.bounds`: triaging the
  predictions into auto-accept / expert-verify / auto-reject and tuning
  the bounds.

:class:`repro.core.nebula.Nebula` wires everything together.
"""

from .model import AnnotatedDatabaseModel, Edge, false_negative_ratio, false_positive_ratio
from .signature_maps import ContextMap, MapEntry, WeightedMapping, build_context_map
from .context_adjust import adjust_context_weights, MatchType
from .query_generation import QueryGenerationResult, generate_queries
from .acg import (
    AnnotationsConnectivityGraph,
    HopProfile,
    PersistentHopProfile,
    StabilityTracker,
)
from .execution import IdentifiedTuples, identify_related_tuples
from .focal import apply_focal_adjustment, focal_reward_factor, path_reward_factor
from .spam import SpamGuard, SpamVerdict
from .explain import TaskExplanation, explain_task
from .shared_execution import SharedExecutor
from .spreading import MiniDatabase, spreading_scope
from .verification import Decision, VerificationQueue, VerificationTask
from .assessment import Assessment, assess
from .bounds import BoundsSetting, BoundsChoice
from .nebula import Nebula, DiscoveryReport

__all__ = [
    "AnnotatedDatabaseModel",
    "Edge",
    "false_negative_ratio",
    "false_positive_ratio",
    "ContextMap",
    "MapEntry",
    "WeightedMapping",
    "build_context_map",
    "adjust_context_weights",
    "MatchType",
    "QueryGenerationResult",
    "generate_queries",
    "AnnotationsConnectivityGraph",
    "HopProfile",
    "PersistentHopProfile",
    "StabilityTracker",
    "IdentifiedTuples",
    "identify_related_tuples",
    "apply_focal_adjustment",
    "focal_reward_factor",
    "path_reward_factor",
    "SpamGuard",
    "SpamVerdict",
    "TaskExplanation",
    "explain_task",
    "SharedExecutor",
    "MiniDatabase",
    "spreading_scope",
    "Decision",
    "VerificationQueue",
    "VerificationTask",
    "Assessment",
    "assess",
    "BoundsSetting",
    "BoundsChoice",
    "Nebula",
    "DiscoveryReport",
]
