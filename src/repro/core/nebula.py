"""The Nebula engine facade: Stages 0-3 wired end to end (Figure 16).

:class:`Nebula` sits on top of the passive annotation manager and the
keyword-search engine.  Its lifecycle per new annotation:

* **Stage 0** — store the annotation, establish its focal (the manual
  attachments), update the ACG and the stability tracker;
* **Stage 1** — generate weighted keyword queries from the text;
* **Stage 2** — execute them: full-database search, or — once the ACG is
  stable — the approximate focal-based spreading search over the K-hop
  mini database; apply the focal-based confidence adjustment; optionally
  use the shared multi-query executor;
* **Stage 3** — triage the candidates into auto-accept / pending /
  auto-reject verification tasks.

``analyze`` runs Stages 1-2 only, with no persistence — the probe the
benchmarks and the bounds-tuning algorithm use.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..annotations.commands import CommandProcessor, CommandResult
from ..annotations.engine import AnnotationManager
from ..annotations.store import Annotation
from ..config import NebulaConfig
from ..errors import PipelineStageError
from ..meta.repository import NebulaMeta
from ..observability import (
    NOOP_TRACER,
    SpanLike,
    TIME_BUCKETS,
    JsonlExporter,
    MetricsRegistry,
    RingBufferExporter,
    Tracer,
    get_metrics,
)
from ..perf import (
    AnalysisCache,
    AnnotationRequest,
    ParallelSqlExecutor,
    RequestLike,
    coerce_request,
)
from ..perf.cache import MISS
from ..resilience import (
    EXECUTOR_FALLBACK,
    MINI_DROP_LEAK,
    SPREADING_FALLBACK,
    DeadLetterQueue,
    RetryPolicy,
    Savepoint,
    count_degradation,
    pipeline_stage,
)
from ..resilience.degradation import logger as _resilience_logger
from ..search.engine import KeywordSearchEngine, SearchResult, SearchScope
from ..search.persist import PersistentValueIndex
from ..storage.backends import StorageBackend, as_backend
from ..storage.compat import Connection
from ..types import CellRef, ScoredTuple, TupleRef
from ..versioning import CommitLog
from .acg import (
    AnnotationsConnectivityGraph,
    HopProfile,
    PersistentHopProfile,
    StabilityTracker,
)
from .execution import IdentifiedTuples, identify_related_tuples
from .query_generation import QueryGenerationResult, generate_queries
from .shared_execution import SharedExecutor
from .spam import SpamGuard, SpamVerdict, count_searchable_tuples
from .spreading import select_radius, spreading_scope
from .verification import VerificationQueue, VerificationTask


def _decision_counts(tasks: Sequence[VerificationTask]) -> Dict[str, int]:
    """Triage outcome tally, keyed by the decision value (Figure 16)."""
    counts: Dict[str, int] = {}
    for task in tasks:
        counts[task.decision.value] = counts.get(task.decision.value, 0) + 1
    return counts


@dataclass
class DiscoveryReport:
    """Everything one annotation's pass through the pipeline produced."""

    text: str
    focal: Tuple[TupleRef, ...]
    generation: QueryGenerationResult
    identified: IdentifiedTuples
    #: ``"full"`` or ``"spreading"``.
    mode: str
    #: Radius used by the spreading search (None for full search).
    radius: Optional[int] = None
    #: Number of tuples in the restricted scope (None for full search).
    scope_size: Optional[int] = None
    annotation_id: Optional[int] = None
    tasks: List[VerificationTask] = field(default_factory=list)
    #: Set when the spam guard quarantined the annotation (no triage ran).
    spam_verdict: Optional[SpamVerdict] = None
    #: Graceful-degradation labels: optimizations that failed and fell
    #: back to a simpler technique while producing this report (see
    #: :mod:`repro.resilience.degradation`).  Empty on a clean run.
    degradations: List[str] = field(default_factory=list)
    elapsed: float = 0.0
    #: The finished trace tree of this pass (root-span dict), populated
    #: only when tracing is enabled on the engine.
    trace: Optional[Dict] = None
    #: Metrics-registry snapshot taken right after this pass, populated
    #: only when tracing is enabled (the default hot path stays free).
    metrics: Optional[Dict] = None
    #: Correlation id of the service submission that produced this
    #: report (``req-<pid>-<seq>``), stamped by the annotation service;
    #: None for direct (non-service) pipeline calls.
    request_id: Optional[str] = None
    #: The ``_nebula_commits`` row this ingestion's writes landed under
    #: (``ingest``/``batch``/``replay``); the time-travel pin at which
    #: ``as_of`` reads reproduce this report's post-state exactly.  None
    #: only for :meth:`Nebula.analyze` dry runs, which persist nothing.
    commit_id: Optional[int] = None

    @property
    def candidates(self) -> List[ScoredTuple]:
        return self.identified.tuples

    @property
    def query_count(self) -> int:
        return len(self.generation.queries)


class Nebula:
    """The proactive annotation-management engine."""

    def __init__(
        self,
        connection: Union[Connection, StorageBackend],
        meta: NebulaMeta,
        config: Optional[NebulaConfig] = None,
        aliases: Optional[Dict[str, Tuple[str, Optional[str]]]] = None,
        build_acg: bool = True,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
        backend: Optional[StorageBackend] = None,
    ) -> None:
        self.meta = meta
        self.config = config or NebulaConfig()
        #: The engine's storage backend.  A raw driver connection (the
        #: historical construction) is wrapped in the compatibility
        #: adapter; the engine then owns the adapter but never the
        #: caller's connection.  A backend passed explicitly stays owned
        #: by its creator.
        source: object = backend if backend is not None else connection
        self.backend = as_backend(source, pool_size=self.config.pool_size)
        self._owns_backend = self.backend is not source
        self.dialect = self.backend.dialect
        self.connection = self.backend.primary
        connection = self.connection
        self.retry = RetryPolicy(
            max_attempts=self.config.retry_max_attempts,
            base_delay=self.config.retry_base_delay,
            max_delay=self.config.retry_max_delay,
        )
        self._faults = self.config.fault_injector
        #: Metrics registry shared with every sub-component (the process
        #: default unless injected — tests inject a fresh one).
        self.metrics = metrics if metrics is not None else get_metrics()
        #: Ring-buffer exporter backing ``trace --last N`` (None when the
        #: tracer was injected or tracing is disabled).
        self.trace_buffer: Optional[RingBufferExporter] = None
        if tracer is not None:
            self.tracer = tracer
        elif self.config.tracing:
            self.trace_buffer = RingBufferExporter(self.config.trace_buffer_size)
            exporters: List = [self.trace_buffer]
            if self.config.trace_path:
                exporters.append(JsonlExporter(self.config.trace_path))
            self.tracer = Tracer(exporters)
        else:
            self.tracer = NOOP_TRACER
        self._m_ingested = self.metrics.counter("nebula_annotations_ingested_total")
        self._m_quarantined = self.metrics.counter(
            "nebula_annotations_quarantined_total"
        )
        self._m_insert_seconds = self.metrics.histogram(
            "nebula_insert_seconds", TIME_BUCKETS
        )
        self._m_analyze_seconds = self.metrics.histogram(
            "nebula_analyze_seconds", TIME_BUCKETS
        )
        self._m_acg_edges = self.metrics.gauge("nebula_acg_edges")
        self.manager = AnnotationManager(connection, retry=self.retry)
        self.dead_letters = DeadLetterQueue(connection, retry=self.retry)
        #: Generation-versioned memo table for keyword analysis; size 0
        #: disables it (every lookup misses).
        self.analysis_cache = AnalysisCache(
            self.config.analysis_cache_size, metrics=self.metrics
        )
        #: Cold-start accounting of the search index: how long the open
        #: took and whether a persisted image was adopted ("loaded"),
        #: rebuilt + persisted ("rebuilt"), or built in memory ("memory").
        self.index_cold_start_seconds = 0.0
        self.index_source = "memory"
        persisted_index: Optional[PersistentValueIndex] = None
        if self.config.persist_index:
            index_started = time.perf_counter()
            persisted_index, self.index_source = PersistentValueIndex.open(
                connection,
                self._searchable_columns(),
                page_cache_size=self.config.index_page_cache_size,
                metrics=self.metrics,
                tracer=self.tracer,
            )
            self.index_cold_start_seconds = time.perf_counter() - index_started
            self.metrics.counter(
                "nebula_index_opens_total", {"source": self.index_source}
            ).inc()
            self.metrics.gauge("nebula_index_cold_start_seconds").set(
                self.index_cold_start_seconds
            )
        engine_started = time.perf_counter()
        self.engine = KeywordSearchEngine(
            connection,
            searchable_columns=self._searchable_columns(),
            aliases=aliases,
            lexicon=meta.lexicon,
            retry=self.retry,
            metrics=self.metrics,
            analysis_cache=self.analysis_cache,
            index=persisted_index,
        )
        if persisted_index is None:
            # The in-memory index was rebuilt inside the engine
            # constructor; account it as this open's cold-start cost.
            self.index_cold_start_seconds = time.perf_counter() - engine_started
            self.metrics.gauge("nebula_index_cold_start_seconds").set(
                self.index_cold_start_seconds
            )
        self.acg = (
            AnnotationsConnectivityGraph.build_from_manager(self.manager)
            if build_acg
            else AnnotationsConnectivityGraph()
        )
        self.profile: HopProfile = (
            PersistentHopProfile(connection)
            if self.config.persist_index
            else HopProfile()
        )
        self.stability = StabilityTracker(
            batch_size=self.config.batch_size, mu=self.config.stability_mu
        )
        self.queue = VerificationQueue(self.manager, acg=self.acg, profile=self.profile)
        self.commands = CommandProcessor(self.manager, resolver=self.queue)
        #: Parallel Stage-2 worker pool; stays None when the config asks
        #: for <= 1 worker or the backend cannot hand out concurrent
        #: reader connections (a private in-memory database).
        self.parallel: Optional[ParallelSqlExecutor] = None
        if self.config.executor_workers > 1:
            candidate = ParallelSqlExecutor(
                self.backend, self.config.executor_workers, retry=self.retry
            )
            if candidate.available:
                self.parallel = candidate
            else:
                candidate.close()
        self.executor = SharedExecutor(
            self.engine, parallel=self.parallel, dialect=self.dialect
        )
        self.spam_guard = SpamGuard()
        self._searchable_tuple_count = count_searchable_tuples(
            connection, [table for table, _ in self._searchable_columns()]
        )

    def ensure_index_fresh(self) -> bool:
        """Revalidate the persisted search index against the live data.

        Returns True when the image was stale (rows loaded behind the
        index's back, deletions, a changed searchable-column set) and a
        rebuild was persisted and committed.  A no-op for in-memory
        indexes.  The service's startup recovery calls this before
        accepting traffic so a recovered process cannot serve search
        results from a stale index.
        """
        index = self.engine.index
        if not isinstance(index, PersistentValueIndex):
            return False
        rebuilt = index.refresh(self._searchable_columns())
        if rebuilt:
            self.index_source = "rebuilt"
            self.metrics.counter("nebula_index_refreshes_total").inc()
        return rebuilt

    def searchable_columns(self) -> List[Tuple[str, str]]:
        """The (table, column) pairs the search index covers.

        ``repro index`` builds/verifies the persisted index over exactly
        this set.
        """
        return self._searchable_columns()

    def _searchable_columns(self) -> List[Tuple[str, str]]:
        columns: List[Tuple[str, str]] = []
        for concept in self.meta.concepts:
            for column in sorted(
                concept.referencing_columns, key=lambda c: (c.table, c.column)
            ):
                pair = (column.table, column.column)
                if pair not in columns:
                    columns.append(pair)
        return columns

    # ------------------------------------------------------------------
    # Stages 1-2 (no persistence)
    # ------------------------------------------------------------------

    def acg_as_of(self, as_of: int) -> AnnotationsConnectivityGraph:
        """The ACG as it stood right after commit ``as_of`` (memoized).

        Rebuilt from the time-travel read of the true attachments and
        cached in the analysis cache keyed by the commit id — pinned
        history is immutable, so an entry can never go stale.
        """
        cached = self.analysis_cache.get("acg.as_of", as_of, as_of)
        if cached is not MISS:
            assert isinstance(cached, AnnotationsConnectivityGraph)
            return cached
        graph = AnnotationsConnectivityGraph.build_from_manager(
            self.manager, as_of=as_of
        )
        self.analysis_cache.put("acg.as_of", as_of, as_of, graph)
        return graph

    def analyze(
        self,
        text: str,
        focal: Sequence[TupleRef] = (),
        use_spreading: Optional[bool] = None,
        radius: Optional[int] = None,
        shared: Optional[bool] = None,
        as_of: Optional[int] = None,
    ) -> DiscoveryReport:
        """Generate queries and identify candidate tuples for ``text``.

        ``use_spreading`` defaults to the ACG stability flag (the paper's
        trigger); ``radius`` defaults to the profile-guided selection;
        ``shared`` defaults to the config's shared-execution switch.

        ``as_of`` replays the analysis against the annotation graph as it
        stood at that commit: focal adjustment and the spreading scope
        use the historical ACG instead of the live one (the user data
        tables themselves are not versioned).  This is the
        ``repro annotate --as-of`` path — "what would Nebula have
        predicted back then?".

        With tracing enabled the pass is one ``analyze`` span holding the
        ``stage1.*`` generation spans and the ``stage2.execute`` span; a
        standalone call exports it as its own trace, a call from
        :meth:`insert_annotation` nests it under that trace's root.
        """
        with self.tracer.span("analyze") as span:
            report = self._analyze(
                text, tuple(focal), use_spreading, radius, shared, span, as_of
            )
        self._m_analyze_seconds.observe(report.elapsed)
        self._attach_trace(report)
        return report

    def _analyze(
        self,
        text: str,
        focal: Tuple[TupleRef, ...],
        use_spreading: Optional[bool],
        radius: Optional[int],
        shared: Optional[bool],
        span: SpanLike,
        as_of: Optional[int] = None,
    ) -> DiscoveryReport:
        started = time.perf_counter()
        generation = generate_queries(text, self.meta, self.config, tracer=self.tracer)
        degradations: List[str] = list(generation.degradations)
        acg = self.acg if as_of is None else self.acg_as_of(as_of)

        spreading = (
            use_spreading if use_spreading is not None else self.stability.stable
        )
        spreading = spreading and bool(focal)
        scope: Optional[SearchScope] = None
        mini = None
        chosen_radius: Optional[int] = None
        with self.tracer.span("stage2.execute") as execute_span:
            if spreading:
                try:
                    if self._faults is not None:
                        self._faults.check("spreading.scope")
                    # An explicit radius of 0 means "search the focal only"
                    # and must not fall through to the profile selection.
                    chosen_radius = (
                        radius
                        if radius is not None
                        else select_radius(
                            self.profile,
                            self.config.target_recall,
                            self.config.spreading_hops,
                        )
                    )
                    scope, mini = spreading_scope(
                        self.connection, acg, focal, chosen_radius,
                        retry=self.retry,
                    )
                except Exception as error:
                    # Degradation ladder: a broken scope construction falls
                    # back to the exact whole-database search.
                    _resilience_logger.warning(
                        "spreading scope failed, using full search: %s", error
                    )
                    degradations.append(SPREADING_FALLBACK)
                    count_degradation(SPREADING_FALLBACK)
                    spreading = False
                    scope, mini, chosen_radius = None, None, None

            use_shared = shared if shared is not None else self.config.shared_execution

            def identify(executor: Optional[SharedExecutor]) -> IdentifiedTuples:
                return identify_related_tuples(
                    generation.queries,
                    self.engine,
                    scope=scope,
                    acg=acg if self.config.focal_adjustment else None,
                    focal=focal,
                    executor=executor,
                    focal_mode=self.config.focal_mode,
                    focal_max_hops=self.config.focal_max_hops,
                )

            try:
                if use_shared:
                    try:
                        if self._faults is not None:
                            self._faults.check("executor.run")
                        identified = identify(self.executor)
                    except Exception as error:
                        # Degradation ladder: shared execution is an
                        # optimization — re-run each query sequentially.
                        _resilience_logger.warning(
                            "shared executor failed, executing sequentially: %s",
                            error,
                        )
                        degradations.append(EXECUTOR_FALLBACK)
                        count_degradation(EXECUTOR_FALLBACK)
                        identified = identify(None)
                else:
                    identified = identify(None)
            finally:
                if mini is not None:
                    try:
                        mini.drop()
                    except Exception as error:
                        # A failed cleanup must not mask the pipeline outcome
                        # (nor any in-flight exception); the temp tables leak
                        # until the connection closes.
                        _resilience_logger.warning(
                            "failed to drop spreading mini-database (leaked): %s",
                            error,
                        )
                        degradations.append(MINI_DROP_LEAK)
                        count_degradation(MINI_DROP_LEAK)
            execute_span.set_attribute("mode", "spreading" if spreading else "full")
            execute_span.set_attribute("radius", chosen_radius)
            execute_span.set_attribute(
                "scope_size", scope.size() if scope is not None else None
            )
            execute_span.set_attribute("raw_tuples", identified.raw_tuple_count)
            execute_span.set_attribute("candidates", len(identified.tuples))
        span.set_attribute("query_count", len(generation.queries))
        span.set_attribute("candidates", len(identified.tuples))
        if degradations:
            span.set_attribute("degradations", list(degradations))
        return DiscoveryReport(
            text=text,
            focal=focal,
            generation=generation,
            identified=identified,
            mode="spreading" if spreading else "full",
            radius=chosen_radius,
            scope_size=scope.size() if scope is not None else None,
            degradations=degradations,
            elapsed=time.perf_counter() - started,
        )

    def _attach_trace(self, report: DiscoveryReport) -> None:
        """Surface the finished trace + a metrics snapshot on the report.

        Only a *root* span produces a trace (a nested ``analyze`` inside
        ``insert_annotation`` is exported with that trace instead), and
        only when tracing is enabled — the no-op tracer never has one.
        """
        if self.tracer.enabled and self.tracer.depth == 0:
            report.trace = self.tracer.last_trace
            report.metrics = self.metrics.snapshot()

    # ------------------------------------------------------------------
    # Full pipeline (Stages 0-3, persisted)
    # ------------------------------------------------------------------

    def insert_annotation(
        self,
        text: str,
        attach_to: Sequence[TupleRef] = (),
        author: Optional[str] = None,
        use_spreading: Optional[bool] = None,
        radius: Optional[int] = None,
        capture_dead_letter: Optional[bool] = None,
        request_id: Optional[str] = None,
        replay_of: Optional[int] = None,
    ) -> DiscoveryReport:
        """Insert a new annotation and proactively discover its missing
        attachments; predictions are triaged into verification tasks.

        Every write of the pass — annotation row, focal edges, predicted
        and auto-accepted attachments — lands under one ``ingest`` commit
        in the append-only log (``replay`` when ``replay_of`` names the
        dead letter being replayed), carrying ``author`` and
        ``request_id`` provenance; its id is stamped onto the report as
        :attr:`DiscoveryReport.commit_id`.

        The whole pipeline runs inside a SQLite SAVEPOINT: a Stage 1-3
        failure that cannot be degraded around rolls the Stage 0 writes
        (annotation row, focal attachments, ACG edges) back atomically,
        captures the inputs in the dead-letter queue (unless
        ``capture_dead_letter`` is False), and raises
        :class:`~repro.errors.PipelineStageError`.

        With tracing enabled the pass becomes one exported trace rooted
        at ``insert_annotation`` with ``stage0.store``, ``analyze``
        (holding ``stage1.*`` and ``stage2.execute``), and
        ``stage3.curate`` children; the finished tree plus a metrics
        snapshot land on the returned report.
        """
        with self.tracer.span("insert_annotation") as span:
            report = self._insert_annotation(
                text, tuple(attach_to), author, use_spreading, radius,
                capture_dead_letter, span, request_id, replay_of,
            )
        self._m_insert_seconds.observe(report.elapsed)
        self._m_acg_edges.set(self.acg.edge_count)
        self._attach_trace(report)
        return report

    def _insert_annotation(
        self,
        text: str,
        focal: Tuple[TupleRef, ...],
        author: Optional[str],
        use_spreading: Optional[bool],
        radius: Optional[int],
        capture_dead_letter: Optional[bool],
        span: SpanLike,
        request_id: Optional[str] = None,
        replay_of: Optional[int] = None,
    ) -> DiscoveryReport:
        started = time.perf_counter()
        capture = (
            self.config.dead_letters
            if capture_dead_letter is None
            else capture_dead_letter
        )
        annotation = None
        profile_snapshot = (dict(self.profile.buckets), self.profile.unreachable)
        savepoint = Savepoint(
            self.connection, "nebula_insert", dialect=self.dialect
        ).begin()
        # The commit opens *inside* the SAVEPOINT: a rollback removes the
        # commit row and its history rows together.
        commit_id = self.commit_log.begin(
            "ingest" if replay_of is None else "replay",
            author=author,
            request_id=request_id,
            note=None if replay_of is None else f"dead-letter:{replay_of}",
        )
        try:
            # Stage 0 — persist the annotation + focal, update the ACG.
            with self.tracer.span("stage0.store") as store_span:
                with pipeline_stage("store.add", self._faults):
                    annotation = self.manager.add_annotation(
                        text,
                        attach_to=[CellRef(r.table, r.rowid) for r in focal],
                        author=author,
                    )
                edges_before = self.acg.edge_count
                new_edges = 0
                for ref in focal:
                    new_edges += self.acg.add_attachment(
                        annotation.annotation_id, ref
                    )
                store_span.set_attribute("annotation_id", annotation.annotation_id)
                store_span.set_attribute("focal", len(focal))
                store_span.set_attribute("new_edges", new_edges)

            # Stages 1-2 — optimization failures degrade inside analyze;
            # anything that escapes it is a hard Stage 1-2 failure.
            with pipeline_stage("pipeline.analyze"):
                report = self.analyze(
                    text, focal=focal, use_spreading=use_spreading, radius=radius
                )
            report.annotation_id = annotation.annotation_id
            span.set_attribute("annotation_id", annotation.annotation_id)
            span.set_attribute("query_count", report.query_count)
            span.set_attribute("candidates", len(report.candidates))
            verdict = self.spam_guard.screen(
                report.candidates, self._searchable_tuple_count
            )
            if verdict.is_spam:
                # Footnote-1 guard: a spam-like annotation is quarantined —
                # its focal stays, but no predicted attachments are created.
                report.spam_verdict = verdict
                span.set_attribute("spam", verdict.reason)
                savepoint.release()
                self.commit_log.finish()
                report.commit_id = commit_id
                self.stability.record_annotation(
                    attachments=len(focal), new_edges=new_edges
                )
                self._m_quarantined.inc()
                report.elapsed = time.perf_counter() - started
                return report

            # Stage 3 — triage the candidates into verification tasks.
            with self.tracer.span("stage3.curate") as curate_span:
                with pipeline_stage("queue.triage", self._faults):
                    report.tasks = self.queue.triage(
                        annotation.annotation_id,
                        report.candidates,
                        self.config.beta_lower,
                        self.config.beta_upper,
                        focal=focal,
                    )
                curate_span.set_attribute("tasks", len(report.tasks))
                for decision, count in _decision_counts(report.tasks).items():
                    curate_span.set_attribute(decision, count)
        except Exception as error:
            self._abort_insert(savepoint, annotation, profile_snapshot)
            failure = (
                error
                if isinstance(error, PipelineStageError)
                else PipelineStageError("pipeline", error)
            )
            if capture:
                letter = self.dead_letters.capture(
                    text, focal, author, failure.stage, repr(failure.original)
                )
                failure.dead_letter_id = letter.letter_id
            if failure is not error:
                raise failure from error
            raise
        savepoint.release()
        self.commit_log.finish()
        report.commit_id = commit_id
        accepted = sum(1 for t in report.tasks if t.decision.is_accepted)
        # ACG delta across the whole pipeline: focal edges + edges from
        # auto-accepted attachments (added during triage).
        total_new_edges = self.acg.edge_count - edges_before
        self.stability.record_annotation(
            attachments=len(focal) + accepted, new_edges=total_new_edges
        )
        self._m_ingested.inc()
        for decision, count in _decision_counts(report.tasks).items():
            self.metrics.counter(
                "nebula_triage_decisions_total", {"decision": decision}
            ).inc(count)
        span.set_attribute("tasks", len(report.tasks))
        span.set_attribute("acg_edge_delta", total_new_edges)
        report.elapsed = time.perf_counter() - started
        return report

    def _abort_insert(
        self,
        savepoint: Savepoint,
        annotation: Optional[Annotation],
        profile_snapshot: Tuple[Dict[int, int], int],
    ) -> None:
        """Undo a failed ingestion completely.

        The SAVEPOINT rollback restores the database (annotation row,
        attachments, verification tasks); the in-memory ACG, hop profile,
        and triage bookkeeping are restored to match.  The stability
        tracker is only updated on success, so it needs no restore.
        """
        savepoint.rollback()
        self.commit_log.abandon()
        if annotation is not None:
            self.acg.remove_annotation(annotation.annotation_id)
            self.queue.forget(annotation.annotation_id)
        buckets, unreachable = profile_snapshot
        self.profile.buckets = dict(buckets)
        self.profile.unreachable = unreachable

    # ------------------------------------------------------------------
    # Batched ingestion (Stages 0-3 for many annotations, one transaction)
    # ------------------------------------------------------------------

    def insert_annotations(
        self,
        batch: Sequence[RequestLike],
        use_spreading: Optional[bool] = None,
        radius: Optional[int] = None,
        capture_dead_letter: Optional[bool] = None,
        request_id: Optional[str] = None,
    ) -> List[DiscoveryReport]:
        """Ingest a batch of annotations with cross-annotation sharing.

        Produces, per request, exactly the report and database state
        :meth:`insert_annotation` would — in batch order — but much
        faster for non-trivial batches:

        * **Stage 0** bulk-writes every annotation row and focal edge with
          two ``executemany`` statements;
        * **Stage 2** pools the SQL of *all* full-search members through
          one shared dedup/batch pass (``SharedExecutor.execute_groups``),
          so annotations mentioning the same values probe the database
          once — sharing the single-annotation path cannot reach;
        * the ACG-dependent steps (focal edges, confidence adjustment,
          spam screen, triage) still run per annotation in order, which is
          what makes the per-request results identical to sequential
          ingestion.

        Differences from a loop over :meth:`insert_annotation`, by design:

        * the spreading decision is **pinned** at batch start (a mid-batch
          stability flip cannot change execution strategy); members with a
          focal then use the per-annotation spreading path, without
          cross-annotation sharing;
        * the whole batch is one SAVEPOINT: any member's hard failure
          rolls back every member, captures one dead letter *per request*
          (so :meth:`reprocess_dead_letters` replays the batch), and
          raises :class:`~repro.errors.PipelineStageError`;
        * batch ingestion always uses shared execution for its pooled
          members, regardless of ``config.shared_execution`` (answers are
          unaffected; that flag keeps its meaning for the single path).
        """
        requests = [coerce_request(item) for item in batch]
        if not requests:
            return []
        with self.tracer.span("insert_annotations") as span:
            reports = self._insert_annotations(
                requests, use_spreading, radius, capture_dead_letter, span,
                request_id,
            )
        self._m_acg_edges.set(self.acg.edge_count)
        for report in reports:
            self._attach_trace(report)
        return reports

    def _insert_annotations(
        self,
        requests: Sequence["AnnotationRequest"],
        use_spreading: Optional[bool],
        radius: Optional[int],
        capture_dead_letter: Optional[bool],
        span: SpanLike,
        request_id: Optional[str] = None,
    ) -> List[DiscoveryReport]:
        started = time.perf_counter()
        capture = (
            self.config.dead_letters
            if capture_dead_letter is None
            else capture_dead_letter
        )
        profile_snapshot = (dict(self.profile.buckets), self.profile.unreachable)
        # Pin the spreading decision for the whole batch; per member it
        # still requires a non-empty focal, exactly as in analyze().
        pinned = use_spreading if use_spreading is not None else self.stability.stable
        spreading_flags = [pinned and bool(r.focal) for r in requests]
        savepoint = Savepoint(
            self.connection, "nebula_batch", dialect=self.dialect
        ).begin()
        # One commit covers the whole batch — it is one SAVEPOINT and
        # rolls back as a unit, so it is one log entry too.
        commit_id = self.commit_log.begin(
            "batch",
            request_id=request_id,
            note=f"batch of {len(requests)}",
        )
        inserted: List[Annotation] = []
        reports: List[DiscoveryReport] = []
        #: Per member: (attachments, new_edges, quarantined) — stability
        #: and counter updates are deferred until the batch commits, so a
        #: rollback leaves the tracker and metrics untouched.
        outcomes: List[Tuple[int, int, bool]] = []
        decision_totals: Dict[str, int] = {}
        try:
            # Stage 0 — bulk-persist annotations + focal edges.
            with self.tracer.span("stage0.bulk_store") as store_span:
                with pipeline_stage("store.add", self._faults):
                    inserted = self.manager.bulk_add_annotations(
                        [
                            (
                                request.text,
                                [CellRef(ref.table, ref.rowid) for ref in request.focal],
                                request.author,
                            )
                            for request in requests
                        ]
                    )
                store_span.set_attribute("batch_size", len(inserted))

            # Stage 1 for the pooled (full-search) members.  Query
            # generation depends only on the text, the meta-repository,
            # and the config — never on the ACG — so it can run up front.
            generations: Dict[int, QueryGenerationResult] = {}
            for position, request in enumerate(requests):
                if not spreading_flags[position]:
                    generations[position] = generate_queries(
                        request.text, self.meta, self.config, tracer=self.tracer
                    )

            # Stage 2 — one shared pass over every pooled member's SQL.
            # The statements read only user data tables (Stage 0 touched
            # only ``_nebula_*`` tables), so executing them before any
            # ACG mutation cannot change any member's answer set.
            shared_failed = False
            group_results: Dict[int, Dict[str, SearchResult]] = {}
            positions = sorted(generations)
            if positions:
                with self.tracer.span("stage2.batch_execute") as execute_span:
                    try:
                        if self._faults is not None:
                            self._faults.check("executor.run")
                        grouped = self.executor.execute_groups(
                            [generations[p].queries for p in positions]
                        )
                        group_results = dict(zip(positions, grouped))
                    except Exception as error:
                        # Degradation ladder: cross-annotation sharing is
                        # an optimization — fall back to per-member
                        # sequential execution below.
                        _resilience_logger.warning(
                            "batched shared execution failed, "
                            "executing members sequentially: %s",
                            error,
                        )
                        shared_failed = True
                        count_degradation(EXECUTOR_FALLBACK)
                    execute_span.set_attribute("groups", len(positions))
                    execute_span.set_attribute(
                        "hit_ratio", self.executor.last_stats.hit_ratio
                    )

            # Stages 2'-3, per member in batch order: ACG focal edges,
            # grouping + focal adjustment, spam screen, triage.
            for position, (request, annotation) in enumerate(zip(requests, inserted)):
                report, outcome = self._finish_batch_member(
                    request,
                    annotation,
                    generations.get(position),
                    group_results.get(position),
                    spreading=spreading_flags[position],
                    shared_failed=shared_failed,
                    radius=radius,
                    decision_totals=decision_totals,
                )
                reports.append(report)
                outcomes.append(outcome)
        except Exception as error:
            self._abort_batch(savepoint, inserted, profile_snapshot)
            failure = (
                error
                if isinstance(error, PipelineStageError)
                else PipelineStageError("pipeline", error)
            )
            if capture:
                # One letter per request: the failed member is not
                # isolatable after a whole-batch rollback, and replaying
                # every letter reconstructs the batch exactly.
                for request in requests:
                    letter = self.dead_letters.capture(
                        request.text,
                        request.focal,
                        request.author,
                        failure.stage,
                        repr(failure.original),
                    )
                    if failure.dead_letter_id is None:
                        failure.dead_letter_id = letter.letter_id
            if failure is not error:
                raise failure from error
            raise
        savepoint.release()
        self.commit_log.finish()
        for report in reports:
            report.commit_id = commit_id
        for attachments, new_edges, quarantined in outcomes:
            self.stability.record_annotation(
                attachments=attachments, new_edges=new_edges
            )
            if quarantined:
                self._m_quarantined.inc()
            else:
                self._m_ingested.inc()
        for decision, count in decision_totals.items():
            self.metrics.counter(
                "nebula_triage_decisions_total", {"decision": decision}
            ).inc(count)
        elapsed = time.perf_counter() - started
        self._m_insert_seconds.observe(elapsed)
        span.set_attribute("batch_size", len(requests))
        span.set_attribute("quarantined", sum(1 for o in outcomes if o[2]))
        span.set_attribute("elapsed", elapsed)
        return reports

    def _finish_batch_member(
        self,
        request: "AnnotationRequest",
        annotation: Annotation,
        generation: Optional[QueryGenerationResult],
        per_query: Optional[Dict[str, SearchResult]],
        spreading: bool,
        shared_failed: bool,
        radius: Optional[int],
        decision_totals: Dict[str, int],
    ) -> Tuple[DiscoveryReport, Tuple[int, int, bool]]:
        """Run the ACG-order-dependent tail of the pipeline for one member."""
        member_started = time.perf_counter()
        focal = request.focal
        edges_before = self.acg.edge_count
        focal_new_edges = 0
        for ref in focal:
            focal_new_edges += self.acg.add_attachment(annotation.annotation_id, ref)

        if spreading:
            # Spreading members search their K-hop mini database — scoped
            # per member, so nothing to share across the batch.
            with pipeline_stage("pipeline.analyze"):
                report = self.analyze(
                    request.text, focal=focal, use_spreading=True, radius=radius
                )
        else:
            assert generation is not None
            degradations = list(generation.degradations)
            if shared_failed or per_query is None:
                if shared_failed:
                    degradations.append(EXECUTOR_FALLBACK)
                identified = identify_related_tuples(
                    generation.queries,
                    self.engine,
                    acg=self.acg if self.config.focal_adjustment else None,
                    focal=focal,
                    focal_mode=self.config.focal_mode,
                    focal_max_hops=self.config.focal_max_hops,
                )
            else:
                identified = identify_related_tuples(
                    generation.queries,
                    self.engine,
                    acg=self.acg if self.config.focal_adjustment else None,
                    focal=focal,
                    focal_mode=self.config.focal_mode,
                    focal_max_hops=self.config.focal_max_hops,
                    precomputed=per_query,
                )
            report = DiscoveryReport(
                text=request.text,
                focal=focal,
                generation=generation,
                identified=identified,
                mode="full",
                degradations=degradations,
            )
        report.annotation_id = annotation.annotation_id

        verdict = self.spam_guard.screen(
            report.candidates, self._searchable_tuple_count
        )
        if verdict.is_spam:
            report.spam_verdict = verdict
            report.elapsed = time.perf_counter() - member_started
            return report, (len(focal), focal_new_edges, True)

        with self.tracer.span("stage3.curate") as curate_span:
            with pipeline_stage("queue.triage", self._faults):
                report.tasks = self.queue.triage(
                    annotation.annotation_id,
                    report.candidates,
                    self.config.beta_lower,
                    self.config.beta_upper,
                    focal=focal,
                )
            curate_span.set_attribute("tasks", len(report.tasks))
            for decision, count in _decision_counts(report.tasks).items():
                curate_span.set_attribute(decision, count)
        accepted = sum(1 for t in report.tasks if t.decision.is_accepted)
        for decision, count in _decision_counts(report.tasks).items():
            decision_totals[decision] = decision_totals.get(decision, 0) + count
        report.elapsed = time.perf_counter() - member_started
        return report, (
            len(focal) + accepted,
            self.acg.edge_count - edges_before,
            False,
        )

    def _abort_batch(
        self,
        savepoint: Savepoint,
        inserted: Sequence[Annotation],
        profile_snapshot: Tuple[Dict[int, int], int],
    ) -> None:
        """Undo a failed batch completely (mirror of :meth:`_abort_insert`)."""
        savepoint.rollback()
        self.commit_log.abandon()
        for annotation in inserted:
            self.acg.remove_annotation(annotation.annotation_id)
            self.queue.forget(annotation.annotation_id)
        buckets, unreachable = profile_snapshot
        self.profile.buckets = dict(buckets)
        self.profile.unreachable = unreachable

    def close(self) -> None:
        """Release the parallel Stage-2 worker pool, plus the internally
        created compatibility adapter when the engine was constructed from
        a raw connection (the caller's connection itself stays open — the
        historical ownership contract).  A backend passed in explicitly is
        left to its creator."""
        if self.parallel is not None:
            self.parallel.close()
        if self._owns_backend:
            self.backend.close()

    def reprocess_dead_letters(
        self, limit: Optional[int] = None
    ) -> List[DiscoveryReport]:
        """Drain the dead-letter queue by re-running the full pipeline.

        Each pending letter is replayed through :meth:`insert_annotation`
        with its captured text / focal / author; a successful replay
        resolves the letter, a failed one bumps its attempt counter and
        leaves it pending (the replay never captures a second letter).
        Returns the reports of the successful replays, in letter order.

        Replays are **idempotent under concurrent or repeated
        invocation**: a letter is first *claimed* with an atomic
        compare-and-set (:meth:`~repro.resilience.DeadLetterQueue.claim`)
        and skipped when another replayer already holds it, so one row
        can never be ingested twice.  Successful replays count into
        ``nebula_dead_letter_replayed_total``.
        """
        reports: List[DiscoveryReport] = []
        letters = self.dead_letters.pending(include_claimed=False)
        if limit is not None:
            letters = letters[:limit]
        for letter in letters:
            if not self.dead_letters.claim(letter.letter_id):
                continue
            try:
                report = self.insert_annotation(
                    letter.content,
                    attach_to=letter.focal,
                    author=letter.author,
                    capture_dead_letter=False,
                    replay_of=letter.letter_id,
                )
            except PipelineStageError as error:
                self.dead_letters.record_attempt(
                    letter.letter_id, repr(error.original)
                )
                continue
            # Stamp the replay commit onto the resolved letter: the
            # letter row names the exact log entry its re-ingestion
            # produced, and the commit's note names the letter back.
            self.dead_letters.mark_resolved(
                letter.letter_id, commit_id=report.commit_id
            )
            self.metrics.counter("nebula_dead_letter_replayed_total").inc()
            reports.append(report)
        return reports

    # ------------------------------------------------------------------
    # Versioning
    # ------------------------------------------------------------------

    @property
    def commit_log(self) -> "CommitLog":
        """The append-only commit log every write of this engine joins."""
        return self.manager.store.versioning

    def head_commit(self) -> Optional[int]:
        """The newest commit id — the pin for snapshot-consistent reads."""
        return self.commit_log.head()

    # ------------------------------------------------------------------
    # Stage-3 passthroughs
    # ------------------------------------------------------------------

    def verify_attachment(self, task_id: int) -> VerificationTask:
        return self.queue.verify(task_id)

    def reject_attachment(self, task_id: int) -> VerificationTask:
        return self.queue.reject(task_id)

    def pending_tasks(self, annotation_id: Optional[int] = None) -> List[VerificationTask]:
        return self.queue.pending(annotation_id)

    def execute_command(self, statement: str) -> CommandResult:
        """Run one extended-SQL statement (ADD ANNOTATION / VERIFY / ...)."""
        return self.commands.execute(statement)
