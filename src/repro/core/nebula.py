"""The Nebula engine facade: Stages 0-3 wired end to end (Figure 16).

:class:`Nebula` sits on top of the passive annotation manager and the
keyword-search engine.  Its lifecycle per new annotation:

* **Stage 0** — store the annotation, establish its focal (the manual
  attachments), update the ACG and the stability tracker;
* **Stage 1** — generate weighted keyword queries from the text;
* **Stage 2** — execute them: full-database search, or — once the ACG is
  stable — the approximate focal-based spreading search over the K-hop
  mini database; apply the focal-based confidence adjustment; optionally
  use the shared multi-query executor;
* **Stage 3** — triage the candidates into auto-accept / pending /
  auto-reject verification tasks.

``analyze`` runs Stages 1-2 only, with no persistence — the probe the
benchmarks and the bounds-tuning algorithm use.
"""

from __future__ import annotations

import sqlite3
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..annotations.commands import CommandProcessor, CommandResult
from ..annotations.engine import AnnotationManager
from ..config import NebulaConfig
from ..meta.repository import NebulaMeta
from ..search.engine import KeywordSearchEngine, SearchScope
from ..types import CellRef, ScoredTuple, TupleRef
from .acg import AnnotationsConnectivityGraph, HopProfile, StabilityTracker
from .execution import IdentifiedTuples, identify_related_tuples
from .query_generation import QueryGenerationResult, generate_queries
from .shared_execution import SharedExecutor
from .spam import SpamGuard, SpamVerdict, count_searchable_tuples
from .spreading import select_radius, spreading_scope
from .verification import VerificationQueue, VerificationTask


@dataclass
class DiscoveryReport:
    """Everything one annotation's pass through the pipeline produced."""

    text: str
    focal: Tuple[TupleRef, ...]
    generation: QueryGenerationResult
    identified: IdentifiedTuples
    #: ``"full"`` or ``"spreading"``.
    mode: str
    #: Radius used by the spreading search (None for full search).
    radius: Optional[int] = None
    #: Number of tuples in the restricted scope (None for full search).
    scope_size: Optional[int] = None
    annotation_id: Optional[int] = None
    tasks: List[VerificationTask] = field(default_factory=list)
    #: Set when the spam guard quarantined the annotation (no triage ran).
    spam_verdict: Optional[SpamVerdict] = None
    elapsed: float = 0.0

    @property
    def candidates(self) -> List[ScoredTuple]:
        return self.identified.tuples

    @property
    def query_count(self) -> int:
        return len(self.generation.queries)


class Nebula:
    """The proactive annotation-management engine."""

    def __init__(
        self,
        connection: sqlite3.Connection,
        meta: NebulaMeta,
        config: Optional[NebulaConfig] = None,
        aliases: Optional[Dict[str, Tuple[str, Optional[str]]]] = None,
        build_acg: bool = True,
    ) -> None:
        self.connection = connection
        self.meta = meta
        self.config = config or NebulaConfig()
        self.manager = AnnotationManager(connection)
        self.engine = KeywordSearchEngine(
            connection,
            searchable_columns=self._searchable_columns(),
            aliases=aliases,
            lexicon=meta.lexicon,
        )
        self.acg = (
            AnnotationsConnectivityGraph.build_from_manager(self.manager)
            if build_acg
            else AnnotationsConnectivityGraph()
        )
        self.profile = HopProfile()
        self.stability = StabilityTracker(
            batch_size=self.config.batch_size, mu=self.config.stability_mu
        )
        self.queue = VerificationQueue(self.manager, acg=self.acg, profile=self.profile)
        self.commands = CommandProcessor(self.manager, resolver=self.queue)
        self.executor = SharedExecutor(self.engine)
        self.spam_guard = SpamGuard()
        self._searchable_tuple_count = count_searchable_tuples(
            connection, [table for table, _ in self._searchable_columns()]
        )

    def _searchable_columns(self) -> List[Tuple[str, str]]:
        columns: List[Tuple[str, str]] = []
        for concept in self.meta.concepts:
            for column in sorted(
                concept.referencing_columns, key=lambda c: (c.table, c.column)
            ):
                pair = (column.table, column.column)
                if pair not in columns:
                    columns.append(pair)
        return columns

    # ------------------------------------------------------------------
    # Stages 1-2 (no persistence)
    # ------------------------------------------------------------------

    def analyze(
        self,
        text: str,
        focal: Sequence[TupleRef] = (),
        use_spreading: Optional[bool] = None,
        radius: Optional[int] = None,
        shared: Optional[bool] = None,
    ) -> DiscoveryReport:
        """Generate queries and identify candidate tuples for ``text``.

        ``use_spreading`` defaults to the ACG stability flag (the paper's
        trigger); ``radius`` defaults to the profile-guided selection;
        ``shared`` defaults to the config's shared-execution switch.
        """
        started = time.perf_counter()
        focal = tuple(focal)
        generation = generate_queries(text, self.meta, self.config)

        spreading = (
            use_spreading if use_spreading is not None else self.stability.stable
        )
        spreading = spreading and bool(focal)
        scope: Optional[SearchScope] = None
        mini = None
        chosen_radius: Optional[int] = None
        if spreading:
            chosen_radius = radius or select_radius(
                self.profile, self.config.target_recall, self.config.spreading_hops
            )
            scope, mini = spreading_scope(
                self.connection, self.acg, focal, chosen_radius
            )
        use_shared = shared if shared is not None else self.config.shared_execution
        try:
            identified = identify_related_tuples(
                generation.queries,
                self.engine,
                scope=scope,
                acg=self.acg if self.config.focal_adjustment else None,
                focal=focal,
                executor=self.executor if use_shared else None,
                focal_mode=self.config.focal_mode,
                focal_max_hops=self.config.focal_max_hops,
            )
        finally:
            if mini is not None:
                mini.drop()
        return DiscoveryReport(
            text=text,
            focal=focal,
            generation=generation,
            identified=identified,
            mode="spreading" if spreading else "full",
            radius=chosen_radius,
            scope_size=scope.size() if scope is not None else None,
            elapsed=time.perf_counter() - started,
        )

    # ------------------------------------------------------------------
    # Full pipeline (Stages 0-3, persisted)
    # ------------------------------------------------------------------

    def insert_annotation(
        self,
        text: str,
        attach_to: Sequence[TupleRef] = (),
        author: Optional[str] = None,
        use_spreading: Optional[bool] = None,
        radius: Optional[int] = None,
    ) -> DiscoveryReport:
        """Insert a new annotation and proactively discover its missing
        attachments; predictions are triaged into verification tasks."""
        started = time.perf_counter()
        focal = tuple(attach_to)
        annotation = self.manager.add_annotation(
            text,
            attach_to=[CellRef(r.table, r.rowid) for r in focal],
            author=author,
        )
        edges_before = self.acg.edge_count
        new_edges = 0
        for ref in focal:
            new_edges += self.acg.add_attachment(annotation.annotation_id, ref)

        report = self.analyze(
            text, focal=focal, use_spreading=use_spreading, radius=radius
        )
        report.annotation_id = annotation.annotation_id
        verdict = self.spam_guard.screen(
            report.candidates, self._searchable_tuple_count
        )
        if verdict.is_spam:
            # Footnote-1 guard: a spam-like annotation is quarantined —
            # its focal stays, but no predicted attachments are created.
            report.spam_verdict = verdict
            self.stability.record_annotation(
                attachments=len(focal), new_edges=new_edges
            )
            report.elapsed = time.perf_counter() - started
            return report
        report.tasks = self.queue.triage(
            annotation.annotation_id,
            report.candidates,
            self.config.beta_lower,
            self.config.beta_upper,
            focal=focal,
        )
        accepted = sum(1 for t in report.tasks if t.decision.is_accepted)
        total_new_edges = new_edges + (self.acg.edge_count - edges_before - new_edges)
        self.stability.record_annotation(
            attachments=len(focal) + accepted, new_edges=total_new_edges
        )
        report.elapsed = time.perf_counter() - started
        return report

    # ------------------------------------------------------------------
    # Stage-3 passthroughs
    # ------------------------------------------------------------------

    def verify_attachment(self, task_id: int) -> VerificationTask:
        return self.queue.verify(task_id)

    def reject_attachment(self, task_id: int) -> VerificationTask:
        return self.queue.reject(task_id)

    def pending_tasks(self, annotation_id: Optional[int] = None) -> List[VerificationTask]:
        return self.queue.pending(annotation_id)

    def execute_command(self, statement: str) -> CommandResult:
        """Run one extended-SQL statement (ADD ANNOTATION / VERIFY / ...)."""
        return self.commands.execute(statement)
