"""Focal-based confidence adjustment (paper §6.2).

The extension to Step 2 of IdentifyRelatedTuples(): after grouping, each
candidate tuple ``t`` is rewarded for every direct ACG edge it has to one
of the annotation's focal tuples:

.. code-block:: none

    For (each t in T) Loop
        For (each e(t, f) in ACG, forall f in Foc(a)) Loop
            t.conf += e.weight x t.conf

The per-edge increments compound (the paper's loop applies each reward to
the already-rewarded confidence), i.e. the final confidence is the product
``conf * prod(1 + w(t, f))`` over the focal tuples adjacent to ``t``.
Tuples with no edge to any focal — or absent from the ACG entirely — keep
their confidence unchanged.  Only *direct* edges count: the paper rejects
the multi-hop variant as "semantically weaker and may cause model
overfitting".
"""

from __future__ import annotations

from typing import Dict, Iterable, Sequence, Tuple

from ..types import TupleRef
from .acg import AnnotationsConnectivityGraph


def focal_reward_factor(
    ref: TupleRef,
    acg: AnnotationsConnectivityGraph,
    focal: Sequence[TupleRef],
) -> float:
    """Multiplicative reward ``prod(1 + w(ref, f))`` over adjacent focals."""
    factor = 1.0
    neighbors = acg.neighbors(ref)
    for focal_tuple in focal:
        if focal_tuple in neighbors:
            factor *= 1.0 + acg.weight(ref, focal_tuple)
    return factor


def path_reward_factor(
    ref: TupleRef,
    acg: AnnotationsConnectivityGraph,
    focal: Sequence[TupleRef],
    max_hops: int = 4,
) -> float:
    """The paper's multi-hop extension: reward along the best path.

    Each focal tuple contributes ``1 + best_path_weight(ref, f)`` where
    the path weight is the product of the in-between edge weights over at
    most ``max_hops`` hops.  Equals :func:`focal_reward_factor` when every
    focal is a direct neighbor.  The paper deliberately ships the direct
    variant ("semantically weaker and may cause model overfitting"); this
    implementation exists for the ablation that demonstrates that call.
    """
    factor = 1.0
    for focal_tuple in focal:
        if focal_tuple == ref:
            continue
        factor *= 1.0 + acg.best_path_weight(ref, focal_tuple, max_hops)
    return factor


def apply_focal_adjustment(
    confidences: Dict[TupleRef, float],
    acg: AnnotationsConnectivityGraph,
    focal: Sequence[TupleRef],
    mode: str = "direct",
    max_hops: int = 4,
) -> Dict[TupleRef, float]:
    """Return adjusted confidences (input mapping is not mutated).

    ``mode`` selects the paper's shipped direct-edge reward (``"direct"``)
    or the multi-hop path extension (``"path"``).
    """
    if not focal:
        return dict(confidences)
    if mode == "path":
        return {
            ref: conf * path_reward_factor(ref, acg, focal, max_hops)
            for ref, conf in confidences.items()
        }
    return {
        ref: conf * focal_reward_factor(ref, acg, focal)
        for ref, conf in confidences.items()
    }
