"""Signature-map construction (paper §5.2.1, Figure 4, Steps 1-3).

From an annotation's token sequence and the NebulaMeta repository we build:

* the **Concept-Map** — words likely referencing a table name (rectangle)
  or a column name (triangle) of the ConceptRefs concepts, weighted by
  ``p(w, c)``;
* the **Value-Map** — words likely being a *value* of a referencing
  column (hexagon), weighted by ``d(w, c)``;
* the **Context-Map** — the positional overlay of the two, on which the
  context-based weight adjustment and query generation operate.

A word is admitted to a map only when at least one of its mappings scores
at or above the cutoff threshold ε; mappings below ε are dropped (the
paper's "ignored and replaced with '-'").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..meta.repository import ConceptMapping, NebulaMeta, ValueMapping
from ..utils.tokenize import Token, tokenize

#: Shape tags matching the paper's figures.
SHAPE_TABLE = "table"  # rectangle
SHAPE_COLUMN = "column"  # triangle
SHAPE_VALUE = "value"  # hexagon


@dataclass
class WeightedMapping:
    """One candidate mapping of one word, with an adjustable weight.

    ``weight`` starts as the repository's estimate (p(w, c) or d(w, c))
    and is later boosted by the context-based adjustment.
    """

    shape: str
    table: str
    column: Optional[str]
    weight: float
    #: Evidence labels carried into verification-task evidence.
    evidence: Tuple[str, ...] = ()

    @property
    def is_concept(self) -> bool:
        return self.shape in (SHAPE_TABLE, SHAPE_COLUMN)

    def describe(self) -> str:
        target = self.table if self.column is None else f"{self.table}.{self.column}"
        return f"{self.shape}:{target}@{self.weight:.2f}"


@dataclass
class MapEntry:
    """All surviving mappings of one emphasized word."""

    token: Token
    mappings: List[WeightedMapping] = field(default_factory=list)

    @property
    def position(self) -> int:
        return self.token.position

    def best(self) -> Optional[WeightedMapping]:
        """The highest-weight mapping (ties broken toward concepts)."""
        if not self.mappings:
            return None
        return max(
            self.mappings,
            key=lambda m: (m.weight, m.is_concept, m.shape),
        )

    def shapes(self) -> Tuple[str, ...]:
        return tuple(sorted({m.shape for m in self.mappings}))


@dataclass
class ContextMap:
    """The overlay of the concept and value maps (Figure 4(b), Step 3)."""

    tokens: List[Token]
    entries: Dict[int, MapEntry]

    def entry_at(self, position: int) -> Optional[MapEntry]:
        return self.entries.get(position)

    def emphasized_positions(self) -> List[int]:
        return sorted(self.entries)

    def neighbors(self, position: int, alpha: int) -> List[MapEntry]:
        """Emphasized entries within the ±alpha influence range."""
        found = []
        for p in range(position - alpha, position + alpha + 1):
            if p == position:
                continue
            entry = self.entries.get(p)
            if entry is not None:
                found.append(entry)
        return found

    def render(self) -> str:
        """Debug rendering: emphasized words keep shapes, others show '-'."""
        parts = []
        for token in self.tokens:
            entry = self.entries.get(token.position)
            if entry is None:
                parts.append("-")
            else:
                shapes = "/".join(entry.shapes())
                parts.append(f"{token.cleaned}[{shapes}]")
        return " ".join(parts)


def build_concept_map(
    tokens: Sequence[Token], meta: NebulaMeta, epsilon: float
) -> Dict[int, MapEntry]:
    """Step 1: the Concept-Map — words mapping to table / column names."""
    entries: Dict[int, MapEntry] = {}
    for token in tokens:
        mappings = [
            _from_concept(m)
            for m in meta.concept_mappings(token.word)
            if m.score >= epsilon
        ]
        if mappings:
            entries[token.position] = MapEntry(token=token, mappings=mappings)
    return entries


def build_value_map(
    tokens: Sequence[Token], meta: NebulaMeta, epsilon: float
) -> Dict[int, MapEntry]:
    """Step 2: the Value-Map — words mapping to column value domains.

    Pattern evidence is case-sensitive, so matching runs on the cleaned
    (case-preserving) surface form.
    """
    entries: Dict[int, MapEntry] = {}
    for token in tokens:
        mappings = [
            _from_value(m)
            for m in meta.value_mappings(token.cleaned)
            if m.score >= epsilon
        ]
        if mappings:
            entries[token.position] = MapEntry(token=token, mappings=mappings)
    return entries


def overlay_maps(
    tokens: Sequence[Token],
    concept_entries: Dict[int, MapEntry],
    value_entries: Dict[int, MapEntry],
) -> ContextMap:
    """Step 3: overlay the two maps positionally into the Context-Map."""
    merged: Dict[int, MapEntry] = {}
    for position in set(concept_entries) | set(value_entries):
        token = None
        mappings: List[WeightedMapping] = []
        if position in concept_entries:
            token = concept_entries[position].token
            mappings.extend(concept_entries[position].mappings)
        if position in value_entries:
            token = value_entries[position].token
            mappings.extend(value_entries[position].mappings)
        merged[position] = MapEntry(token=token, mappings=mappings)
    return ContextMap(tokens=list(tokens), entries=merged)


def build_context_map(text: str, meta: NebulaMeta, epsilon: float) -> ContextMap:
    """Convenience: tokenize and run Steps 1-3 in one call."""
    tokens = tokenize(text)
    concept_entries = build_concept_map(tokens, meta, epsilon)
    value_entries = build_value_map(tokens, meta, epsilon)
    return overlay_maps(tokens, concept_entries, value_entries)


def _from_concept(mapping: ConceptMapping) -> WeightedMapping:
    shape = SHAPE_TABLE if mapping.kind == "table" else SHAPE_COLUMN
    return WeightedMapping(
        shape=shape,
        table=mapping.table,
        column=mapping.column,
        weight=mapping.score,
        evidence=(f"concept:{mapping.concept}",),
    )


def _from_value(mapping: ValueMapping) -> WeightedMapping:
    return WeightedMapping(
        shape=SHAPE_VALUE,
        table=mapping.table,
        column=mapping.column,
        weight=mapping.score,
        evidence=mapping.evidence,
    )
