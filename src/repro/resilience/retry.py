"""Retry with exponential backoff for transient storage failures.

SQLite under concurrent writers surfaces contention as
``OperationalError: database is locked`` (or ``database table is
locked`` / busy).  Those are *transient*: the correct reaction is to back
off and try again, not to fail the annotation pipeline.  The policy here
is deliberately deterministic — the clock is a seam (``sleep`` callable)
and the jitter derives from a seeded generator keyed by the attempt
number — so tests can assert the exact delay schedule.

:class:`RetryPolicy` retries only errors its ``retry_on`` predicate deems
transient; anything else propagates unchanged on the first attempt.  When
a transient error survives every attempt it is wrapped in
:class:`repro.errors.TransientStorageError` so upstream fault boundaries
can distinguish "storage kept failing" from logic errors.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional, TypeVar

from ..errors import TransientStorageError
from ..observability.metrics import get_metrics
from ..storage.compat import OperationalError

T = TypeVar("T")

#: Substrings of ``OperationalError`` messages that indicate
#: transient lock/busy contention rather than a malformed statement.
_TRANSIENT_MARKERS = ("locked", "busy")


def is_transient_operational_error(error: BaseException) -> bool:
    """Whether ``error`` is a retriable storage-contention failure."""
    if isinstance(error, TransientStorageError):
        return True
    if not isinstance(error, OperationalError):
        return False
    message = str(error).casefold()
    return any(marker in message for marker in _TRANSIENT_MARKERS)


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with deterministic jitter.

    The delay before attempt ``n+1`` is
    ``min(max_delay, base_delay * multiplier**(n-1)) * (1 + jitter * u_n)``
    where ``u_n`` in [0, 1) comes from ``random.Random(seed + n)`` — the
    schedule is a pure function of the policy, never of wall-clock state.
    """

    max_attempts: int = 3
    base_delay: float = 0.005
    max_delay: float = 0.25
    multiplier: float = 2.0
    jitter: float = 0.1
    seed: int = 0
    #: Clock seam: tests inject a recorder, production uses ``time.sleep``.
    sleep: Callable[[float], None] = field(default=time.sleep, repr=False)
    retry_on: Callable[[BaseException], bool] = field(
        default=is_transient_operational_error, repr=False
    )

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay < 0 or self.max_delay < self.base_delay:
            raise ValueError("delays must satisfy 0 <= base_delay <= max_delay")

    def delay_for(self, attempt: int) -> float:
        """Backoff before retrying after failed attempt number ``attempt``."""
        backoff = min(self.max_delay, self.base_delay * self.multiplier ** (attempt - 1))
        fraction = random.Random(self.seed + attempt).random()
        return backoff * (1.0 + self.jitter * fraction)

    def schedule(self) -> List[float]:
        """The full delay schedule (one entry per possible retry)."""
        return [self.delay_for(n) for n in range(1, self.max_attempts)]

    def run(self, operation: Callable[[], T], description: str = "") -> T:
        """Run ``operation``, retrying transient failures per the policy.

        Non-transient errors propagate immediately; a transient error that
        survives ``max_attempts`` is re-raised as
        :class:`TransientStorageError` (chained to the original).
        """
        attempt = 0
        while True:
            attempt += 1
            try:
                return operation()
            except BaseException as error:  # noqa: B036 - re-raised below
                if not self.retry_on(error):
                    raise
                if attempt >= self.max_attempts:
                    get_metrics().counter("nebula_transient_errors_total").inc()
                    label = description or getattr(operation, "__name__", "operation")
                    raise TransientStorageError(
                        f"{label}: {error}", attempts=attempt
                    ) from error
                get_metrics().counter("nebula_retry_attempts_total").inc()
                self.sleep(self.delay_for(attempt))


def no_retry() -> RetryPolicy:
    """A policy that gives up immediately (single attempt, no sleeps)."""
    return RetryPolicy(max_attempts=1)
