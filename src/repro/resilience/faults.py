"""Deterministic fault injection for the annotation pipeline.

A :class:`FaultInjector` is armed at named *fault points* — the stage
boundaries of ``Nebula.insert_annotation`` / ``Nebula.analyze`` — and
raises a scripted exception the next ``times`` times that point is
reached.  Because it is plugged in through :class:`repro.config.
NebulaConfig` (``fault_injector=...``), tests exercise every boundary,
fallback, and rollback path through the *public* API, with zero
monkeypatching and fully deterministic behavior.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple, Union

#: The named fault points the pipeline checks, in stage order.  The
#: ``service.*`` points are checked by the concurrent annotation service
#: (:mod:`repro.service`): ``service.flush`` fires in the single-writer
#: loop right before a batch flush (arm a *stall* there to saturate the
#: writer), ``service.reader`` fires when a read endpoint opens its
#: reader connection, and ``service.crash`` fires between a flushed
#: batch and its commit (arm a :class:`SimulatedCrash` there to model a
#: mid-batch process death).
FAULT_POINTS: Tuple[str, ...] = (
    "store.add",
    "spreading.scope",
    "executor.run",
    "queue.triage",
    "service.flush",
    "service.reader",
    "service.crash",
)


class InjectedFault(RuntimeError):
    """Default exception raised at an armed fault point."""

    def __init__(self, point: str) -> None:
        super().__init__(f"injected fault at {point!r}")
        self.point = point


class SimulatedCrash(BaseException):
    """A scripted process death (chaos harness).

    Derives from :class:`BaseException` on purpose: robust components
    catch ``Exception`` to stay alive, and a simulated crash must punch
    through exactly like a real ``SIGKILL`` would — nothing between the
    fault point and the top of the thread gets to handle it.
    """

    def __init__(self, point: str) -> None:
        super().__init__(f"simulated crash at {point!r}")
        self.point = point


@dataclass
class _Arming:
    factory: Optional[Callable[[], BaseException]]
    remaining: int
    #: Seconds to stall instead of raising (writer-stall chaos).
    delay: float = 0.0


class FaultInjector:
    """Registry of armed fault points.

    >>> faults = FaultInjector()
    >>> faults.arm("queue.triage")          # next triage raises once
    >>> faults.fired("queue.triage")
    0
    """

    def __init__(self) -> None:
        self._armed: Dict[str, _Arming] = {}
        self._fired: Dict[str, int] = {}

    def arm(
        self,
        point: str,
        error: Union[BaseException, Callable[[], BaseException], None] = None,
        times: int = 1,
    ) -> "FaultInjector":
        """Arm ``point`` to raise ``error`` for the next ``times`` hits.

        ``error`` may be an exception instance, a zero-argument factory,
        or None for the default :class:`InjectedFault`.  ``times`` may be
        negative for "every time until disarmed".  Unknown points are
        rejected — a typo'd arming would otherwise never fire and the
        test exercising it would pass vacuously.
        """
        if point not in FAULT_POINTS:
            raise ValueError(
                f"unknown fault point {point!r}; pipeline checks {FAULT_POINTS}"
            )
        if error is None:
            factory: Callable[[], BaseException] = lambda: InjectedFault(point)
        elif isinstance(error, BaseException):
            factory = lambda: error
        else:
            factory = error
        self._armed[point] = _Arming(factory=factory, remaining=times)
        return self

    def arm_stall(
        self, point: str, seconds: float, times: int = 1
    ) -> "FaultInjector":
        """Arm ``point`` to *stall* (sleep ``seconds``) instead of raising.

        The chaos harness uses this to model a slow disk or a saturated
        writer: the fault point blocks, nothing fails.  ``times`` follows
        the same semantics as :meth:`arm`.
        """
        if point not in FAULT_POINTS:
            raise ValueError(
                f"unknown fault point {point!r}; pipeline checks {FAULT_POINTS}"
            )
        if seconds < 0:
            raise ValueError("stall duration must be >= 0")
        self._armed[point] = _Arming(factory=None, remaining=times, delay=seconds)
        return self

    def disarm(self, point: str) -> None:
        self._armed.pop(point, None)

    def reset(self) -> None:
        """Disarm everything and clear the fired counters."""
        self._armed.clear()
        self._fired.clear()

    def fired(self, point: Optional[str] = None) -> int:
        """How many faults actually fired (at ``point``, or in total)."""
        if point is not None:
            return self._fired.get(point, 0)
        return sum(self._fired.values())

    def check(self, point: str) -> None:
        """Raise (or stall) the scripted fault if ``point`` is armed."""
        arming = self._armed.get(point)
        if arming is None or arming.remaining == 0:
            return
        if arming.remaining > 0:
            arming.remaining -= 1
            if arming.remaining == 0:
                self._armed.pop(point, None)
        self._fired[point] = self._fired.get(point, 0) + 1
        if arming.factory is None:
            time.sleep(arming.delay)
            return
        raise arming.factory()
