"""Deterministic fault injection for the annotation pipeline.

A :class:`FaultInjector` is armed at named *fault points* — the stage
boundaries of ``Nebula.insert_annotation`` / ``Nebula.analyze`` — and
raises a scripted exception the next ``times`` times that point is
reached.  Because it is plugged in through :class:`repro.config.
NebulaConfig` (``fault_injector=...``), tests exercise every boundary,
fallback, and rollback path through the *public* API, with zero
monkeypatching and fully deterministic behavior.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple, Union

#: The named fault points the pipeline checks, in stage order.
FAULT_POINTS: Tuple[str, ...] = (
    "store.add",
    "spreading.scope",
    "executor.run",
    "queue.triage",
)


class InjectedFault(RuntimeError):
    """Default exception raised at an armed fault point."""

    def __init__(self, point: str) -> None:
        super().__init__(f"injected fault at {point!r}")
        self.point = point


@dataclass
class _Arming:
    factory: Callable[[], BaseException]
    remaining: int


class FaultInjector:
    """Registry of armed fault points.

    >>> faults = FaultInjector()
    >>> faults.arm("queue.triage")          # next triage raises once
    >>> faults.fired("queue.triage")
    0
    """

    def __init__(self) -> None:
        self._armed: Dict[str, _Arming] = {}
        self._fired: Dict[str, int] = {}

    def arm(
        self,
        point: str,
        error: Union[BaseException, Callable[[], BaseException], None] = None,
        times: int = 1,
    ) -> "FaultInjector":
        """Arm ``point`` to raise ``error`` for the next ``times`` hits.

        ``error`` may be an exception instance, a zero-argument factory,
        or None for the default :class:`InjectedFault`.  ``times`` may be
        negative for "every time until disarmed".  Unknown points are
        rejected — a typo'd arming would otherwise never fire and the
        test exercising it would pass vacuously.
        """
        if point not in FAULT_POINTS:
            raise ValueError(
                f"unknown fault point {point!r}; pipeline checks {FAULT_POINTS}"
            )
        if error is None:
            factory: Callable[[], BaseException] = lambda: InjectedFault(point)
        elif isinstance(error, BaseException):
            factory = lambda: error
        else:
            factory = error
        self._armed[point] = _Arming(factory=factory, remaining=times)
        return self

    def disarm(self, point: str) -> None:
        self._armed.pop(point, None)

    def reset(self) -> None:
        """Disarm everything and clear the fired counters."""
        self._armed.clear()
        self._fired.clear()

    def fired(self, point: Optional[str] = None) -> int:
        """How many faults actually fired (at ``point``, or in total)."""
        if point is not None:
            return self._fired.get(point, 0)
        return sum(self._fired.values())

    def check(self, point: str) -> None:
        """Raise the scripted exception if ``point`` is armed."""
        arming = self._armed.get(point)
        if arming is None or arming.remaining == 0:
            return
        if arming.remaining > 0:
            arming.remaining -= 1
            if arming.remaining == 0:
                self._armed.pop(point, None)
        self._fired[point] = self._fired.get(point, 0) + 1
        raise arming.factory()
