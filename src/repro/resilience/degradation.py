"""The graceful-degradation ladder of the discovery pipeline.

When an *optimization* stage fails, the pipeline steps down to the slower
but simpler technique it optimizes, instead of failing the annotation:

==========================  ==========================================
failure                     fallback
==========================  ==========================================
spreading-scope construction  full-database search
shared multi-query executor   per-query sequential execution
context-based adjustment      unadjusted signature-map weights
mini-database drop            leak the temp tables (logged, non-fatal)
sustained service pressure    approximate (spreading) search pinned on
service reader connection     pooled read-write handle used read-only
==========================  ==========================================

Every step down is recorded as a label in
``DiscoveryReport.degradations`` so callers (and operators) can see that
an answer was produced in degraded mode.  Labels are ``<fault point>:
<fallback>`` strings, stable enough to alert on.
"""

from __future__ import annotations

import logging
from typing import Callable, List, TypeVar

from ..observability.metrics import get_metrics

logger = logging.getLogger("repro.resilience")

T = TypeVar("T")

#: Spreading-scope construction failed -> whole-database search.
SPREADING_FALLBACK = "spreading.scope:full-search"
#: Shared executor failed -> per-query sequential execution.
EXECUTOR_FALLBACK = "executor.run:sequential"
#: Context-based weight adjustment failed -> unadjusted weights.
CONTEXT_FALLBACK = "context.adjust:unadjusted-weights"
#: Mini-database drop failed -> temp tables leaked until connection close.
MINI_DROP_LEAK = "spreading.mini_drop:leaked"
#: Sustained queue pressure -> the service pins the cheaper approximate
#: (focal-based spreading) search for the batches it flushes.
SERVICE_SHED = "service.pressure:approximate-search"
#: A service reader connection failed -> a pooled handle (or, last, the
#: writer's primary under the write lock) serves the read.
SERVICE_READER_FALLBACK = "service.reader:pooled"


def count_degradation(label: str) -> None:
    """Record one degradation event in the metrics registry.

    Every site that appends to ``DiscoveryReport.degradations`` calls
    this, so operators can alert on ``nebula_degradation_events_total``
    without scraping logs; the label keys the fault point (low
    cardinality by construction — labels are the module constants above).
    """
    get_metrics().counter(
        "nebula_degradation_events_total", {"fallback": label}
    ).inc()


def with_fallback(
    primary: Callable[[], T],
    fallback: Callable[[], T],
    label: str,
    degradations: List[str],
) -> T:
    """Run ``primary``; on any failure record ``label`` and run ``fallback``.

    The fallback's own failure propagates — one step down the ladder per
    fault point; a broken fallback is a hard error by design.
    """
    try:
        return primary()
    except Exception as error:
        logger.warning("degrading (%s): %s", label, error)
        degradations.append(label)
        count_degradation(label)
        return fallback()
