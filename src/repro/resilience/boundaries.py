"""Per-stage fault boundaries for the annotation pipeline.

Two primitives:

* :class:`Savepoint` — a named SQLite SAVEPOINT wrapping the *persistent*
  side of the pipeline.  ``release()`` folds the writes into the
  enclosing transaction; ``rollback()`` undoes every write made since
  ``begin()`` (annotation row, focal attachments, verification tasks,
  predicted attachments) without touching earlier state.
* :func:`pipeline_stage` — a context manager marking a named stage.  It
  fires the stage's fault-injection point (if an injector is armed) and
  re-raises any escaping exception as
  :class:`repro.errors.PipelineStageError` tagged with the stage name, so
  the top-level boundary in ``Nebula.insert_annotation`` knows exactly
  which stage to blame in the dead-letter record.
"""

from __future__ import annotations

import itertools
from contextlib import contextmanager
from types import TracebackType
from typing import TYPE_CHECKING, Iterator, Optional, Type

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .faults import FaultInjector

from ..errors import PipelineStageError
from ..observability.metrics import get_metrics
from ..storage.compat import Connection
from ..storage.dialect import SQLITE_DIALECT, Dialect

#: Process-wide counter making savepoint names unique even when nested.
_SAVEPOINT_IDS = itertools.count(1)


class Savepoint:
    """One SQLite SAVEPOINT with explicit begin/release/rollback."""

    def __init__(
        self,
        connection: Connection,
        label: str = "nebula",
        dialect: Dialect = SQLITE_DIALECT,
    ) -> None:
        self.connection = connection
        self.dialect = dialect
        # SQLite identifiers: keep it alphanumeric + underscore.
        safe = "".join(c if c.isalnum() else "_" for c in label)
        self.name = f"sp_{safe}_{next(_SAVEPOINT_IDS)}"
        self._active = False

    @property
    def active(self) -> bool:
        return self._active

    def begin(self) -> "Savepoint":
        self.connection.execute(self.dialect.savepoint_statement(self.name))
        self._active = True
        return self

    def release(self) -> None:
        """Commit the savepoint's writes into the enclosing transaction."""
        if self._active:
            self.connection.execute(self.dialect.release_statement(self.name))
            self._active = False

    def rollback(self) -> None:
        """Undo every write since ``begin()`` and discard the savepoint."""
        if self._active:
            self.connection.execute(self.dialect.rollback_statement(self.name))
            self.connection.execute(self.dialect.release_statement(self.name))
            self._active = False

    def __enter__(self) -> "Savepoint":
        return self.begin()

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        if exc_type is None:
            self.release()
        else:
            self.rollback()


@contextmanager
def pipeline_stage(
    stage: str, faults: Optional["FaultInjector"] = None
) -> Iterator[None]:
    """Mark a pipeline stage; tag escaping failures with the stage name.

    ``faults`` is an optional :class:`repro.resilience.FaultInjector`
    checked on entry, so every boundary doubles as an injection point.
    """
    try:
        if faults is not None:
            faults.check(stage)
        yield
    except PipelineStageError:
        raise  # already tagged by an inner stage
    except Exception as error:
        get_metrics().counter(
            "nebula_stage_failures_total", {"stage": stage}
        ).inc()
        raise PipelineStageError(stage, error) from error
