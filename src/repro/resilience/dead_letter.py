"""Persistent dead-letter queue for failed annotation ingestions.

An annotation whose pipeline failed *after* retries and rollback is not
lost: its inputs (text, focal, author) plus the failing stage and error
are captured in the ``_nebula_dead_letters`` system table.  The queue
survives restarts (it lives next to the annotation store) and is drained
by :meth:`repro.core.nebula.Nebula.reprocess_dead_letters`, which re-runs
the full pipeline for each pending letter once the underlying fault has
cleared.

The capture itself runs *outside* the pipeline's savepoint — a rollback
of the failed ingestion must not also roll back the evidence of it.  For
the same reason every queue write commits immediately: the process that
just failed may be about to exit, and an uncommitted letter would vanish
with its implicit transaction.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..errors import DeadLetterError
from ..observability.metrics import get_metrics
from ..storage.compat import Connection, Cursor
from ..types import TupleRef
from .retry import RetryPolicy

_DDL = """
CREATE TABLE IF NOT EXISTS _nebula_dead_letters (
    letter_id   INTEGER PRIMARY KEY,
    content     TEXT NOT NULL,
    author      TEXT,
    focal_json  TEXT NOT NULL,
    stage       TEXT NOT NULL,
    error       TEXT NOT NULL,
    attempts    INTEGER NOT NULL DEFAULT 1,
    status      TEXT NOT NULL DEFAULT 'pending'
        CHECK (status IN ('pending', 'resolved')),
    claimed     INTEGER NOT NULL DEFAULT 0,
    request_id  TEXT,
    commit_id   INTEGER
);
"""

_COLUMNS = (
    "letter_id, content, author, focal_json, stage, error, attempts, status, "
    "request_id, commit_id"
)


@dataclass(frozen=True)
class DeadLetter:
    """One captured ingestion failure, replayable as-is."""

    letter_id: int
    content: str
    author: Optional[str]
    focal: Tuple[TupleRef, ...]
    stage: str
    error: str
    attempts: int
    status: str
    #: Correlation id of the service submission that failed into this
    #: letter (None for failures outside the service layer).
    request_id: Optional[str] = None
    #: The ``replay`` commit a successful reprocess landed under (None
    #: while pending).  Together with the commit's ``dead-letter:<id>``
    #: note this makes replays auditable in both directions — and
    #: idempotent against the log: a letter carrying a commit id has
    #: verifiably been ingested exactly once.
    commit_id: Optional[int] = None

    @property
    def is_pending(self) -> bool:
        return self.status == "pending"


class DeadLetterQueue:
    """SQLite-backed queue of annotations whose pipeline failed."""

    def __init__(
        self, connection: Connection, retry: Optional[RetryPolicy] = None
    ) -> None:
        self.connection = connection
        self._retry = retry
        self._execute_script(_DDL)
        self._ensure_claim_column()

    def _ensure_claim_column(self) -> None:
        """Migrate older databases: add the columns later PRs introduced.

        ``CREATE TABLE IF NOT EXISTS`` leaves an existing table alone, so
        a database written before the replay-claim protocol lacks
        ``claimed`` (its 0 default is exactly the unclaimed state), and
        one written before the telemetry plane lacks ``request_id``
        (NULL: no service submission is associated).
        """
        columns = {
            str(row[1])
            for row in self._execute("PRAGMA table_info(_nebula_dead_letters)")
        }
        migrated = False
        if "claimed" not in columns:
            self._execute(
                "ALTER TABLE _nebula_dead_letters "
                "ADD COLUMN claimed INTEGER NOT NULL DEFAULT 0"
            )
            migrated = True
        if "request_id" not in columns:
            self._execute(
                "ALTER TABLE _nebula_dead_letters ADD COLUMN request_id TEXT"
            )
            migrated = True
        if "commit_id" not in columns:
            self._execute(
                "ALTER TABLE _nebula_dead_letters ADD COLUMN commit_id INTEGER"
            )
            migrated = True
        if migrated:
            self._commit()

    # ------------------------------------------------------------------

    def _execute(self, sql: str, params: Tuple = ()) -> Cursor:
        if self._retry is not None:
            return self._retry.run(lambda: self.connection.execute(sql, params), sql)
        return self.connection.execute(sql, params)

    def _execute_script(self, script: str) -> None:
        if self._retry is not None:
            self._retry.run(lambda: self.connection.executescript(script), "ddl")
        else:
            self.connection.executescript(script)

    def _commit(self) -> None:
        """Make a queue write durable right away (see module docstring)."""
        if self._retry is not None:
            self._retry.run(self.connection.commit, "commit")
        else:
            self.connection.commit()

    # ------------------------------------------------------------------

    def capture(
        self,
        content: str,
        focal: Tuple[TupleRef, ...],
        author: Optional[str],
        stage: str,
        error: str,
    ) -> DeadLetter:
        """Persist one failed ingestion for later reprocessing."""
        focal_json = json.dumps([[ref.table, ref.rowid] for ref in focal])
        cursor = self._execute(
            "INSERT INTO _nebula_dead_letters "
            "(content, author, focal_json, stage, error) VALUES (?, ?, ?, ?, ?)",
            (content, author, focal_json, stage, error),
        )
        self._commit()
        get_metrics().counter("nebula_dead_letters_total", {"stage": stage}).inc()
        self._update_pending_gauge()
        return DeadLetter(
            letter_id=int(cursor.lastrowid),
            content=content,
            author=author,
            focal=focal,
            stage=stage,
            error=error,
            attempts=1,
            status="pending",
        )

    def get(self, letter_id: int) -> DeadLetter:
        row = self._execute(
            f"SELECT {_COLUMNS} FROM _nebula_dead_letters WHERE letter_id = ?",
            (letter_id,),
        ).fetchone()
        if row is None:
            raise DeadLetterError(letter_id)
        return _row_to_letter(row)

    def pending(self, include_claimed: bool = True) -> List[DeadLetter]:
        """Pending letters, oldest first.

        ``include_claimed=False`` hides letters another replayer has
        already claimed (see :meth:`claim`) — the view a concurrent
        ``reprocess_dead_letters`` invocation should drain from.
        """
        sql = (
            f"SELECT {_COLUMNS} FROM _nebula_dead_letters "
            "WHERE status = 'pending'"
        )
        if not include_claimed:
            sql += " AND claimed = 0"
        rows = self._execute(sql + " ORDER BY letter_id").fetchall()
        return [_row_to_letter(r) for r in rows]

    def count(self, status: Optional[str] = None) -> int:
        if status is None:
            row = self._execute("SELECT COUNT(*) FROM _nebula_dead_letters").fetchone()
        else:
            row = self._execute(
                "SELECT COUNT(*) FROM _nebula_dead_letters WHERE status = ?", (status,)
            ).fetchone()
        return int(row[0])

    def claim(self, letter_id: int) -> bool:
        """Atomically mark a pending letter as being replayed.

        Returns True when this caller won the claim; False when the
        letter is already claimed, resolved, or unknown.  The compare-
        and-set UPDATE is what makes concurrent or repeated
        ``reprocess_dead_letters`` invocations idempotent: exactly one
        replayer can hold a letter at a time, so a row can never be
        replayed twice.  A failed replay releases the claim
        (:meth:`record_attempt`); a crashed replayer's stale claims are
        released by :meth:`release_claims` at recovery.
        """
        cursor = self._execute(
            "UPDATE _nebula_dead_letters SET claimed = 1 "
            "WHERE letter_id = ? AND status = 'pending' AND claimed = 0",
            (letter_id,),
        )
        self._commit()
        return cursor.rowcount == 1

    def release_claims(self) -> int:
        """Release every stale claim (crash recovery).

        A replayer that died mid-replay leaves its letters claimed but
        unresolved; startup recovery calls this so they become
        drainable again.  Returns the number of claims released.
        """
        cursor = self._execute(
            "UPDATE _nebula_dead_letters SET claimed = 0 "
            "WHERE status = 'pending' AND claimed = 1"
        )
        self._commit()
        return int(cursor.rowcount)

    def assign_request(self, letter_id: int, request_id: str) -> None:
        """Stamp the submission's correlation id onto a captured letter.

        The pipeline captures letters without service context (it does
        not know about submissions); the service stamps the id right
        after catching the :class:`~repro.errors.PipelineStageError`
        that carries ``dead_letter_id`` — which is what lets an operator
        join a failed request's events and spans to its replayable row.
        """
        cursor = self._execute(
            "UPDATE _nebula_dead_letters SET request_id = ? WHERE letter_id = ?",
            (request_id, letter_id),
        )
        if cursor.rowcount == 0:
            raise DeadLetterError(letter_id)
        self._commit()

    def for_request(self, request_id: str) -> List[DeadLetter]:
        """Every letter captured for one submission (usually 0 or 1)."""
        rows = self._execute(
            f"SELECT {_COLUMNS} FROM _nebula_dead_letters "
            "WHERE request_id = ? ORDER BY letter_id",
            (request_id,),
        ).fetchall()
        return [_row_to_letter(r) for r in rows]

    def mark_resolved(
        self, letter_id: int, commit_id: Optional[int] = None
    ) -> None:
        """A successful replay: the letter leaves the pending set.

        ``commit_id`` records which ``replay`` commit the re-ingestion
        landed under, tying the resolved letter to its log entry.
        """
        cursor = self._execute(
            "UPDATE _nebula_dead_letters SET status = 'resolved', commit_id = ? "
            "WHERE letter_id = ? AND status = 'pending'",
            (commit_id, letter_id),
        )
        if cursor.rowcount == 0:
            raise DeadLetterError(letter_id, "unknown or already resolved dead letter")
        self._commit()
        self._update_pending_gauge()

    def _update_pending_gauge(self) -> None:
        """Keep ``nebula_dead_letters_pending`` equal to the queue depth."""
        get_metrics().gauge("nebula_dead_letters_pending").set(
            self.count("pending")
        )

    def record_attempt(self, letter_id: int, error: str) -> None:
        """A failed replay: bump the attempt counter, keep it pending.

        The claim is released so a later (or concurrent) replayer can
        retry the letter once the underlying fault has cleared.
        """
        cursor = self._execute(
            "UPDATE _nebula_dead_letters SET attempts = attempts + 1, "
            "error = ?, claimed = 0 "
            "WHERE letter_id = ? AND status = 'pending'",
            (error, letter_id),
        )
        if cursor.rowcount == 0:
            raise DeadLetterError(letter_id, "unknown or already resolved dead letter")
        self._commit()


def _row_to_letter(row: Sequence[object]) -> DeadLetter:
    focal = tuple(
        TupleRef(str(table), int(rowid)) for table, rowid in json.loads(row[3])
    )
    return DeadLetter(
        letter_id=int(row[0]),
        content=str(row[1]),
        author=None if row[2] is None else str(row[2]),
        focal=focal,
        stage=str(row[4]),
        error=str(row[5]),
        attempts=int(row[6]),
        status=str(row[7]),
        request_id=None if row[8] is None else str(row[8]),
        commit_id=None if row[9] is None else int(row[9]),
    )
