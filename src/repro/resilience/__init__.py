"""Fault tolerance for the annotation-ingestion pipeline.

The paper's Stage 0-3 pipeline (Figure 16) assumes every stage succeeds;
this package supplies what a production deployment needs when one does
not:

* :mod:`~repro.resilience.retry` — :class:`RetryPolicy`, exponential
  backoff with a deterministic clock/jitter seam for transient SQLite
  lock errors;
* :mod:`~repro.resilience.boundaries` — :class:`Savepoint` and
  :func:`pipeline_stage`, the SAVEPOINT-backed per-stage fault
  boundaries that make a failed ingestion roll back atomically;
* :mod:`~repro.resilience.degradation` — the graceful-degradation ladder
  (spreading -> full search, shared -> sequential execution, adjusted ->
  raw weights), recorded on ``DiscoveryReport.degradations``;
* :mod:`~repro.resilience.dead_letter` — :class:`DeadLetterQueue`, the
  persisted ``_nebula_dead_letters`` table capturing annotations whose
  pipeline failed after retries, drained by
  ``Nebula.reprocess_dead_letters()``;
* :mod:`~repro.resilience.faults` — :class:`FaultInjector`, the
  deterministic test harness raising (or stalling) at named fault
  points (``store.add``, ``spreading.scope``, ``executor.run``,
  ``queue.triage``, plus the service layer's ``service.flush`` /
  ``service.reader`` / ``service.crash``).
"""

from .boundaries import Savepoint, pipeline_stage
from .dead_letter import DeadLetter, DeadLetterQueue
from .degradation import (
    CONTEXT_FALLBACK,
    EXECUTOR_FALLBACK,
    MINI_DROP_LEAK,
    SERVICE_READER_FALLBACK,
    SERVICE_SHED,
    SPREADING_FALLBACK,
    count_degradation,
    with_fallback,
)
from .faults import FAULT_POINTS, FaultInjector, InjectedFault, SimulatedCrash
from .retry import RetryPolicy, is_transient_operational_error, no_retry

__all__ = [
    "Savepoint",
    "pipeline_stage",
    "DeadLetter",
    "DeadLetterQueue",
    "CONTEXT_FALLBACK",
    "EXECUTOR_FALLBACK",
    "MINI_DROP_LEAK",
    "SERVICE_READER_FALLBACK",
    "SERVICE_SHED",
    "SPREADING_FALLBACK",
    "count_degradation",
    "with_fallback",
    "FAULT_POINTS",
    "FaultInjector",
    "InjectedFault",
    "SimulatedCrash",
    "RetryPolicy",
    "is_transient_operational_error",
    "no_retry",
]
