"""Command-line interface.

Usage (after ``pip install -e .``)::

    python -m repro generate --db curated.db --genes 400 --publications 2000
    python -m repro stats --db curated.db
    python -m repro annotate --db curated.db --text "gene JW0014 matters" \\
        --attach Gene:3 --trace
    python -m repro annotate-batch --db curated.db --file notes.txt --workers 4
    python -m repro trace --db curated.db --last 2
    python -m repro pending --db curated.db
    python -m repro verify --db curated.db --task 7
    python -m repro serve --db curated.db --clients 4 --metrics-port 0
    python -m repro top --url http://127.0.0.1:9464 --once
    python -m repro index status --db curated.db
    python -m repro history 3 --db curated.db
    python -m repro migrate status --db curated.db
    python -m repro demo

``generate`` persists a synthetic curated database (plus its NebulaMeta
concepts, rebuilt on open from the stored schema); the other commands
operate on it through a fresh Nebula engine.

``annotate --trace`` also appends the pass's trace tree to
``<db>.trace.jsonl`` and accumulates a metrics snapshot in
``<db>.metrics.json``; ``trace`` pretty-prints those traces and ``stats``
folds the persisted metrics into its report.

``serve --metrics-port`` exposes the running service's telemetry plane
(``/metrics``, ``/healthz``, ``/readyz``) over HTTP while the clients
run, and ``top`` polls such an endpoint to render a live dashboard:
queue depth, shedding state, throughput, and latency percentiles.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Dict, List, Mapping, Optional, Sequence

from .config import NebulaConfig
from .core.nebula import Nebula
from .datagen.biodb import BioDatabaseSpec, generate_bio_database, _build_meta
from .datagen.stats import collect_stats
from .datagen.workload import WorkloadSpec, generate_workload
from .perf import AnnotationRequest
from .observability import (
    MetricsRegistry,
    format_trace,
    read_jsonl_traces,
    set_metrics,
    validate_trace_file,
)
from .storage import get_backend
from .types import TupleRef


def _trace_path(db: str) -> str:
    return f"{db}.trace.jsonl"


def _metrics_path(db: str) -> str:
    return f"{db}.metrics.json"


def _load_metrics(db: str) -> MetricsRegistry:
    """A registry seeded from the database's persisted snapshot (if any),
    so traced CLI runs accumulate metrics across processes."""
    registry = MetricsRegistry()
    path = _metrics_path(db)
    if os.path.exists(path):
        with open(path) as handle:
            registry.restore(json.load(handle))
    return registry


def _save_metrics(db: str, registry: MetricsRegistry) -> None:
    with open(_metrics_path(db), "w") as handle:
        json.dump(registry.snapshot(), handle, indent=2)


_LATENCY_PREFIX = 'nebula_service_latency_seconds{'

#: Display order of the service latency phases (extras sort after).
_LATENCY_PHASES = ("queue", "flush", "e2e")


def _service_latency_rows(gauges: Mapping[str, float]) -> List[str]:
    """Aligned ``phase  p50/p95/p99`` rows from latency-percentile gauges.

    The gauges are keyed by the registry's encoded form, e.g.
    ``nebula_service_latency_seconds{phase="queue",quantile="p50"}``.
    """
    table: Dict[str, Dict[str, float]] = {}
    for key, value in gauges.items():
        if not key.startswith(_LATENCY_PREFIX) or not key.endswith("}"):
            continue
        labels: Dict[str, str] = {}
        for part in key[len(_LATENCY_PREFIX):-1].split(","):
            name, _, raw = part.partition("=")
            labels[name.strip()] = raw.strip().strip('"')
        phase = labels.get("phase", "?")
        table.setdefault(phase, {})[labels.get("quantile", "?")] = value
    ordered = [p for p in _LATENCY_PHASES if p in table]
    ordered += sorted(set(table) - set(_LATENCY_PHASES))
    rows = []
    for phase in ordered:
        cells = "  ".join(
            f"{q}={table[phase].get(q, 0.0) * 1e3:9.2f}ms"
            for q in ("p50", "p95", "p99")
        )
        rows.append(f"{phase:<6} {cells}")
    return rows


def _open_engine(
    path: str,
    epsilon: float,
    trace: bool = False,
    workers: int = 0,
    persist_metrics: bool = False,
) -> Nebula:
    # The CLI always operates on a database file, so the engine choice is
    # pinned to the file backend; the backend is surfaced on the returned
    # engine (``nebula.backend``) and closing it releases every handle —
    # the connection opened here can no longer leak past the command.
    config = NebulaConfig(
        epsilon=epsilon,
        tracing=trace,
        trace_path=_trace_path(path) if trace else None,
        executor_workers=workers,
    )
    backend = get_backend(
        config.storage_backend,
        path=path,
        pool_size=config.pool_size,
        journal_mode=config.journal_mode,
        busy_timeout=config.busy_timeout,
    )
    meta = _build_meta(backend.primary)
    aliases = {
        "genes": ("Gene", None),
        "proteins": ("Protein", None),
        "id": ("Gene", "GID"),
        "accession": ("Protein", "PID"),
    }
    metrics = None
    if trace or persist_metrics:
        # Route the resilience layer's module-level counters into the
        # same restored registry the engine will snapshot.
        metrics = _load_metrics(path)
        set_metrics(metrics)
    return Nebula(
        backend.primary, meta, config, aliases=aliases, metrics=metrics,
        backend=backend,
    )


def _close_engine(nebula: Nebula) -> None:
    """Release the engine plus its storage backend (every connection)."""
    nebula.close()
    nebula.backend.close()


def _parse_ref(text: str) -> TupleRef:
    table, _, rowid = text.partition(":")
    if not rowid.isdigit():
        raise argparse.ArgumentTypeError(
            f"expected TABLE:ROWID (e.g. Gene:3), got {text!r}"
        )
    return TupleRef(table, int(rowid))


# ----------------------------------------------------------------------
# Subcommands
# ----------------------------------------------------------------------


def cmd_generate(args: argparse.Namespace) -> int:
    spec = BioDatabaseSpec(
        genes=args.genes,
        proteins=args.proteins,
        publications=args.publications,
        community_size=args.community_size,
        seed=args.seed,
    )
    with get_backend("sqlite-file", path=args.db) as backend:
        connection = backend.primary
        db = generate_bio_database(spec, connection=connection)
        connection.commit()
        print(
            f"generated {args.db}: {len(db.genes)} genes, {len(db.proteins)} "
            f"proteins, {db.manager.store.count_annotations()} publication-annotations"
        )
        if args.workload:
            workload = generate_workload(db, WorkloadSpec(seed=args.seed))
            with open(args.workload, "w") as handle:
                json.dump(workload.to_dict(), handle, indent=2)
            print(
                f"workload oracle written to {args.workload} "
                f"({len(workload)} annotations)"
            )
    return 0


def cmd_stats(args: argparse.Namespace) -> int:
    with get_backend("sqlite-file", path=args.db) as backend:
        stats = collect_stats(backend.primary)
    for line in stats.lines():
        print(line)
    metrics_path = _metrics_path(args.db)
    if os.path.exists(metrics_path):
        print()
        print(f"pipeline metrics ({metrics_path}):")
        registry = _load_metrics(args.db)
        for line in registry.lines():
            print(f"  {line}")
        rows = _service_latency_rows(registry.snapshot()["gauges"])
        if rows:
            print()
            print("service latency percentiles (last serve run):")
            for row in rows:
                print(f"  {row}")
    return 0


def cmd_annotate(args: argparse.Namespace) -> int:
    nebula = _open_engine(args.db, args.epsilon, trace=args.trace)
    try:
        attach = list(args.attach or [])
        if args.as_of is not None:
            return _annotate_as_of(nebula, args, attach)
        report = nebula.insert_annotation(
            args.text, attach_to=attach, author=args.author
        )
        nebula.connection.commit()
        if args.trace:
            _save_metrics(args.db, nebula.metrics)
        print(f"annotation {report.annotation_id} inserted ({report.mode} search)")
        print(f"queries: {[q.keywords for q in report.generation.queries]}")
        if report.spam_verdict is not None and report.spam_verdict.is_spam:
            print(f"QUARANTINED as spam ({report.spam_verdict.reason})")
            return 1
        for task in report.tasks:
            print(
                f"  task {task.task_id}: {task.ref} "
                f"confidence={task.confidence:.2f} -> {task.decision.value}"
            )
        if args.trace and report.trace is not None:
            print(f"trace (appended to {_trace_path(args.db)}):")
            for line in format_trace(report.trace, indent=1):
                print(line)
        return 0
    finally:
        _close_engine(nebula)


def _annotate_as_of(
    nebula: Nebula, args: argparse.Namespace, attach: List[TupleRef]
) -> int:
    """``annotate --as-of N``: historical dry run, persists nothing.

    Replays the Stage-1/Stage-2 analysis against the annotation graph as
    it stood at commit N — "what would Nebula have predicted back then?"
    — and prints the candidates instead of inserting anything.
    """
    from .errors import UnknownCommitError

    try:
        commit = nebula.commit_log.get_commit(args.as_of)
    except UnknownCommitError:
        head = nebula.head_commit()
        print(
            f"annotate: unknown commit {args.as_of} "
            f"(head is {head if head is not None else 'empty'})",
            file=sys.stderr,
        )
        return 2
    report = nebula.analyze(args.text, focal=attach, as_of=args.as_of)
    print(
        f"historical analysis at commit {commit.commit_id} "
        f"({commit.kind} @ {commit.created_at}) — nothing persisted"
    )
    print(f"queries: {[q.keywords for q in report.generation.queries]}")
    if not report.candidates:
        print("  no candidate tuples at that commit")
    for candidate in report.candidates:
        print(f"  {candidate.ref} confidence={candidate.confidence:.2f}")
    return 0


def _parse_batch_line(line: str) -> AnnotationRequest:
    """One batch-file line: ``text`` or ``TABLE:ROWID<TAB>text``."""
    focal, tab, rest = line.partition("\t")
    if tab and ":" in focal and focal.partition(":")[2].isdigit():
        return AnnotationRequest.build(rest.strip(), [_parse_ref(focal.strip())])
    return AnnotationRequest.build(line.strip())


def cmd_annotate_batch(args: argparse.Namespace) -> int:
    import dataclasses
    import time

    with open(args.file) as handle:
        lines = [line.rstrip("\n") for line in handle]
    requests = [_parse_batch_line(line) for line in lines if line.strip()]
    if args.author:
        requests = [
            dataclasses.replace(request, author=args.author)
            for request in requests
        ]
    if not requests:
        print(f"no annotations in {args.file}", file=sys.stderr)
        return 2
    nebula = _open_engine(args.db, args.epsilon, workers=args.workers)
    try:
        started = time.perf_counter()
        reports = nebula.insert_annotations(requests)
        elapsed = time.perf_counter() - started
        nebula.connection.commit()
        tasks = sum(len(report.tasks) for report in reports)
        spam = sum(
            1
            for report in reports
            if report.spam_verdict is not None and report.spam_verdict.is_spam
        )
        rate = len(reports) / elapsed if elapsed > 0 else float("inf")
        print(
            f"inserted {len(reports)} annotations in {elapsed * 1e3:.1f}ms "
            f"({rate:.1f}/s): {tasks} verification tasks, {spam} quarantined"
        )
        stats = nebula.executor.last_stats
        if stats is not None and stats.total_sql:
            print(
                f"shared execution: {stats.executed_statements}/"
                f"{stats.total_sql} statements executed "
                f"(hit ratio {stats.hit_ratio:.2f})"
            )
        if nebula.parallel is not None:
            print(f"parallel Stage-2: {args.workers} workers")
        if args.verbose:
            for report in reports:
                print(
                    f"  annotation {report.annotation_id}: "
                    f"{len(report.tasks)} tasks"
                )
        return 0
    finally:
        _close_engine(nebula)


def cmd_trace(args: argparse.Namespace) -> int:
    if not args.path and not args.db:
        print("trace: one of --db or --path is required", file=sys.stderr)
        return 2
    path = args.path or _trace_path(args.db)
    if args.validate:
        try:
            validate_trace_file(path, minimum=max(args.last, 1))
        except ValueError as error:
            print(f"trace validation failed: {error}", file=sys.stderr)
            return 1
        print(f"{path}: OK")
    if not os.path.exists(path):
        print(f"no trace file at {path} (run annotate --trace first)")
        return 0 if args.validate else 1
    traces = read_jsonl_traces(path)
    for record in traces[-max(args.last, 0):]:
        for line in format_trace(record):
            print(line)
        print()
    return 0


def cmd_pending(args: argparse.Namespace) -> int:
    nebula = _open_engine(args.db, args.epsilon)
    try:
        pending = nebula.pending_tasks()
        if not pending:
            print("no pending verification tasks")
            return 0
        from .core.explain import explain_task

        for task in pending:
            explanation = explain_task(nebula.manager, task)
            for line in explanation.lines():
                print(line)
            print()
        return 0
    finally:
        _close_engine(nebula)


def cmd_verify(args: argparse.Namespace) -> int:
    nebula = _open_engine(args.db, args.epsilon)
    try:
        statement = (
            "REJECT" if args.reject else "VERIFY"
        ) + f" ATTACHMENT {args.task}"
        result = nebula.execute_command(statement)
        nebula.connection.commit()
        print(result.message)
        return 0
    finally:
        _close_engine(nebula)


def cmd_demo(args: argparse.Namespace) -> int:
    db = generate_bio_database(
        BioDatabaseSpec(genes=100, proteins=60, publications=400, seed=args.seed)
    )
    nebula = Nebula(
        db.connection, db.meta, NebulaConfig(epsilon=0.6), aliases=db.aliases
    )
    gene, other = db.genes[0], db.genes[1]
    text = f"From the exp, this gene is correlated to gene {other.gid}."
    print(f"inserting: {text!r} (attached to {gene.gid})")
    report = nebula.insert_annotation(
        text, attach_to=[db.resolve("gene", gene.gid)], author="demo"
    )
    for task in report.tasks:
        print(f"  {task.ref} confidence={task.confidence:.2f} -> {task.decision.value}")
    nebula.close()
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Drive the concurrent annotation service with N client threads.

    Every client mixes ingestion (through the service's admission-
    controlled queue) with searches (served by concurrent readers);
    exit status 1 when any request is lost — neither acknowledged,
    failed, nor rejected — or the shutdown was not clean.
    """
    import threading
    import time

    from .errors import ServiceOverloadedError
    from .service import AnnotationService, ServiceConfig

    nebula = _open_engine(args.db, args.epsilon, persist_metrics=True)
    print(
        f"search index: {nebula.index_source} in "
        f"{nebula.index_cold_start_seconds * 1e3:.1f}ms"
    )
    gids = [
        row[0]
        for row in nebula.connection.execute("SELECT GID FROM Gene LIMIT 16")
    ]
    if not gids:
        print(f"{args.db} has no Gene rows; run `repro generate` first",
              file=sys.stderr)
        _close_engine(nebula)
        return 2
    service = AnnotationService(
        nebula,
        ServiceConfig(
            queue_capacity=args.queue_capacity,
            max_batch=args.max_batch,
            default_deadline=args.deadline,
        ),
    ).start()
    telemetry = None
    port = (
        args.metrics_port
        if args.metrics_port is not None
        else nebula.config.metrics_port
    )
    if port is not None:
        telemetry = service.serve_metrics(port=port)
        print(f"telemetry: {telemetry.url}metrics (scrape with `repro top`)")
    counts = {"ok": 0, "rejected": 0, "failed": 0, "searches": 0}
    lock = threading.Lock()

    def client(c: int) -> None:
        for i in range(args.requests):
            gid = gids[(c + i) % len(gids)]
            text = f"client {c} note {i}: gene {gid} flagged for review"
            try:
                ticket = service.submit(text, author=f"client-{c}")
            except ServiceOverloadedError:
                with lock:
                    counts["rejected"] += 1
                continue
            try:
                ticket.result(timeout=60.0)
                outcome = "ok"
            except Exception:
                outcome = "failed"
            with lock:
                counts[outcome] += 1
            if i % 3 == 0:
                service.find_annotations("flagged", limit=5)
                with lock:
                    counts["searches"] += 1

    threads = [
        threading.Thread(target=client, args=(c,), name=f"client-{c}")
        for c in range(args.clients)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    if telemetry is not None and args.linger > 0:
        print(f"lingering {args.linger:g}s for scrapes (ctrl-c to stop early)")
        try:
            time.sleep(args.linger)
        except KeyboardInterrupt:
            pass
    stats = service.stats()
    clean = service.stop()
    if telemetry is not None:
        telemetry.stop()
    _save_metrics(args.db, nebula.metrics)
    _close_engine(nebula)
    attempts = args.clients * args.requests
    accounted = counts["ok"] + counts["failed"] + counts["rejected"]
    lost = attempts - accounted
    print(
        f"{attempts} requests from {args.clients} clients: "
        f"{counts['ok']} ingested, {counts['rejected']} rejected "
        f"(admission control), {counts['failed']} failed, "
        f"{counts['searches']} concurrent searches"
    )
    print(
        f"service: {stats.batches} batches, peak shedding={stats.shedding}, "
        f"clean shutdown={clean}"
    )
    if stats.e2e_seconds:
        print("latency percentiles (seconds):")
        for phase, percentiles in (
            ("queue", stats.queue_wait_seconds),
            ("flush", stats.flush_seconds),
            ("e2e", stats.e2e_seconds),
        ):
            cells = "  ".join(
                f"{q}={percentiles.get(q, 0.0) * 1e3:9.2f}ms"
                for q in ("p50", "p95", "p99")
            )
            print(f"  {phase:<6} {cells}")
    if lost or not clean:
        print(f"LOST {lost} request(s), clean={clean}", file=sys.stderr)
        return 1
    return 0


def _family_value(
    families: Mapping[str, object],
    name: str,
    labels: Optional[Mapping[str, str]] = None,
    default: float = 0.0,
) -> float:
    """One sample value out of parsed exposition families (or ``default``)."""
    family = families.get(name)
    if family is None:
        return default
    value = family.value(labels)  # type: ignore[attr-defined]
    return default if value is None else float(value)


def _render_top_frame(
    families: Mapping[str, object], rate: Optional[float]
) -> List[str]:
    """One ``repro top`` dashboard frame from parsed ``/metrics`` families."""
    from .observability import MetricFamily

    status = "unknown"
    info = families.get("nebula_service_info")
    if isinstance(info, MetricFamily):
        for labels, _ in info.samples.get("nebula_service_info", []):
            status = labels.get("status", "unknown")
    depth = _family_value(families, "nebula_service_queue_depth")
    capacity = _family_value(families, "nebula_service_queue_capacity")
    shedding = _family_value(families, "nebula_service_shedding")
    lines = [
        f"nebula service [{status}]  queue {depth:g}/{capacity:g}"
        + ("  SHEDDING" if shedding else ""),
        "  requests   " + " ".join(
            f"{label}={_family_value(families, metric):g}"
            for label, metric in (
                ("submitted", "nebula_service_submitted_total"),
                ("ingested", "nebula_service_ingested_total"),
                ("rejected", "nebula_service_rejected_total"),
                ("failed", "nebula_service_failed_total"),
                ("expired", "nebula_service_deadline_expired_total"),
            )
        ),
        "  writer     " + " ".join(
            f"{label}={_family_value(families, metric):g}"
            for label, metric in (
                ("batches", "nebula_service_batches_total"),
                ("batch-fallbacks", "nebula_service_batch_fallbacks_total"),
                ("reader-fallbacks", "nebula_service_reader_fallbacks_total"),
                ("recoveries", "nebula_service_recoveries_total"),
            )
        )
        + (f"  rate={rate:.1f} ann/s" if rate is not None else ""),
    ]
    latency = families.get("nebula_service_latency_seconds")
    if isinstance(latency, MetricFamily):
        gauges = {
            _LATENCY_PREFIX[:-1]
            + "{"
            + ",".join(f'{k}="{v}"' for k, v in sorted(labels.items()))
            + "}": value
            for labels, value in latency.samples.get(
                "nebula_service_latency_seconds", []
            )
        }
        rows = _service_latency_rows(gauges)
        if rows:
            lines.append("  latency")
            lines.extend(f"    {row}" for row in rows)
    return lines


def cmd_top(args: argparse.Namespace) -> int:
    """Live dashboard over a service telemetry endpoint.

    Polls the ``/metrics`` endpoint exposed by ``repro serve
    --metrics-port`` (or any embedded :meth:`AnnotationService.
    serve_metrics` server) and renders queue depth, shedding state,
    request/writer counters, throughput (from counter deltas between
    polls), and the streaming latency percentiles, in place.
    """
    import time

    from .observability import parse_exposition, scrape

    base = args.url or f"http://{args.host}:{args.port}/"
    if not base.endswith("/"):
        base += "/"
    count = 1 if args.once else args.count
    previous: Optional[tuple] = None
    frames = 0
    clear = sys.stdout.isatty() and count != 1
    while True:
        try:
            text = scrape(base + "metrics", timeout=max(args.interval, 1.0) + 5.0)
        except OSError as error:
            print(f"top: cannot scrape {base}metrics: {error}", file=sys.stderr)
            return 1
        try:
            families = parse_exposition(text)
        except ValueError as error:
            print(f"top: malformed exposition: {error}", file=sys.stderr)
            return 1
        now = time.monotonic()
        ingested = _family_value(families, "nebula_service_ingested_total")
        rate = None
        if previous is not None and now > previous[0]:
            rate = max(0.0, ingested - previous[1]) / (now - previous[0])
        previous = (now, ingested)
        if clear:
            print("\x1b[2J\x1b[H", end="")
        for line in _render_top_frame(families, rate):
            print(line)
        sys.stdout.flush()
        frames += 1
        if count and frames >= count:
            return 0
        try:
            time.sleep(args.interval)
        except KeyboardInterrupt:
            return 0


def cmd_index(args: argparse.Namespace) -> int:
    """Manage the persisted search index: build / status / verify.

    * ``build`` forces a rebuild-and-persist regardless of staleness.
    * ``status`` reports how the engine opened the index (a valid
      persisted image is "loaded" without scanning a single posting)
      plus the stored layout: generation, columns, tokens, postings.
    * ``verify`` rebuilds the reference in-memory index from the data
      and exits 1 unless the persisted image matches it exactly.
    """
    import time

    from .search import InvertedValueIndex, PersistentValueIndex

    nebula = _open_engine(args.db, args.epsilon)
    try:
        index = nebula.engine.index
        if not isinstance(index, PersistentValueIndex):
            print(
                "persistent index disabled (persist_index=False)",
                file=sys.stderr,
            )
            return 2
        if args.action == "build":
            started = time.perf_counter()
            index.rebuild(nebula.searchable_columns())
            elapsed = time.perf_counter() - started
            description = index.describe()
            print(
                f"rebuilt in {elapsed * 1e3:.1f}ms: "
                f"{description['tokens']} tokens, "
                f"{description['postings']} postings, "
                f"generation {description['generation']}"
            )
            return 0
        if args.action == "status":
            # Opening the engine already validated the stamps: "loaded"
            # means the persisted image was adopted as-is, "rebuilt"
            # means it was absent or stale and was just re-persisted.
            description = index.describe()
            print(f"source:         {nebula.index_source}")
            print(f"cold start:     {nebula.index_cold_start_seconds * 1e3:.1f}ms")
            print(f"schema version: {description['schema_version']}")
            print(f"generation:     {description['generation']}")
            print(f"columns:        {len(description['columns'])}")
            print(f"tokens:         {description['tokens']}")
            print(f"postings:       {description['postings']}")
            return 0
        reference = InvertedValueIndex.build(
            nebula.connection, nebula.searchable_columns()
        )
        problems = index.parity_mismatches(reference)
        if problems:
            print(f"persisted index DIVERGES from the data ({len(problems)}):")
            for problem in problems:
                print(f"  {problem}")
            return 1
        print(
            f"persisted index verified: {len(index)} tokens, "
            f"{index.posting_count()} postings match the in-memory build"
        )
        return 0
    finally:
        _close_engine(nebula)


def cmd_history(args: argparse.Namespace) -> int:
    """Print the append-only version history of one annotation.

    Every row ever logged for the annotation and its attachment edges,
    joined with the ``_nebula_commits`` provenance (kind, author,
    request id, wall-clock) — the audit trail of ISSUE 10.  With no
    ``annotation_id`` the command lists the newest commits instead.
    """
    from .versioning import timetravel

    nebula = _open_engine(args.db, args.epsilon)
    try:
        log = nebula.commit_log
        if args.annotation_id is None:
            commits = log.commits(limit=args.limit)
            if not commits:
                print("no commits recorded")
                return 0
            print(f"{len(commits)} newest commits (head={log.head()}):")
            for commit in commits:
                extras = " ".join(
                    f"{name}={value}"
                    for name, value in (
                        ("author", commit.author),
                        ("request", commit.request_id),
                        ("note", commit.note),
                    )
                    if value is not None
                )
                print(
                    f"  commit {commit.commit_id}  {commit.kind:<8} "
                    f"{commit.created_at}" + (f"  {extras}" if extras else "")
                )
            return 0
        rows = timetravel.annotation_history_rows(
            nebula.connection, args.annotation_id
        )
        if not rows:
            print(
                f"history: annotation {args.annotation_id} has no logged "
                "versions",
                file=sys.stderr,
            )
            return 1
        print(f"annotation {args.annotation_id}: {len(rows)} version(s)")
        for row in rows:
            (_, commit_id, op, content, author, _, kind, c_author,
             request_id, note, created_at) = row
            who = author or c_author or "-"
            line = (
                f"  commit {commit_id}  {kind:<8} {op:<6} by {who} "
                f"@ {created_at}: {content!r}"
            )
            if request_id:
                line += f"  request={request_id}"
            if note:
                line += f"  note={note}"
            print(line)
        edges = timetravel.attachment_history_rows(
            nebula.connection, args.annotation_id
        )
        print(f"attachment edges: {len(edges)} logged version(s)")
        for row in edges:
            (_, commit_id, op, attachment_id, table, rowid, _, column,
             confidence, edge_kind, kind, c_author, request_id,
             created_at) = row
            target = f"{table}:{rowid}" + (f".{column}" if column else "")
            line = (
                f"  commit {commit_id}  {kind:<8} {op:<7} "
                f"attachment {attachment_id} -> {target} "
                f"[{edge_kind}, confidence={confidence:.2f}] @ {created_at}"
            )
            if request_id:
                line += f"  request={request_id}"
            print(line)
        return 0
    finally:
        _close_engine(nebula)


def cmd_migrate(args: argparse.Namespace) -> int:
    """Schema-revision management: ``status`` / ``up`` / ``down``.

    Runs the :mod:`repro.versioning.migrations` chain against the raw
    backend connection — deliberately *not* through ``_open_engine``,
    whose store construction auto-applies pending migrations and would
    mask the very state this command reports (and make ``down``
    pointless, re-upgrading the file on open).
    """
    from .versioning import MigrationRunner

    backend = get_backend("sqlite-file", path=args.db)
    try:
        runner = MigrationRunner(backend.primary)
        if args.action == "status":
            status = runner.status()
            print(f"current revision: {status['current'] or '<none>'}")
            for record in status["applied"]:  # type: ignore[union-attr]
                print(
                    f"  applied {record['revision']}  {record['name']} "
                    f"@ {record['applied_at']}"
                )
            for entry in status["pending"]:  # type: ignore[union-attr]
                print(f"  pending {entry['revision']}  {entry['name']}")
            return 0 if not status["pending"] else 1
        if args.action == "up":
            applied = runner.upgrade(target=args.target)
            backend.primary.commit()
            if not applied:
                print(f"already at {runner.current_revision()}: nothing to apply")
            else:
                print(
                    f"applied {', '.join(applied)} "
                    f"(now at {runner.current_revision()})"
                )
            return 0
        reverted = runner.downgrade(
            target=args.target if args.target is not None else "0001"
        )
        backend.primary.commit()
        if not reverted:
            print(f"already at {runner.current_revision()}: nothing to revert")
        else:
            print(
                f"reverted {', '.join(reverted)} "
                f"(now at {runner.current_revision()})"
            )
        return 0
    finally:
        backend.close()


def cmd_lint(args: argparse.Namespace) -> int:
    """Delegate to nebula-lint, reusing its flag set verbatim."""
    from .analysis.cli import main as lint_main

    argv: list = list(args.paths)
    if args.json:
        argv.append("--json")
    if args.format:
        argv.extend(["--format", args.format])
    if args.strict:
        argv.append("--strict")
    if args.baseline:
        argv.extend(["--baseline", args.baseline])
    if args.write_baseline:
        argv.extend(["--write-baseline", args.write_baseline])
    if args.rules:
        argv.extend(["--rules", args.rules])
    if args.jobs is not None:
        argv.extend(["--jobs", str(args.jobs)])
    if args.verbose:
        argv.append("--verbose")
    if args.max_seconds is not None:
        argv.extend(["--max-seconds", str(args.max_seconds)])
    if args.list_rules:
        argv.append("--list-rules")
    return lint_main(argv)


# ----------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Nebula: proactive annotation management (SIGMOD 2015 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    generate = sub.add_parser("generate", help="generate a synthetic curated database")
    generate.add_argument("--db", required=True, help="output SQLite file")
    generate.add_argument("--genes", type=int, default=240)
    generate.add_argument("--proteins", type=int, default=140)
    generate.add_argument("--publications", type=int, default=1400)
    generate.add_argument("--community-size", type=int, default=10)
    generate.add_argument("--seed", type=int, default=7)
    generate.add_argument("--workload", help="also write the workload oracle JSON here")
    generate.set_defaults(func=cmd_generate)

    stats = sub.add_parser("stats", help="summarize an annotated database")
    stats.add_argument("--db", required=True)
    stats.set_defaults(func=cmd_stats)

    annotate = sub.add_parser("annotate", help="insert an annotation proactively")
    annotate.add_argument("--db", required=True)
    annotate.add_argument("--text", required=True)
    annotate.add_argument(
        "--attach", action="append", metavar="TABLE:ROWID", type=_parse_ref,
        help="manual attachment target (repeatable)",
    )
    annotate.add_argument("--author")
    annotate.add_argument("--epsilon", type=float, default=0.6)
    annotate.add_argument(
        "--trace", action="store_true",
        help="trace the pipeline pass; appends to <db>.trace.jsonl and "
        "accumulates metrics in <db>.metrics.json",
    )
    annotate.add_argument(
        "--as-of", type=int, default=None, metavar="COMMIT",
        help="dry run: analyze against the annotation graph as it stood "
        "at this commit and print the candidates; persists nothing",
    )
    annotate.set_defaults(func=cmd_annotate)

    annotate_batch = sub.add_parser(
        "annotate-batch",
        help="insert a file of annotations through the batched fast path",
    )
    annotate_batch.add_argument("--db", required=True)
    annotate_batch.add_argument(
        "--file", required=True,
        help="one annotation per line: TEXT, or TABLE:ROWID<TAB>TEXT "
        "to attach manually",
    )
    annotate_batch.add_argument("--author", help="author recorded for every line")
    annotate_batch.add_argument("--epsilon", type=float, default=0.6)
    annotate_batch.add_argument(
        "--workers", type=int, default=0,
        help="parallel Stage-2 worker threads (0 = sequential; needs a "
        "file-backed database)",
    )
    annotate_batch.add_argument(
        "--verbose", action="store_true", help="also print one line per annotation"
    )
    annotate_batch.set_defaults(func=cmd_annotate_batch)

    trace = sub.add_parser("trace", help="pretty-print recorded pipeline traces")
    trace.add_argument("--db", help="database whose <db>.trace.jsonl to read")
    trace.add_argument("--path", help="explicit trace JSONL file (overrides --db)")
    trace.add_argument("--last", type=int, default=1, metavar="N",
                       help="show the most recent N traces (default 1)")
    trace.add_argument(
        "--validate", action="store_true",
        help="exit 1 unless the file holds >= N well-formed nested traces",
    )
    trace.set_defaults(func=cmd_trace)

    pending = sub.add_parser("pending", help="list pending verification tasks")
    pending.add_argument("--db", required=True)
    pending.add_argument("--epsilon", type=float, default=0.6)
    pending.set_defaults(func=cmd_pending)

    verify = sub.add_parser("verify", help="resolve a pending verification task")
    verify.add_argument("--db", required=True)
    verify.add_argument("--task", type=int, required=True)
    verify.add_argument("--reject", action="store_true", help="reject instead of verify")
    verify.add_argument("--epsilon", type=float, default=0.6)
    verify.set_defaults(func=cmd_verify)

    serve = sub.add_parser(
        "serve",
        help="exercise the concurrent annotation service with N clients",
    )
    serve.add_argument("--db", required=True)
    serve.add_argument("--clients", type=int, default=4,
                       help="concurrent client threads (default 4)")
    serve.add_argument("--requests", type=int, default=8,
                       help="annotations per client (default 8)")
    serve.add_argument("--queue-capacity", type=int, default=64)
    serve.add_argument("--max-batch", type=int, default=16)
    serve.add_argument("--deadline", type=float, default=None,
                       help="per-request deadline in seconds (default none)")
    serve.add_argument("--epsilon", type=float, default=0.6)
    serve.add_argument(
        "--metrics-port", type=int, default=None, metavar="PORT",
        help="serve /metrics, /healthz and /readyz on this port while the "
        "clients run (0 = ephemeral; default: config metrics_port, unset)",
    )
    serve.add_argument(
        "--linger", type=float, default=0.0, metavar="SECONDS",
        help="keep the service (and telemetry endpoint) alive this long "
        "after the clients finish, for external scrapes / `repro top`",
    )
    serve.set_defaults(func=cmd_serve)

    top = sub.add_parser(
        "top",
        help="live dashboard over a service telemetry endpoint",
    )
    top.add_argument("--url", help="endpoint base URL (overrides --host/--port)")
    top.add_argument("--host", default="127.0.0.1")
    top.add_argument("--port", type=int, default=9464)
    top.add_argument("--interval", type=float, default=1.0, metavar="SECONDS",
                     help="seconds between polls (default 1)")
    top.add_argument("--count", type=int, default=0, metavar="N",
                     help="frames to render before exiting (0 = until ctrl-c)")
    top.add_argument("--once", action="store_true",
                     help="render a single frame and exit (same as --count 1)")
    top.set_defaults(func=cmd_top)

    index = sub.add_parser(
        "index",
        help="manage the persisted search index (build / status / verify)",
    )
    index.add_argument(
        "action", choices=("build", "status", "verify"),
        help="build: force rebuild-and-persist; status: report the "
        "stored image; verify: compare against a fresh in-memory build",
    )
    index.add_argument("--db", required=True)
    index.add_argument("--epsilon", type=float, default=0.6)
    index.set_defaults(func=cmd_index)

    history = sub.add_parser(
        "history",
        help="print an annotation's append-only version history "
        "(or the newest commits)",
    )
    history.add_argument(
        "annotation_id", type=int, nargs="?", default=None,
        help="annotation to show history for (omit to list commits)",
    )
    history.add_argument("--db", required=True)
    history.add_argument(
        "--limit", type=int, default=20, metavar="N",
        help="commits to list when no annotation id is given (default 20)",
    )
    history.add_argument("--epsilon", type=float, default=0.6)
    history.set_defaults(func=cmd_history)

    migrate = sub.add_parser(
        "migrate",
        help="manage schema revisions (status / up / down)",
    )
    migrate.add_argument(
        "action", choices=("status", "up", "down"),
        help="status: report applied+pending revisions (exit 1 if any "
        "pending); up: apply pending migrations; down: revert to the "
        "legacy base schema (or --target)",
    )
    migrate.add_argument("--db", required=True)
    migrate.add_argument(
        "--target", metavar="REVISION", default=None,
        help="stop at this revision (up: apply through it; "
        "down: keep it and everything below)",
    )
    migrate.set_defaults(func=cmd_migrate)

    demo = sub.add_parser("demo", help="run a tiny in-memory end-to-end demo")
    demo.add_argument("--seed", type=int, default=7)
    demo.set_defaults(func=cmd_demo)

    lint = sub.add_parser(
        "lint",
        help="run nebula-lint (project-specific static analysis) over a tree",
    )
    lint.add_argument("paths", nargs="*", help="files/dirs (default: repro source)")
    lint.add_argument("--json", action="store_true")
    lint.add_argument("--format", choices=("human", "json", "sarif"))
    lint.add_argument("--strict", action="store_true")
    lint.add_argument("--baseline", metavar="FILE")
    lint.add_argument("--write-baseline", metavar="FILE")
    lint.add_argument("--rules", metavar="IDS")
    lint.add_argument("--jobs", type=int, metavar="N")
    lint.add_argument("--verbose", action="store_true")
    lint.add_argument("--max-seconds", type=float, metavar="S")
    lint.add_argument("--list-rules", action="store_true")
    lint.set_defaults(func=cmd_lint)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
