"""Command-line interface.

Usage (after ``pip install -e .``)::

    python -m repro generate --db curated.db --genes 400 --publications 2000
    python -m repro stats --db curated.db
    python -m repro annotate --db curated.db --text "gene JW0014 matters" \\
        --attach Gene:3 --trace
    python -m repro annotate-batch --db curated.db --file notes.txt --workers 4
    python -m repro trace --db curated.db --last 2
    python -m repro pending --db curated.db
    python -m repro verify --db curated.db --task 7
    python -m repro demo

``generate`` persists a synthetic curated database (plus its NebulaMeta
concepts, rebuilt on open from the stored schema); the other commands
operate on it through a fresh Nebula engine.

``annotate --trace`` also appends the pass's trace tree to
``<db>.trace.jsonl`` and accumulates a metrics snapshot in
``<db>.metrics.json``; ``trace`` pretty-prints those traces and ``stats``
folds the persisted metrics into its report.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Optional, Sequence

from .config import NebulaConfig
from .core.nebula import Nebula
from .datagen.biodb import BioDatabaseSpec, generate_bio_database, _build_meta
from .datagen.stats import collect_stats
from .datagen.workload import WorkloadSpec, generate_workload
from .perf import AnnotationRequest
from .observability import (
    MetricsRegistry,
    format_trace,
    read_jsonl_traces,
    set_metrics,
    validate_trace_file,
)
from .storage import get_backend
from .types import TupleRef


def _trace_path(db: str) -> str:
    return f"{db}.trace.jsonl"


def _metrics_path(db: str) -> str:
    return f"{db}.metrics.json"


def _load_metrics(db: str) -> MetricsRegistry:
    """A registry seeded from the database's persisted snapshot (if any),
    so traced CLI runs accumulate metrics across processes."""
    registry = MetricsRegistry()
    path = _metrics_path(db)
    if os.path.exists(path):
        with open(path) as handle:
            registry.restore(json.load(handle))
    return registry


def _save_metrics(db: str, registry: MetricsRegistry) -> None:
    with open(_metrics_path(db), "w") as handle:
        json.dump(registry.snapshot(), handle, indent=2)


def _open_engine(
    path: str, epsilon: float, trace: bool = False, workers: int = 0
) -> Nebula:
    # The CLI always operates on a database file, so the engine choice is
    # pinned to the file backend; the backend is surfaced on the returned
    # engine (``nebula.backend``) and closing it releases every handle —
    # the connection opened here can no longer leak past the command.
    config = NebulaConfig(
        epsilon=epsilon,
        tracing=trace,
        trace_path=_trace_path(path) if trace else None,
        executor_workers=workers,
    )
    backend = get_backend(
        config.storage_backend,
        path=path,
        pool_size=config.pool_size,
        journal_mode=config.journal_mode,
        busy_timeout=config.busy_timeout,
    )
    meta = _build_meta(backend.primary)
    aliases = {
        "genes": ("Gene", None),
        "proteins": ("Protein", None),
        "id": ("Gene", "GID"),
        "accession": ("Protein", "PID"),
    }
    metrics = None
    if trace:
        # Route the resilience layer's module-level counters into the
        # same restored registry the engine will snapshot.
        metrics = _load_metrics(path)
        set_metrics(metrics)
    return Nebula(
        backend.primary, meta, config, aliases=aliases, metrics=metrics,
        backend=backend,
    )


def _close_engine(nebula: Nebula) -> None:
    """Release the engine plus its storage backend (every connection)."""
    nebula.close()
    nebula.backend.close()


def _parse_ref(text: str) -> TupleRef:
    table, _, rowid = text.partition(":")
    if not rowid.isdigit():
        raise argparse.ArgumentTypeError(
            f"expected TABLE:ROWID (e.g. Gene:3), got {text!r}"
        )
    return TupleRef(table, int(rowid))


# ----------------------------------------------------------------------
# Subcommands
# ----------------------------------------------------------------------


def cmd_generate(args: argparse.Namespace) -> int:
    spec = BioDatabaseSpec(
        genes=args.genes,
        proteins=args.proteins,
        publications=args.publications,
        community_size=args.community_size,
        seed=args.seed,
    )
    with get_backend("sqlite-file", path=args.db) as backend:
        connection = backend.primary
        db = generate_bio_database(spec, connection=connection)
        connection.commit()
        print(
            f"generated {args.db}: {len(db.genes)} genes, {len(db.proteins)} "
            f"proteins, {db.manager.store.count_annotations()} publication-annotations"
        )
        if args.workload:
            workload = generate_workload(db, WorkloadSpec(seed=args.seed))
            with open(args.workload, "w") as handle:
                json.dump(workload.to_dict(), handle, indent=2)
            print(
                f"workload oracle written to {args.workload} "
                f"({len(workload)} annotations)"
            )
    return 0


def cmd_stats(args: argparse.Namespace) -> int:
    with get_backend("sqlite-file", path=args.db) as backend:
        stats = collect_stats(backend.primary)
    for line in stats.lines():
        print(line)
    metrics_path = _metrics_path(args.db)
    if os.path.exists(metrics_path):
        print()
        print(f"pipeline metrics ({metrics_path}):")
        registry = _load_metrics(args.db)
        for line in registry.lines():
            print(f"  {line}")
    return 0


def cmd_annotate(args: argparse.Namespace) -> int:
    nebula = _open_engine(args.db, args.epsilon, trace=args.trace)
    try:
        attach = list(args.attach or [])
        report = nebula.insert_annotation(
            args.text, attach_to=attach, author=args.author
        )
        nebula.connection.commit()
        if args.trace:
            _save_metrics(args.db, nebula.metrics)
        print(f"annotation {report.annotation_id} inserted ({report.mode} search)")
        print(f"queries: {[q.keywords for q in report.generation.queries]}")
        if report.spam_verdict is not None and report.spam_verdict.is_spam:
            print(f"QUARANTINED as spam ({report.spam_verdict.reason})")
            return 1
        for task in report.tasks:
            print(
                f"  task {task.task_id}: {task.ref} "
                f"confidence={task.confidence:.2f} -> {task.decision.value}"
            )
        if args.trace and report.trace is not None:
            print(f"trace (appended to {_trace_path(args.db)}):")
            for line in format_trace(report.trace, indent=1):
                print(line)
        return 0
    finally:
        _close_engine(nebula)


def _parse_batch_line(line: str) -> AnnotationRequest:
    """One batch-file line: ``text`` or ``TABLE:ROWID<TAB>text``."""
    focal, tab, rest = line.partition("\t")
    if tab and ":" in focal and focal.partition(":")[2].isdigit():
        return AnnotationRequest.build(rest.strip(), [_parse_ref(focal.strip())])
    return AnnotationRequest.build(line.strip())


def cmd_annotate_batch(args: argparse.Namespace) -> int:
    import dataclasses
    import time

    with open(args.file) as handle:
        lines = [line.rstrip("\n") for line in handle]
    requests = [_parse_batch_line(line) for line in lines if line.strip()]
    if args.author:
        requests = [
            dataclasses.replace(request, author=args.author)
            for request in requests
        ]
    if not requests:
        print(f"no annotations in {args.file}", file=sys.stderr)
        return 2
    nebula = _open_engine(args.db, args.epsilon, workers=args.workers)
    try:
        started = time.perf_counter()
        reports = nebula.insert_annotations(requests)
        elapsed = time.perf_counter() - started
        nebula.connection.commit()
        tasks = sum(len(report.tasks) for report in reports)
        spam = sum(
            1
            for report in reports
            if report.spam_verdict is not None and report.spam_verdict.is_spam
        )
        rate = len(reports) / elapsed if elapsed > 0 else float("inf")
        print(
            f"inserted {len(reports)} annotations in {elapsed * 1e3:.1f}ms "
            f"({rate:.1f}/s): {tasks} verification tasks, {spam} quarantined"
        )
        stats = nebula.executor.last_stats
        if stats is not None and stats.total_sql:
            print(
                f"shared execution: {stats.executed_statements}/"
                f"{stats.total_sql} statements executed "
                f"(hit ratio {stats.hit_ratio:.2f})"
            )
        if nebula.parallel is not None:
            print(f"parallel Stage-2: {args.workers} workers")
        if args.verbose:
            for report in reports:
                print(
                    f"  annotation {report.annotation_id}: "
                    f"{len(report.tasks)} tasks"
                )
        return 0
    finally:
        _close_engine(nebula)


def cmd_trace(args: argparse.Namespace) -> int:
    if not args.path and not args.db:
        print("trace: one of --db or --path is required", file=sys.stderr)
        return 2
    path = args.path or _trace_path(args.db)
    if args.validate:
        try:
            validate_trace_file(path, minimum=max(args.last, 1))
        except ValueError as error:
            print(f"trace validation failed: {error}", file=sys.stderr)
            return 1
        print(f"{path}: OK")
    if not os.path.exists(path):
        print(f"no trace file at {path} (run annotate --trace first)")
        return 0 if args.validate else 1
    traces = read_jsonl_traces(path)
    for record in traces[-max(args.last, 0):]:
        for line in format_trace(record):
            print(line)
        print()
    return 0


def cmd_pending(args: argparse.Namespace) -> int:
    nebula = _open_engine(args.db, args.epsilon)
    try:
        pending = nebula.pending_tasks()
        if not pending:
            print("no pending verification tasks")
            return 0
        from .core.explain import explain_task

        for task in pending:
            explanation = explain_task(nebula.manager, task)
            for line in explanation.lines():
                print(line)
            print()
        return 0
    finally:
        _close_engine(nebula)


def cmd_verify(args: argparse.Namespace) -> int:
    nebula = _open_engine(args.db, args.epsilon)
    try:
        statement = (
            "REJECT" if args.reject else "VERIFY"
        ) + f" ATTACHMENT {args.task}"
        result = nebula.execute_command(statement)
        nebula.connection.commit()
        print(result.message)
        return 0
    finally:
        _close_engine(nebula)


def cmd_demo(args: argparse.Namespace) -> int:
    db = generate_bio_database(
        BioDatabaseSpec(genes=100, proteins=60, publications=400, seed=args.seed)
    )
    nebula = Nebula(
        db.connection, db.meta, NebulaConfig(epsilon=0.6), aliases=db.aliases
    )
    gene, other = db.genes[0], db.genes[1]
    text = f"From the exp, this gene is correlated to gene {other.gid}."
    print(f"inserting: {text!r} (attached to {gene.gid})")
    report = nebula.insert_annotation(
        text, attach_to=[db.resolve("gene", gene.gid)], author="demo"
    )
    for task in report.tasks:
        print(f"  {task.ref} confidence={task.confidence:.2f} -> {task.decision.value}")
    nebula.close()
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Drive the concurrent annotation service with N client threads.

    Every client mixes ingestion (through the service's admission-
    controlled queue) with searches (served by concurrent readers);
    exit status 1 when any request is lost — neither acknowledged,
    failed, nor rejected — or the shutdown was not clean.
    """
    import threading

    from .errors import ServiceOverloadedError
    from .service import AnnotationService, ServiceConfig

    nebula = _open_engine(args.db, args.epsilon)
    gids = [
        row[0]
        for row in nebula.connection.execute("SELECT GID FROM Gene LIMIT 16")
    ]
    if not gids:
        print(f"{args.db} has no Gene rows; run `repro generate` first",
              file=sys.stderr)
        _close_engine(nebula)
        return 2
    service = AnnotationService(
        nebula,
        ServiceConfig(
            queue_capacity=args.queue_capacity,
            max_batch=args.max_batch,
            default_deadline=args.deadline,
        ),
    ).start()
    counts = {"ok": 0, "rejected": 0, "failed": 0, "searches": 0}
    lock = threading.Lock()

    def client(c: int) -> None:
        for i in range(args.requests):
            gid = gids[(c + i) % len(gids)]
            text = f"client {c} note {i}: gene {gid} flagged for review"
            try:
                ticket = service.submit(text, author=f"client-{c}")
            except ServiceOverloadedError:
                with lock:
                    counts["rejected"] += 1
                continue
            try:
                ticket.result(timeout=60.0)
                outcome = "ok"
            except Exception:
                outcome = "failed"
            with lock:
                counts[outcome] += 1
            if i % 3 == 0:
                service.find_annotations("flagged", limit=5)
                with lock:
                    counts["searches"] += 1

    threads = [
        threading.Thread(target=client, args=(c,), name=f"client-{c}")
        for c in range(args.clients)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    stats = service.stats()
    clean = service.stop()
    _close_engine(nebula)
    attempts = args.clients * args.requests
    accounted = counts["ok"] + counts["failed"] + counts["rejected"]
    lost = attempts - accounted
    print(
        f"{attempts} requests from {args.clients} clients: "
        f"{counts['ok']} ingested, {counts['rejected']} rejected "
        f"(admission control), {counts['failed']} failed, "
        f"{counts['searches']} concurrent searches"
    )
    print(
        f"service: {stats.batches} batches, peak shedding={stats.shedding}, "
        f"clean shutdown={clean}"
    )
    if lost or not clean:
        print(f"LOST {lost} request(s), clean={clean}", file=sys.stderr)
        return 1
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    """Delegate to nebula-lint, reusing its flag set verbatim."""
    from .analysis.cli import main as lint_main

    argv: list = list(args.paths)
    if args.json:
        argv.append("--json")
    if args.strict:
        argv.append("--strict")
    if args.baseline:
        argv.extend(["--baseline", args.baseline])
    if args.write_baseline:
        argv.extend(["--write-baseline", args.write_baseline])
    if args.rules:
        argv.extend(["--rules", args.rules])
    if args.list_rules:
        argv.append("--list-rules")
    return lint_main(argv)


# ----------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Nebula: proactive annotation management (SIGMOD 2015 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    generate = sub.add_parser("generate", help="generate a synthetic curated database")
    generate.add_argument("--db", required=True, help="output SQLite file")
    generate.add_argument("--genes", type=int, default=240)
    generate.add_argument("--proteins", type=int, default=140)
    generate.add_argument("--publications", type=int, default=1400)
    generate.add_argument("--community-size", type=int, default=10)
    generate.add_argument("--seed", type=int, default=7)
    generate.add_argument("--workload", help="also write the workload oracle JSON here")
    generate.set_defaults(func=cmd_generate)

    stats = sub.add_parser("stats", help="summarize an annotated database")
    stats.add_argument("--db", required=True)
    stats.set_defaults(func=cmd_stats)

    annotate = sub.add_parser("annotate", help="insert an annotation proactively")
    annotate.add_argument("--db", required=True)
    annotate.add_argument("--text", required=True)
    annotate.add_argument(
        "--attach", action="append", metavar="TABLE:ROWID", type=_parse_ref,
        help="manual attachment target (repeatable)",
    )
    annotate.add_argument("--author")
    annotate.add_argument("--epsilon", type=float, default=0.6)
    annotate.add_argument(
        "--trace", action="store_true",
        help="trace the pipeline pass; appends to <db>.trace.jsonl and "
        "accumulates metrics in <db>.metrics.json",
    )
    annotate.set_defaults(func=cmd_annotate)

    annotate_batch = sub.add_parser(
        "annotate-batch",
        help="insert a file of annotations through the batched fast path",
    )
    annotate_batch.add_argument("--db", required=True)
    annotate_batch.add_argument(
        "--file", required=True,
        help="one annotation per line: TEXT, or TABLE:ROWID<TAB>TEXT "
        "to attach manually",
    )
    annotate_batch.add_argument("--author", help="author recorded for every line")
    annotate_batch.add_argument("--epsilon", type=float, default=0.6)
    annotate_batch.add_argument(
        "--workers", type=int, default=0,
        help="parallel Stage-2 worker threads (0 = sequential; needs a "
        "file-backed database)",
    )
    annotate_batch.add_argument(
        "--verbose", action="store_true", help="also print one line per annotation"
    )
    annotate_batch.set_defaults(func=cmd_annotate_batch)

    trace = sub.add_parser("trace", help="pretty-print recorded pipeline traces")
    trace.add_argument("--db", help="database whose <db>.trace.jsonl to read")
    trace.add_argument("--path", help="explicit trace JSONL file (overrides --db)")
    trace.add_argument("--last", type=int, default=1, metavar="N",
                       help="show the most recent N traces (default 1)")
    trace.add_argument(
        "--validate", action="store_true",
        help="exit 1 unless the file holds >= N well-formed nested traces",
    )
    trace.set_defaults(func=cmd_trace)

    pending = sub.add_parser("pending", help="list pending verification tasks")
    pending.add_argument("--db", required=True)
    pending.add_argument("--epsilon", type=float, default=0.6)
    pending.set_defaults(func=cmd_pending)

    verify = sub.add_parser("verify", help="resolve a pending verification task")
    verify.add_argument("--db", required=True)
    verify.add_argument("--task", type=int, required=True)
    verify.add_argument("--reject", action="store_true", help="reject instead of verify")
    verify.add_argument("--epsilon", type=float, default=0.6)
    verify.set_defaults(func=cmd_verify)

    serve = sub.add_parser(
        "serve",
        help="exercise the concurrent annotation service with N clients",
    )
    serve.add_argument("--db", required=True)
    serve.add_argument("--clients", type=int, default=4,
                       help="concurrent client threads (default 4)")
    serve.add_argument("--requests", type=int, default=8,
                       help="annotations per client (default 8)")
    serve.add_argument("--queue-capacity", type=int, default=64)
    serve.add_argument("--max-batch", type=int, default=16)
    serve.add_argument("--deadline", type=float, default=None,
                       help="per-request deadline in seconds (default none)")
    serve.add_argument("--epsilon", type=float, default=0.6)
    serve.set_defaults(func=cmd_serve)

    demo = sub.add_parser("demo", help="run a tiny in-memory end-to-end demo")
    demo.add_argument("--seed", type=int, default=7)
    demo.set_defaults(func=cmd_demo)

    lint = sub.add_parser(
        "lint",
        help="run nebula-lint (project-specific static analysis) over a tree",
    )
    lint.add_argument("paths", nargs="*", help="files/dirs (default: repro source)")
    lint.add_argument("--json", action="store_true")
    lint.add_argument("--strict", action="store_true")
    lint.add_argument("--baseline", metavar="FILE")
    lint.add_argument("--write-baseline", metavar="FILE")
    lint.add_argument("--rules", metavar="IDS")
    lint.add_argument("--list-rules", action="store_true")
    lint.set_defaults(func=cmd_lint)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
