"""Learning ConceptRefs from the available annotations (paper footnote 2).

The paper assumes domain experts populate the ``ConceptRefs`` table, and
notes: "In extreme cases, a module can be developed for learning from the
available annotations the key concepts in the database that they
frequently reference, and by which column(s)."  This module is that
extension.

The learner scans the existing *true* attachments: for every annotation it
tokenizes the text, and for every attached tuple it checks which of the
tuple's column values literally appear among the tokens.  Columns whose
values are frequently used to reference their tuples become the learned
*referencing columns*; tables with at least one such column become learned
*concepts*.  The output is a ranked proposal the expert can accept into
NebulaMeta — or accept automatically via :func:`apply_proposals`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..annotations.engine import AnnotationManager
from ..storage.compat import Connection
from ..utils.sql import quote_identifier
from ..utils.tokenize import is_stopword, normalize_word, tokenize
from .concepts import ConceptRef
from .repository import NebulaMeta


@dataclass(frozen=True)
class ColumnEvidence:
    """How often one column's values appeared inside attached annotations."""

    table: str
    column: str
    #: Attachments whose annotation text contains this column's value.
    hits: int
    #: Attachments examined for this table.
    total: int

    @property
    def support(self) -> float:
        return self.hits / self.total if self.total else 0.0


@dataclass(frozen=True)
class ConceptProposal:
    """A learned concept: a table plus its ranked referencing columns."""

    table: str
    columns: Tuple[ColumnEvidence, ...]

    def to_concept_ref(self) -> ConceptRef:
        return ConceptRef.build(
            self.table,
            self.table,
            [[evidence.column] for evidence in self.columns],
        )


class ConceptLearner:
    """Mine referencing-column statistics from existing attachments."""

    def __init__(
        self,
        manager: AnnotationManager,
        min_support: float = 0.2,
        min_attachments: int = 10,
        max_annotations: Optional[int] = None,
    ) -> None:
        self.manager = manager
        self.connection: Connection = manager.connection
        self.min_support = min_support
        self.min_attachments = min_attachments
        self.max_annotations = max_annotations

    # ------------------------------------------------------------------

    def learn(self) -> List[ConceptProposal]:
        """Scan the attachments and propose concepts, best-supported first."""
        hits: Dict[Tuple[str, str], int] = {}
        totals: Dict[str, int] = {}
        token_cache: Dict[int, Set[str]] = {}

        pairs = self.manager.store.true_attachment_pairs()
        if self.max_annotations is not None:
            allowed = set(
                sorted({aid for aid, _ in pairs})[: self.max_annotations]
            )
            pairs = [(aid, ref) for aid, ref in pairs if aid in allowed]

        for annotation_id, ref in pairs:
            tokens = token_cache.get(annotation_id)
            if tokens is None:
                content = self.manager.annotation(annotation_id).content
                tokens = {
                    t.word for t in tokenize(content) if not is_stopword(t.word)
                }
                token_cache[annotation_id] = tokens
            totals[ref.table] = totals.get(ref.table, 0) + 1
            for column, value in self._row_values(ref.table, ref.rowid):
                if normalize_word(str(value)) in tokens:
                    key = (ref.table, column)
                    hits[key] = hits.get(key, 0) + 1

        proposals: List[ConceptProposal] = []
        for table, total in sorted(totals.items()):
            if total < self.min_attachments:
                continue
            evidences = [
                ColumnEvidence(table=table, column=column, hits=count, total=total)
                for (t, column), count in hits.items()
                if t == table and count / total >= self.min_support
            ]
            if not evidences:
                continue
            evidences.sort(key=lambda e: (-e.support, e.column))
            proposals.append(ConceptProposal(table=table, columns=tuple(evidences)))
        proposals.sort(key=lambda p: -max(e.support for e in p.columns))
        return proposals

    def _row_values(self, table: str, rowid: int) -> List[Tuple[str, object]]:
        columns = [
            row[1]
            for row in self.connection.execute(
                f"PRAGMA table_info({quote_identifier(table)})"
            )
        ]
        select_list = ", ".join(quote_identifier(c) for c in columns)
        row = self.connection.execute(
            f"SELECT {select_list} FROM {quote_identifier(table)} WHERE rowid = ?",
            (rowid,),
        ).fetchone()
        if row is None:
            return []
        return [
            (column, value)
            for column, value in zip(columns, row)
            if value is not None and str(value).strip()
        ]


def apply_proposals(
    meta: NebulaMeta,
    proposals: Sequence[ConceptProposal],
    connection: Optional[Connection] = None,
) -> int:
    """Register learned proposals as concepts; returns how many were added.

    Tables already covered by an expert-defined concept are skipped — the
    learner supplements the experts, it does not override them.  With a
    ``connection``, the new referencing columns are bootstrapped (samples
    drawn, patterns inferred) immediately.
    """
    existing = {normalize_word(c.table) for c in meta.concepts}
    added = 0
    for proposal in proposals:
        if normalize_word(proposal.table) in existing:
            continue
        meta.add_concept(proposal.to_concept_ref())
        existing.add(normalize_word(proposal.table))
        added += 1
    if added and connection is not None:
        meta.bootstrap_from_connection(connection)
    return added
