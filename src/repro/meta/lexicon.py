"""Embedded lexical knowledge base — the offline WordNet substitute.

The paper consults WordNet for synonyms and hyponyms of English words when
deciding whether an annotation word references a schema item.  This
environment has no network access, so we ship a compact, hand-curated
lexicon that covers (a) the biological domain vocabulary the experiments
need, and (b) the generic database vocabulary (identifier, name, length,
sequence, ...).  The API mirrors what Nebula needs from WordNet: synonym
lookup and synonym testing, both symmetric within a synset.

The substitution is documented in DESIGN.md; because the signature-map
algorithms only ever ask "are these two words synonyms, and how strongly",
a smaller lexicon changes coverage of arbitrary English, not the code path.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Mapping, Set, Tuple

from ..utils.tokenize import normalize_word

#: Hand-curated synsets.  Each inner tuple is one set of mutual synonyms.
_DEFAULT_SYNSETS: Tuple[Tuple[str, ...], ...] = (
    # --- database / schema vocabulary ---------------------------------
    ("gene", "locus", "cistron"),
    ("protein", "polypeptide", "enzyme"),
    ("family", "group", "class", "clan"),
    ("identifier", "id", "accession", "key"),
    ("name", "symbol", "label", "designation"),
    ("length", "size", "extent"),
    ("sequence", "seq", "strand"),
    ("function", "role", "activity"),
    ("organism", "species", "taxon"),
    ("publication", "article", "paper", "reference"),
    ("type", "kind", "category", "variety"),
    ("description", "definition", "summary"),
    ("pathway", "route", "cascade"),
    ("location", "position", "site", "locale"),
    # --- generic scientific English ------------------------------------
    ("experiment", "assay", "trial", "exp"),
    ("result", "outcome", "finding"),
    ("correlated", "related", "associated", "linked"),
    ("expression", "transcription"),
    ("mutation", "variant", "polymorphism"),
    ("structure", "conformation", "fold"),
    ("interaction", "binding", "association"),
    ("regulation", "control", "modulation"),
    ("analysis", "study", "investigation"),
    ("sample", "specimen", "aliquot"),
    ("measurement", "quantification", "assessment"),
    ("observed", "detected", "found", "noted"),
    ("significant", "notable", "marked"),
    ("increase", "rise", "elevation"),
    ("decrease", "drop", "reduction"),
)

#: Hypernym -> hyponyms edges (a small IS-A hierarchy, WordNet-style).
_DEFAULT_HYPONYMS: Mapping[str, Tuple[str, ...]] = {
    "molecule": ("protein", "enzyme", "polypeptide"),
    "record": ("gene", "protein", "publication"),
    "attribute": ("name", "length", "sequence", "family", "function"),
}


class Lexicon:
    """Synonym / hyponym lookup over a set of synsets.

    >>> lex = Lexicon([("gene", "locus")])
    >>> lex.are_synonyms("Gene", "locus")
    True
    >>> sorted(lex.synonyms("gene"))
    ['locus']
    """

    def __init__(
        self,
        synsets: Iterable[Tuple[str, ...]] = (),
        hyponyms: Mapping[str, Tuple[str, ...]] = (),
    ) -> None:
        self._synsets: List[FrozenSet[str]] = []
        self._membership: Dict[str, Set[int]] = {}
        self._hyponyms: Dict[str, FrozenSet[str]] = {}
        #: Bumped on every mutation; versions externally cached results.
        self._generation = 0
        for synset in synsets:
            self.add_synset(synset)
        for hypernym, words in dict(hyponyms).items():
            self.add_hyponyms(hypernym, words)

    @property
    def generation(self) -> int:
        return self._generation

    def add_synset(self, words: Iterable[str]) -> None:
        """Register a set of mutually synonymous words."""
        normalized = frozenset(normalize_word(w) for w in words)
        if len(normalized) < 2:
            return
        self._generation += 1
        index = len(self._synsets)
        self._synsets.append(normalized)
        for word in normalized:
            self._membership.setdefault(word, set()).add(index)

    def add_hyponyms(self, hypernym: str, words: Iterable[str]) -> None:
        """Register ``words`` as hyponyms (specializations) of ``hypernym``."""
        key = normalize_word(hypernym)
        self._generation += 1
        existing = set(self._hyponyms.get(key, frozenset()))
        existing.update(normalize_word(w) for w in words)
        self._hyponyms[key] = frozenset(existing)

    def synonyms(self, word: str) -> FrozenSet[str]:
        """All synonyms of ``word`` (excluding the word itself)."""
        key = normalize_word(word)
        found: Set[str] = set()
        for index in self._membership.get(key, ()):
            found.update(self._synsets[index])
        found.discard(key)
        return frozenset(found)

    def are_synonyms(self, first: str, second: str) -> bool:
        """True when the two words share at least one synset."""
        a, b = normalize_word(first), normalize_word(second)
        if a == b:
            return True
        return bool(self._membership.get(a, set()) & self._membership.get(b, set()))

    def hyponyms(self, word: str) -> FrozenSet[str]:
        """Direct hyponyms of ``word`` (empty when unknown)."""
        return self._hyponyms.get(normalize_word(word), frozenset())

    def is_hyponym(self, word: str, hypernym: str) -> bool:
        """True when ``word`` is a registered hyponym of ``hypernym``."""
        return normalize_word(word) in self.hyponyms(hypernym)

    def knows(self, word: str) -> bool:
        """True when the lexicon has any entry for ``word``."""
        key = normalize_word(word)
        return key in self._membership or key in self._hyponyms

    def __len__(self) -> int:
        return len(self._synsets)


#: The lexicon used by default throughout the reproduction.
DEFAULT_LEXICON = Lexicon(_DEFAULT_SYNSETS, _DEFAULT_HYPONYMS)
