"""Syntactic value patterns over database columns.

NebulaMeta stores regular-expression descriptions of column values — e.g.
the paper's ``Gene.ID`` values conform to ``JW[0-9]{4}`` and ``Gene.Name``
values to ``[a-z]{3}[A-Z]``.  A word matching a column's pattern is strong
evidence that the word is a value from that column's domain.

The paper notes patterns "can be even extracted using automated techniques";
:func:`infer_pattern` provides that automation: it generalizes a sample of
values into a character-class template when the sample is syntactically
homogeneous.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Pattern, Sequence


@dataclass(frozen=True)
class ValuePattern:
    """A compiled, anchored regular expression describing column values."""

    #: Human-readable pattern source (unanchored).
    source: str
    #: Case sensitivity matters for identifier schemes like ``grpC``.
    case_sensitive: bool = True
    _compiled: Pattern[str] = field(init=False, repr=False, compare=False, hash=False, default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        flags = 0 if self.case_sensitive else re.IGNORECASE
        object.__setattr__(self, "_compiled", re.compile(rf"\A(?:{self.source})\Z", flags))

    def matches(self, value: str) -> bool:
        """Full-string match of ``value`` against the pattern.

        >>> ValuePattern(r"JW[0-9]{4}").matches("JW0014")
        True
        >>> ValuePattern(r"JW[0-9]{4}").matches("JW14")
        False
        """
        return self._compiled.match(value) is not None


# Character classes used for pattern inference, most specific first.
_CLASSES: Sequence[tuple] = (
    ("0-9", str.isdigit),
    ("a-z", lambda ch: ch.isalpha() and ch.islower()),
    ("A-Z", lambda ch: ch.isalpha() and ch.isupper()),
)


def _classify(ch: str) -> str:
    for label, predicate in _CLASSES:
        if predicate(ch):
            return label
    return re.escape(ch)


def _template_of(value: str) -> Optional[List[str]]:
    """Per-character class template of ``value``, or None when empty."""
    if not value:
        return None
    return [_classify(ch) for ch in value]


def infer_pattern(values: Iterable[str], min_support: int = 3) -> Optional[ValuePattern]:
    """Generalize sample ``values`` into a :class:`ValuePattern`.

    The inference succeeds only when all sampled values share one
    per-position character-class template (equal lengths, equal classes) —
    mirroring rigid identifier schemes like ``JW0013``/``JW0014``.  Runs of
    the same class are collapsed into ``{n}`` counted classes.

    Returns None when the sample is too small or heterogeneous.

    >>> infer_pattern(["JW0013", "JW0014", "JW0027"]).source
    'JW[0-9]{4}'
    >>> infer_pattern(["abc", "a1c", "xyz"]) is None
    True
    """
    distinct = sorted({v for v in values if v})
    if len(distinct) < min_support:
        return None
    templates = [_template_of(v) for v in distinct]
    first = templates[0]
    if first is None or any(t != first for t in templates[1:]):
        return None
    # Collapse runs of identical classes into counted groups.
    parts: List[str] = []
    run_label, run_length = first[0], 1
    for label in first[1:]:
        if label == run_label:
            run_length += 1
            continue
        parts.append(_render_run(run_label, run_length))
        run_label, run_length = label, 1
    parts.append(_render_run(run_label, run_length))
    return ValuePattern("".join(parts))


def _render_run(label: str, length: int) -> str:
    if label in {"0-9", "a-z", "A-Z"}:
        return f"[{label}]" + (f"{{{length}}}" if length > 1 else "")
    # Literal characters repeat verbatim (they are already escaped).
    return label * length
