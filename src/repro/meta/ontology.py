"""Column ontologies (controlled vocabularies).

The paper's NebulaMeta stores, for selected columns, "any available
ontologies and vocabularies, e.g., the values within a Gene.Function column
may follow a specific ontology".  During the search phase, whether a keyword
belongs to a column's ontology feeds the value-domain estimate ``d(w, c)``.

An :class:`Ontology` here is a named term set with optional IS-A edges, so
membership can optionally be tested transitively (a term counts as a member
if it or one of its ancestors is in the ontology).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Mapping, Optional, Set

from ..utils.tokenize import normalize_word


class Ontology:
    """A controlled vocabulary with optional IS-A parent edges.

    >>> onto = Ontology("go-slim", ["transport", "binding"],
    ...                 parents={"ion transport": "transport"})
    >>> onto.contains("Binding")
    True
    >>> onto.contains("ion transport")
    True
    >>> onto.contains("swimming")
    False
    """

    def __init__(
        self,
        name: str,
        terms: Iterable[str],
        parents: Optional[Mapping[str, str]] = None,
    ) -> None:
        self.name = name
        self._terms: FrozenSet[str] = frozenset(normalize_word(t) for t in terms)
        self._parents: Dict[str, str] = {
            normalize_word(child): normalize_word(parent)
            for child, parent in (parents or {}).items()
        }

    @property
    def terms(self) -> FrozenSet[str]:
        return self._terms

    def contains(self, term: str, transitive: bool = True) -> bool:
        """Membership test; with ``transitive`` walk IS-A edges upward."""
        key = normalize_word(term)
        if key in self._terms:
            return True
        if not transitive:
            return False
        seen: Set[str] = set()
        while key in self._parents and key not in seen:
            seen.add(key)
            key = self._parents[key]
            if key in self._terms:
                return True
        return False

    def ancestors(self, term: str) -> FrozenSet[str]:
        """All transitive IS-A ancestors of ``term``."""
        key = normalize_word(term)
        found: Set[str] = set()
        while key in self._parents:
            key = self._parents[key]
            if key in found:
                break
            found.add(key)
        return frozenset(found)

    def __len__(self) -> int:
        return len(self._terms)

    def __contains__(self, term: str) -> bool:
        return self.contains(term)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Ontology({self.name!r}, {len(self._terms)} terms)"
