"""The ConceptRefs model (paper §5.1, Figure 3).

``ConceptRefs`` is a system table listing the key *concepts* of the database
and the most probable ways annotations reference them.  Each concept names a
database table and one or more *referencing alternatives*; an alternative is
a single column (``Gene.ID``) or a column combination (``PName & PType``).

Concepts do not have to map 1:1 to tables — the paper's example stores both
the ``Gene`` and ``Gene Family`` concepts over the single ``Gene`` table.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Iterable, Tuple

from ..utils.tokenize import normalize_word


@dataclass(frozen=True)
class ReferencingColumn:
    """One column participating in a referencing alternative."""

    table: str
    column: str

    @property
    def qualified(self) -> str:
        return f"{self.table}.{self.column}"


@dataclass(frozen=True)
class ConceptRef:
    """One row of the ConceptRefs table.

    Attributes
    ----------
    concept:
        Concept name as experts refer to it, e.g. ``"Gene"``.
    table:
        Database table storing the concept's tuples.
    referenced_by:
        Tuple of referencing alternatives; each alternative is itself a
        tuple of :class:`ReferencingColumn` (single-column alternatives are
        1-tuples, combinations such as ``(PName & PType)`` are longer).
    equivalent_names:
        Expert-provided aliases for the concept ("gene id" for "GID", ...).
    """

    concept: str
    table: str
    referenced_by: Tuple[Tuple[ReferencingColumn, ...], ...]
    equivalent_names: FrozenSet[str] = field(default_factory=frozenset)

    @classmethod
    def build(
        cls,
        concept: str,
        table: str,
        referenced_by: Iterable[Iterable[str]],
        equivalent_names: Iterable[str] = (),
    ) -> "ConceptRef":
        """Convenience constructor from plain strings.

        ``referenced_by`` takes column names (optionally ``table.column``
        qualified); unqualified names resolve against ``table``.

        >>> ref = ConceptRef.build("Protein", "Protein",
        ...                        [["PID"], ["PName", "PType"]])
        >>> [tuple(c.column for c in alt) for alt in ref.referenced_by]
        [('PID',), ('PName', 'PType')]
        """
        alternatives = []
        for alternative in referenced_by:
            columns = []
            for name in alternative:
                if "." in name:
                    tbl, col = name.split(".", 1)
                else:
                    tbl, col = table, name
                columns.append(ReferencingColumn(table=tbl, column=col))
            alternatives.append(tuple(columns))
        return cls(
            concept=concept,
            table=table,
            referenced_by=tuple(alternatives),
            equivalent_names=frozenset(normalize_word(n) for n in equivalent_names),
        )

    @property
    def referencing_columns(self) -> FrozenSet[ReferencingColumn]:
        """Flat set of every column appearing in any alternative."""
        return frozenset(col for alt in self.referenced_by for col in alt)

    def matches_name(self, word: str) -> bool:
        """True when ``word`` equals the concept name or an equivalent name."""
        key = normalize_word(word)
        return key == normalize_word(self.concept) or key in self.equivalent_names
