"""NebulaMeta: the auxiliary information repository (paper §5.1).

NebulaMeta integrates six sources of auxiliary information used to decide
whether an annotation word is part of an embedded reference:

1. a lexical knowledge base of synonyms (:mod:`repro.meta.lexicon`, our
   offline stand-in for WordNet);
2. expert-provided equivalent names for tables and columns;
3. per-column ontologies / controlled vocabularies (:mod:`repro.meta.ontology`);
4. syntactic value patterns, i.e. regular expressions over column values,
   optionally inferred from data (:mod:`repro.meta.patterns`);
5. random samples drawn from columns lacking ontology or pattern
   (:mod:`repro.meta.sampling`);
6. the ``ConceptRefs`` table mapping database concepts to the columns by
   which annotations usually reference them (:mod:`repro.meta.concepts`).

Everything is aggregated by :class:`repro.meta.repository.NebulaMeta`.
"""

from .concepts import ConceptRef, ReferencingColumn
from .lexicon import Lexicon, DEFAULT_LEXICON
from .ontology import Ontology
from .patterns import ValuePattern, infer_pattern
from .sampling import ColumnSample
from .repository import NebulaMeta
from .learning import ConceptLearner, ConceptProposal, apply_proposals

__all__ = [
    "ConceptRef",
    "ReferencingColumn",
    "Lexicon",
    "DEFAULT_LEXICON",
    "Ontology",
    "ValuePattern",
    "infer_pattern",
    "ColumnSample",
    "NebulaMeta",
    "ConceptLearner",
    "ConceptProposal",
    "apply_proposals",
]
