"""Column value samples and sample-based domain matching.

For columns without an ontology or syntactic pattern, NebulaMeta keeps a
random sample of the column's values (paper §5.1, item 5).  Whether a word
"has good matching with c's drawn sample" then feeds the value-domain
estimate ``d(w, c)``.

Matching is two-tiered:

* **exact membership** in the sample (strong evidence);
* **shape similarity** — the word resembles sampled values in length and
  character composition (weak evidence), which is what lets a sample of
  gene names vouch for an unseen gene name.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

from ..utils.tokenize import normalize_word


def _shape_vector(value: str) -> Tuple[float, float, float, float]:
    """(length, digit-ratio, upper-ratio, alpha-ratio) shape descriptor."""
    if not value:
        return (0.0, 0.0, 0.0, 0.0)
    n = len(value)
    digits = sum(ch.isdigit() for ch in value)
    uppers = sum(ch.isupper() for ch in value)
    alphas = sum(ch.isalpha() for ch in value)
    return (float(n), digits / n, uppers / n, alphas / n)


def _shape_similarity(a: str, b: str) -> float:
    """Similarity in [0, 1] between the shape descriptors of two strings."""
    va, vb = _shape_vector(a), _shape_vector(b)
    if va[0] == 0 or vb[0] == 0:
        return 0.0
    length_sim = min(va[0], vb[0]) / max(va[0], vb[0])
    ratio_sim = 1.0 - (abs(va[1] - vb[1]) + abs(va[2] - vb[2]) + abs(va[3] - vb[3])) / 3.0
    return max(0.0, length_sim * ratio_sim)


@dataclass
class ColumnSample:
    """A drawn sample of one column's values plus matching helpers."""

    table: str
    column: str
    values: Sequence[str]

    def __post_init__(self) -> None:
        self._normalized = frozenset(normalize_word(v) for v in self.values)

    @classmethod
    def draw(
        cls,
        table: str,
        column: str,
        population: Iterable[str],
        size: int = 50,
        rng: Optional[random.Random] = None,
    ) -> "ColumnSample":
        """Draw a random sample of ``size`` distinct values from ``population``."""
        rng = rng or random.Random(0)
        distinct: List[str] = sorted({str(v) for v in population if v is not None})
        if len(distinct) > size:
            distinct = rng.sample(distinct, size)
        return cls(table=table, column=column, values=tuple(distinct))

    def contains(self, word: str) -> bool:
        """Exact (normalized) membership of ``word`` in the sample."""
        return normalize_word(word) in self._normalized

    def match_score(self, word: str) -> float:
        """Graded evidence that ``word`` belongs to this column's domain.

        Returns 1.0 on exact sample membership, otherwise the best shape
        similarity against the sample, damped to at most 0.7 so shape-only
        evidence can never outrank exact membership.
        """
        if not self.values:
            return 0.0
        if self.contains(word):
            return 1.0
        best = max(_shape_similarity(word, v) for v in self.values)
        return 0.7 * best

    def __len__(self) -> int:
        return len(self.values)
