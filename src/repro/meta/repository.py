"""The NebulaMeta repository (paper §5.1).

``NebulaMeta`` aggregates every auxiliary-information source Nebula consults
while analyzing an annotation:

* the ``ConceptRefs`` table (key concepts + referencing columns);
* expert-provided equivalent names for tables and columns;
* the lexical knowledge base (:class:`~repro.meta.lexicon.Lexicon`);
* per-column ontologies, value patterns, and drawn samples.

It exposes the two probability estimators the signature maps are built on:

``concept_mappings(word)``
    candidate mappings of a word to a *table name* or *column name*, each
    with the estimate ``p(w, c)`` — exact-name and equivalent-name matches
    score higher than lexicon-synonym matches, per the paper.

``value_mappings(word)``
    candidate mappings of a word to a *column's value domain*, each with the
    estimate ``d(w, c)`` combining data-type compatibility, ontology
    membership, pattern conformance, and sample matching.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, cast

from ..errors import MetadataError, UnknownConceptError
from ..perf.cache import MISS, AnalysisCache
from ..storage.compat import Connection
from ..utils.rng import make_rng
from ..utils.sql import quote_identifier
from ..utils.tokenize import is_stopword, normalize_word
from .concepts import ConceptRef, ReferencingColumn
from .lexicon import DEFAULT_LEXICON, Lexicon
from .ontology import Ontology
from .patterns import ValuePattern, infer_pattern
from .sampling import ColumnSample

# Score constants for p(w, c): exact / equivalent / synonym name matches.
EXACT_NAME_SCORE = 0.95
EQUIVALENT_NAME_SCORE = 0.85
SYNONYM_NAME_SCORE = 0.65

# Score components for d(w, c).
TYPE_COMPATIBILITY_SCORE = 0.25
ONTOLOGY_MEMBER_SCORE = 0.65
PATTERN_MATCH_SCORE = 0.65
PATTERN_CASEFOLD_SCORE = 0.35
SAMPLE_WEIGHT = 0.65


@dataclass(frozen=True)
class ConceptMapping:
    """A candidate mapping of an annotation word to a schema item."""

    #: ``"table"`` or ``"column"`` — the rectangle / triangle of Figure 4.
    kind: str
    #: The concept (ConceptRefs row) this mapping belongs to.
    concept: str
    #: Table the mapping points at.
    table: str
    #: Column the mapping points at (None for table mappings).
    column: Optional[str]
    #: The estimate p(w, c) in [0, 1].
    score: float


@dataclass(frozen=True)
class ValueMapping:
    """A candidate mapping of an annotation word to a column's domain."""

    table: str
    column: str
    #: The estimate d(w, c) in [0, 1].
    score: float
    #: Which evidence fired, for verification-task evidence reports.
    evidence: Tuple[str, ...] = ()


def _type_compatible(word: str, declared_type: str) -> bool:
    """Whether ``word`` could be a value of a column of ``declared_type``."""
    kind = (declared_type or "TEXT").upper()
    if "INT" in kind:
        return word.lstrip("+-").isdigit()
    if "REAL" in kind or "FLOA" in kind or "DOUB" in kind:
        try:
            float(word)
        except ValueError:
            return False
        return True
    return True  # TEXT accepts anything


class NebulaMeta:
    """Aggregated auxiliary-information repository."""

    def __init__(self, lexicon: Optional[Lexicon] = None) -> None:
        self.lexicon = lexicon if lexicon is not None else DEFAULT_LEXICON
        self._concepts: Dict[str, ConceptRef] = {}
        self._table_equivalents: Dict[str, set] = {}
        self._column_equivalents: Dict[Tuple[str, str], set] = {}
        self._column_types: Dict[Tuple[str, str], str] = {}
        self._ontologies: Dict[Tuple[str, str], Ontology] = {}
        self._patterns: Dict[Tuple[str, str], ValuePattern] = {}
        self._samples: Dict[Tuple[str, str], ColumnSample] = {}
        #: Bumped on every registration; versions the estimator memo table.
        self._generation = 0
        # Private per-repository memo table for concept_mappings /
        # value_mappings — a repository may be shared across engines, so
        # the cache must live with (and be invalidated by) the repository
        # itself.  Mutations MUST go through the registration methods
        # above for the generation stamp to stay honest.
        self._cache = AnalysisCache()

    @property
    def generation(self) -> int:
        return self._generation

    def configure_cache(self, max_entries: int) -> None:
        """Resize the estimator memo table (0 disables memoization).

        Swapping in a fresh cache is always safe — entries are pure
        derivations of repository state.  Mainly an ablation knob: the
        benchmarks use it to measure the un-memoized pipeline.
        """
        self._cache = AnalysisCache(max_entries)

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------

    def add_concept(self, concept: ConceptRef) -> None:
        """Register a ConceptRefs row."""
        self._generation += 1
        self._concepts[normalize_word(concept.concept)] = concept

    def get_concept(self, name: str) -> ConceptRef:
        try:
            return self._concepts[normalize_word(name)]
        except KeyError:
            raise UnknownConceptError(name) from None

    @property
    def concepts(self) -> Tuple[ConceptRef, ...]:
        return tuple(self._concepts.values())

    def add_table_equivalents(self, table: str, names: Iterable[str]) -> None:
        """Expert aliases for a table name (e.g. 'genes' for 'Gene')."""
        self._generation += 1
        bucket = self._table_equivalents.setdefault(normalize_word(table), set())
        bucket.update(normalize_word(n) for n in names)

    def add_column_equivalents(self, table: str, column: str, names: Iterable[str]) -> None:
        """Expert aliases for a column name (e.g. 'gene id' for 'GID')."""
        self._generation += 1
        key = (normalize_word(table), normalize_word(column))
        bucket = self._column_equivalents.setdefault(key, set())
        bucket.update(normalize_word(n) for n in names)

    def set_column_type(self, table: str, column: str, declared_type: str) -> None:
        self._generation += 1
        self._column_types[(normalize_word(table), normalize_word(column))] = declared_type

    def attach_ontology(self, table: str, column: str, ontology: Ontology) -> None:
        self._generation += 1
        self._ontologies[(normalize_word(table), normalize_word(column))] = ontology

    def attach_pattern(self, table: str, column: str, pattern: ValuePattern) -> None:
        self._generation += 1
        self._patterns[(normalize_word(table), normalize_word(column))] = pattern

    def attach_sample(self, sample: ColumnSample) -> None:
        self._generation += 1
        self._samples[(normalize_word(sample.table), normalize_word(sample.column))] = sample

    def ontology_for(self, table: str, column: str) -> Optional[Ontology]:
        return self._ontologies.get((normalize_word(table), normalize_word(column)))

    def pattern_for(self, table: str, column: str) -> Optional[ValuePattern]:
        return self._patterns.get((normalize_word(table), normalize_word(column)))

    def sample_for(self, table: str, column: str) -> Optional[ColumnSample]:
        return self._samples.get((normalize_word(table), normalize_word(column)))

    # ------------------------------------------------------------------
    # Bootstrap from a live database
    # ------------------------------------------------------------------

    def bootstrap_from_connection(
        self,
        connection: Connection,
        sample_size: int = 50,
        infer_patterns: bool = True,
        seed: Optional[int] = 7,
    ) -> None:
        """Harvest column types, samples, and inferred patterns.

        For every referencing column of every registered concept, this
        records the declared SQL type, draws a value sample, and — when
        ``infer_patterns`` — tries to generalize the sample into a syntactic
        :class:`ValuePattern`.  Columns that obtain a pattern keep their
        sample too (used for evidence), but per the paper the sample only
        contributes to ``d(w, c)`` when neither ontology nor pattern exist.
        """
        rng = make_rng(seed, "meta-sampling")
        for concept in self.concepts:
            for column in concept.referencing_columns:
                self._bootstrap_column(connection, column, sample_size, infer_patterns, rng)

    def _bootstrap_column(
        self,
        connection: Connection,
        column: ReferencingColumn,
        sample_size: int,
        infer_patterns: bool,
        rng: random.Random,
    ) -> None:
        key = (normalize_word(column.table), normalize_word(column.column))
        cursor = connection.execute(
            f"PRAGMA table_info({quote_identifier(column.table)})"
        )
        declared = {row[1].casefold(): (row[2] or "TEXT") for row in cursor.fetchall()}
        if column.column.casefold() not in declared:
            raise MetadataError(
                f"referencing column {column.qualified} absent from database schema"
            )
        self._column_types[key] = declared[column.column.casefold()]
        rows = connection.execute(
            f"SELECT DISTINCT {quote_identifier(column.column)} "
            f"FROM {quote_identifier(column.table)} "
            f"WHERE {quote_identifier(column.column)} IS NOT NULL LIMIT 5000"
        ).fetchall()
        population = [str(r[0]) for r in rows]
        sample = ColumnSample.draw(
            column.table, column.column, population, size=sample_size, rng=rng
        )
        self.attach_sample(sample)
        if infer_patterns and key not in self._patterns:
            pattern = infer_pattern(population[: max(200, sample_size)])
            if pattern is not None:
                self.attach_pattern(column.table, column.column, pattern)

    # ------------------------------------------------------------------
    # p(w, c): concept-name matching
    # ------------------------------------------------------------------

    def concept_mappings(self, word: str) -> List[ConceptMapping]:
        """All candidate schema-item mappings of ``word`` with p(w, c) > 0.

        Matching tiers (paper §5.2.1 Step 1): exact name > equivalent name >
        lexicon synonym.  Stopwords never map.

        Memoized per exact word string, versioned on the repository and
        lexicon generations.
        """
        stamp = self._stamp()
        cached = self._cache.get("meta.concepts", word, stamp)
        if cached is not MISS:
            return list(cast(Tuple[ConceptMapping, ...], cached))
        computed = self._concept_mappings(word)
        self._cache.put("meta.concepts", word, stamp, tuple(computed))
        return computed

    def _stamp(self) -> Tuple[int, int]:
        return (self._generation, self.lexicon.generation)

    def _concept_mappings(self, word: str) -> List[ConceptMapping]:
        key = normalize_word(word)
        if not key or is_stopword(key):
            return []
        mappings: List[ConceptMapping] = []
        for concept in self.concepts:
            table_score = self._name_score(
                key,
                canonical=concept.table,
                equivalents=self._table_equivalents.get(normalize_word(concept.table), set())
                | ({normalize_word(concept.concept)} | set(concept.equivalent_names)),
            )
            if table_score > 0.0:
                mappings.append(
                    ConceptMapping(
                        kind="table",
                        concept=concept.concept,
                        table=concept.table,
                        column=None,
                        score=table_score,
                    )
                )
            for column in concept.referencing_columns:
                column_key = (normalize_word(column.table), normalize_word(column.column))
                column_score = self._name_score(
                    key,
                    canonical=column.column,
                    equivalents=self._column_equivalents.get(column_key, set()),
                )
                if column_score > 0.0:
                    mappings.append(
                        ConceptMapping(
                            kind="column",
                            concept=concept.concept,
                            table=column.table,
                            column=column.column,
                            score=column_score,
                        )
                    )
        return _dedupe_concept_mappings(mappings)

    def _name_score(self, word: str, canonical: str, equivalents: set) -> float:
        canonical_key = normalize_word(canonical)
        if word == canonical_key:
            return EXACT_NAME_SCORE
        if word in equivalents:
            return EQUIVALENT_NAME_SCORE
        if self.lexicon.are_synonyms(word, canonical_key) or any(
            self.lexicon.are_synonyms(word, eq) for eq in equivalents
        ):
            return SYNONYM_NAME_SCORE
        return 0.0

    # ------------------------------------------------------------------
    # d(w, c): value-domain matching
    # ------------------------------------------------------------------

    def value_mappings(self, word: str) -> List[ValueMapping]:
        """All candidate value-domain mappings of ``word`` with d(w, c) > 0.

        Per the paper (§5.2.1 Step 2): data-type compatibility is a
        prerequisite; ontology membership and pattern conformance add strong
        evidence; the drawn sample contributes only when the column has
        neither an ontology nor a pattern.

        Memoized per exact word string — pattern matching is surface- and
        case-sensitive, so the key must not be normalized.
        """
        stamp = self._stamp()
        cached = self._cache.get("meta.values", word, stamp)
        if cached is not MISS:
            return list(cast(Tuple[ValueMapping, ...], cached))
        computed = self._value_mappings(word)
        self._cache.put("meta.values", word, stamp, tuple(computed))
        return computed

    def _value_mappings(self, word: str) -> List[ValueMapping]:
        surface = word.strip()
        key = normalize_word(word)
        if not surface or not key or is_stopword(key):
            return []
        mappings: List[ValueMapping] = []
        seen: set = set()
        for concept in self.concepts:
            for column in concept.referencing_columns:
                column_key = (normalize_word(column.table), normalize_word(column.column))
                if column_key in seen:
                    continue
                seen.add(column_key)
                mapping = self._value_score(surface, column)
                if mapping is not None:
                    mappings.append(mapping)
        mappings.sort(key=lambda m: (-m.score, m.table, m.column))
        return mappings

    def _value_score(self, word: str, column: ReferencingColumn) -> Optional[ValueMapping]:
        key = (normalize_word(column.table), normalize_word(column.column))
        declared_type = self._column_types.get(key, "TEXT")
        if not _type_compatible(word, declared_type):
            return None
        score = TYPE_COMPATIBILITY_SCORE
        evidence: List[str] = [f"type:{declared_type}"]
        ontology = self._ontologies.get(key)
        pattern = self._patterns.get(key)
        if ontology is not None and ontology.contains(word):
            score += ONTOLOGY_MEMBER_SCORE
            evidence.append(f"ontology:{ontology.name}")
        if pattern is not None:
            if pattern.matches(word):
                score += PATTERN_MATCH_SCORE
                evidence.append(f"pattern:{pattern.source}")
            elif ValuePattern(pattern.source, case_sensitive=False).matches(word):
                score += PATTERN_CASEFOLD_SCORE
                evidence.append(f"pattern~:{pattern.source}")
        if ontology is None and pattern is None:
            sample = self._samples.get(key)
            if sample is not None:
                contribution = SAMPLE_WEIGHT * sample.match_score(word)
                if contribution > 0.0:
                    score += contribution
                    evidence.append("sample")
        if score <= TYPE_COMPATIBILITY_SCORE:
            return None
        return ValueMapping(
            table=column.table,
            column=column.column,
            score=min(score, 1.0),
            evidence=tuple(evidence),
        )


def _dedupe_concept_mappings(mappings: Sequence[ConceptMapping]) -> List[ConceptMapping]:
    """Keep the best-scoring mapping per (kind, table, column) target."""
    best: Dict[Tuple[str, str, Optional[str]], ConceptMapping] = {}
    for mapping in mappings:
        target = (mapping.kind, normalize_word(mapping.table), mapping.column)
        current = best.get(target)
        if current is None or mapping.score > current.score:
            best[target] = mapping
    ordered = sorted(best.values(), key=lambda m: (-m.score, m.table, m.column or ""))
    return ordered
