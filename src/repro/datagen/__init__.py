"""Synthetic curated bio-database and annotation workloads.

The paper evaluates on an 18 GB UniProt extract (Gene, Protein, and
Publication tables).  That dataset is unavailable offline, so this package
generates a *synthetic equivalent* (see DESIGN.md, "Substitutions"):

* the same schema shape and FK-PK relationships (Protein N:1 Gene,
  Protein N:M Publication);
* UniProt-style rigid identifier schemes (``JW####`` gene ids,
  3-lowercase+1-uppercase gene names, ``P#####`` protein accessions) so
  pattern inference and pattern matching behave as in the paper;
* publications whose abstracts *embed controlled numbers of references*
  to gene/protein tuples, with per-publication ground truth — the oracle
  that stands in for the paper's manual verification;
* community-structured co-citation, so references cluster around an
  annotation's focal in the ACG, giving the hop-distance profile its
  decreasing shape (Figure 7).

:mod:`repro.datagen.workload` carves the paper's workload out of this
world: the ``L^m`` size groups, ``L_{i-j}`` embedded-reference bands, the
distortion degree Δ, and the three dataset scales.
"""

from .vocab import VocabularyBuilder, GeneRecord, ProteinRecord
from .text import ReferenceStyle, TextSynthesizer, EmbeddedReference
from .biodb import BioDatabase, BioDatabaseSpec, PublicationTruth, generate_bio_database
from .stats import DatasetStats, collect_stats
from .workload import (
    AnnotationWorkload,
    WorkloadAnnotation,
    WorkloadSpec,
    DATASET_SCALES,
    generate_workload,
)

__all__ = [
    "VocabularyBuilder",
    "GeneRecord",
    "ProteinRecord",
    "ReferenceStyle",
    "TextSynthesizer",
    "EmbeddedReference",
    "BioDatabase",
    "BioDatabaseSpec",
    "PublicationTruth",
    "generate_bio_database",
    "AnnotationWorkload",
    "WorkloadAnnotation",
    "WorkloadSpec",
    "DATASET_SCALES",
    "generate_workload",
    "DatasetStats",
    "collect_stats",
]
