"""Identifier and word vocabularies for the synthetic bio-database.

The generated identifier schemes deliberately mirror the paper's examples:

* gene ids follow ``JW[0-9]{4}`` (the paper's ``JW0013`` etc.);
* gene names follow ``[a-z]{3}[A-Z]`` (the paper's ``grpC``, ``yaaB``);
* protein accessions follow ``P[0-9]{5}`` (UniProt style);
* protein names are *heterogeneous* on purpose (``G-Actin``-style,
  ``Ligase42``-style, plain stems), so pattern inference fails on them and
  NebulaMeta falls back to sample matching — exactly the tiered-evidence
  regime the paper's experiments rely on;
* the filler vocabulary contains common scientific English, a few
  protein-type ontology terms, and a few 4-letter lowercase words whose
  shape shadows gene names — the calibrated sources of false-positive
  keywords at the loose cutoff thresholds.

All drawing is deterministic under a seeded RNG.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Sequence, Set, Tuple

from ..utils.tokenize import normalize_word

#: Protein-type controlled vocabulary — becomes the PType ontology.
PROTEIN_TYPES: Tuple[str, ...] = (
    "enzyme",
    "kinase",
    "receptor",
    "transporter",
    "chaperone",
    "ligase",
    "protease",
    "polymerase",
)

#: Gene families.
GENE_FAMILIES: Tuple[str, ...] = tuple(f"F{i}" for i in range(1, 10))

#: Scientific filler words (never embedded references).  A few are 4-letter
#: lowercase (shape-shadowing gene names); a few are ontology terms.
FILLER_WORDS: Tuple[str, ...] = (
    "analysis", "approach", "assay", "cells", "cloning", "compared",
    "conditions", "confirmed", "consistent", "culture", "data", "derived",
    "described", "detected", "developed", "effect", "evidence", "exhibited",
    "experiments", "expression", "figure", "findings", "growth", "identified",
    "increased", "indicated", "involved", "levels", "line", "measured",
    "mechanism", "method", "model", "observed", "obtained", "pathway",
    "performed", "phenotype", "presented", "previously", "process", "profile",
    "rate", "reduced", "region", "report", "response", "revealed", "role",
    "sampled", "shown", "signal", "strain", "strains", "studied", "suggest",
    "system", "technique", "tested", "tissue", "treatment", "validated",
    "wild", "yield",
)

#: Sentence templates the synthesizer fills with filler words.  ``{w}``
#: slots take filler words; templates containing ``{concept}`` mention a
#: schema concept, which is what lets loose cutoffs pair a junk value word
#: with a nearby concept into a false-positive query.
FILLER_TEMPLATES: Tuple[str, ...] = (
    "The {w} was {w} under standard {w}.",
    "Our {w} {w} a marked {w} in the {w}.",
    "These {w} were {w} with the {w} {w}.",
    "Further {w} {w} the {w} of this {w}.",
    "The {concept} {w} {w} showed a clear {w}.",
    "We {w} the {concept} {w} across all {w}.",
    "A {w} {w} was {w} during the {w} phase.",
    "This {w} is {w} with earlier {w} of the {w}.",
)

#: Concept words usable inside filler templates.
FILLER_CONCEPTS: Tuple[str, ...] = ("gene", "protein", "family", "sequence")

_LOWER = "abcdefghijklmnopqrstuvwxyz"
_UPPER = "ABCDEFGHIJKLMNPQRSTUVWXYZ"

_PROTEIN_STEMS = (
    "Actin", "Tubulin", "Ligase", "Kinase", "Helicase", "Ferritin",
    "Myosin", "Keratin", "Laminin", "Globin", "Lectin", "Amylase",
    "Catalase", "Elastin", "Fibrin", "Pepsin", "Renin", "Trypsin",
)


@dataclass(frozen=True)
class GeneRecord:
    gid: str
    name: str
    length: int
    seq: str
    family: str


@dataclass(frozen=True)
class ProteinRecord:
    pid: str
    pname: str
    ptype: str
    gid: str
    mass: float


class VocabularyBuilder:
    """Deterministic factory for identifiers, names, and filler text."""

    def __init__(self, rng: random.Random) -> None:
        self.rng = rng
        self._used_gene_names: Set[str] = set()
        self._filler_normalized = frozenset(normalize_word(w) for w in FILLER_WORDS)

    # ------------------------------------------------------------------
    # Identifiers
    # ------------------------------------------------------------------

    def gene_id(self, index: int) -> str:
        """``JW####`` — rigid scheme, pattern-inferable."""
        return f"JW{index:04d}"

    def protein_id(self, index: int) -> str:
        """``P#####`` — rigid scheme, pattern-inferable."""
        return f"P{index:05d}"

    def publication_id(self, index: int) -> str:
        """``PM######`` — rigid scheme."""
        return f"PM{index:06d}"

    def gene_name(self) -> str:
        """Fresh ``[a-z]{3}[A-Z]`` name, never colliding with filler words.

        The name space holds 26^3 x 25 combinations, so uniqueness holds
        comfortably for any realistic gene count.
        """
        while True:
            head = "".join(self.rng.choice(_LOWER) for _ in range(3))
            name = head + self.rng.choice(_UPPER)
            key = normalize_word(name)
            if key in self._filler_normalized or key in self._used_gene_names:
                continue
            self._used_gene_names.add(key)
            return name

    def protein_name(self, index: int) -> str:
        """Deliberately heterogeneous name formats (defeats pattern inference)."""
        stem = self.rng.choice(_PROTEIN_STEMS)
        shape = index % 3
        if shape == 0:
            return f"{self.rng.choice(_UPPER)}-{stem}"
        if shape == 1:
            return f"{stem}{self.rng.randrange(10, 99)}"
        return f"{stem.lower()}in{self.rng.randrange(1, 9)}"

    def dna_sequence(self, length: int = 8) -> str:
        return "".join(self.rng.choice("ACGT") for _ in range(length))

    # ------------------------------------------------------------------
    # Records
    # ------------------------------------------------------------------

    def gene(self, index: int) -> GeneRecord:
        return GeneRecord(
            gid=self.gene_id(index),
            name=self.gene_name(),
            length=self.rng.randrange(300, 2500),
            seq=self.dna_sequence(),
            family=self.rng.choice(GENE_FAMILIES),
        )

    def protein(self, index: int, gid: str) -> ProteinRecord:
        return ProteinRecord(
            pid=self.protein_id(index),
            pname=self.protein_name(index),
            ptype=self.rng.choice(PROTEIN_TYPES),
            gid=gid,
            mass=round(self.rng.uniform(10.0, 250.0), 2),
        )

    # ------------------------------------------------------------------
    # Filler text
    # ------------------------------------------------------------------

    def filler_sentence(self) -> str:
        """One filler sentence; occasionally name-drops a concept word."""
        template = self.rng.choice(FILLER_TEMPLATES)
        concept = self.rng.choice(FILLER_CONCEPTS)
        words: List[str] = []
        rendered = template
        while "{w}" in rendered:
            rendered = rendered.replace("{w}", self.rng.choice(FILLER_WORDS), 1)
        return rendered.replace("{concept}", concept)

    def publication_title(self) -> str:
        a, b = self.rng.choice(FILLER_WORDS), self.rng.choice(FILLER_WORDS)
        return f"A {a} {b} study of {self.rng.choice(FILLER_CONCEPTS)} function"
