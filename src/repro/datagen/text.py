"""Annotation-text synthesis with controlled embedded references.

The workload needs annotations whose text contains a *known* set of
embedded references (the oracle for Figures 11c and 15).  The synthesizer
renders each reference in one of the paper's context-match shapes:

* **TYPE1** — table + column + value: ``gene GID JW0014``;
* **TYPE2** — table + value: ``gene JW0014`` (the paper's common case);
* **TYPE3** — column + value: ``GID JW0014``;
* **BARE** — value only, relying on an *earlier* concept mention — the
  special case the backward concept search (§5.2.3 lines 8-12) exists
  for.  Bare references are always emitted inside a reference sentence
  whose leading concept word matches their kind, mirroring "gene ...
  JW0014 or grpC" in Alice's comment.

Reference sentences are interleaved with filler sentences up to the
annotation's byte budget.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from enum import Enum
from typing import List, Optional, Sequence, Tuple

from ..errors import WorkloadError
from .vocab import GeneRecord, ProteinRecord, VocabularyBuilder


class ReferenceStyle(str, Enum):
    TYPE1 = "type1"
    TYPE2 = "type2"
    TYPE3 = "type3"
    BARE = "bare"


@dataclass(frozen=True)
class EmbeddedReference:
    """Ground truth for one reference embedded in an annotation's text."""

    #: ``"gene"`` or ``"protein"``.
    kind: str
    #: Primary key of the referenced record (GID / PID).
    key: str
    #: The value keyword as written in the text (GID, name, PID, or PName).
    keyword: str
    #: Which column of the record the keyword came from.
    column: str
    #: Rendering shape used.
    style: ReferenceStyle


def _gene_keyword(gene: GeneRecord, rng: random.Random) -> Tuple[str, str]:
    """(keyword, column) — references by GID (60%) or by Name (40%)."""
    if rng.random() < 0.6:
        return gene.gid, "GID"
    return gene.name, "Name"


def _protein_keyword(protein: ProteinRecord, rng: random.Random) -> Tuple[str, str]:
    """(keyword, column) — references by PID (50%) or by PName (50%)."""
    if rng.random() < 0.5:
        return protein.pid, "PID"
    return protein.pname, "PName"


class TextSynthesizer:
    """Render annotations with a controlled set of embedded references."""

    def __init__(self, vocab: VocabularyBuilder, rng: random.Random) -> None:
        self.vocab = vocab
        self.rng = rng

    # ------------------------------------------------------------------

    def compose(
        self,
        genes: Sequence[GeneRecord],
        proteins: Sequence[ProteinRecord],
        max_bytes: int,
        filler_ratio: float = 0.6,
    ) -> Tuple[str, List[EmbeddedReference]]:
        """Build an annotation referencing ``genes`` and ``proteins``.

        The reference sentences are mandatory; filler sentences are
        appended while the byte budget allows (roughly ``filler_ratio`` of
        the remaining budget).  Raises :class:`WorkloadError` when the
        references alone exceed ``max_bytes``.
        """
        sentences: List[str] = []
        references: List[EmbeddedReference] = []
        for kind, records in (("gene", list(genes)), ("protein", list(proteins))):
            while records:
                take = min(len(records), self.rng.randrange(1, 4))
                chunk, records = records[:take], records[take:]
                sentence, refs = self._reference_sentence(kind, chunk)
                sentences.append(sentence)
                references.extend(refs)
        if not references:
            raise WorkloadError("an annotation needs at least one reference")

        text = " ".join(sentences)
        if len(text.encode()) > max_bytes:
            # Retry with the tersest rendering before giving up.
            text, references = self._terse(genes, proteins)
            if len(text.encode()) > max_bytes:
                raise WorkloadError(
                    f"{len(references)} references cannot fit in {max_bytes} bytes"
                )
            return text, references

        # Interleave filler while the budget allows.
        budget = max_bytes - len(text.encode())
        filler: List[str] = []
        while budget > 40 and self.rng.random() < filler_ratio:
            sentence = self.vocab.filler_sentence()
            cost = len(sentence.encode()) + 1
            if cost > budget:
                break
            filler.append(sentence)
            budget -= cost
        combined = self._interleave(sentences, filler)
        return " ".join(combined), references

    # ------------------------------------------------------------------

    def _reference_sentence(
        self, kind: str, records: Sequence
    ) -> Tuple[str, List[EmbeddedReference]]:
        """One sentence referencing 1-3 same-kind records.

        The first record takes a TYPE1/TYPE2/TYPE3 form; subsequent records
        are BARE values relying on the sentence's leading concept word.
        """
        refs: List[EmbeddedReference] = []
        keywords: List[str] = []
        columns: List[str] = []
        # One referencing column for the whole sentence: humans writing
        # "GID JW0013, JW0014 and JW0015" do not switch to names mid-list.
        if kind == "gene":
            sentence_column = "GID" if self.rng.random() < 0.6 else "Name"
        else:
            sentence_column = "PID" if self.rng.random() < 0.5 else "PName"
        for record in records:
            if kind == "gene":
                keyword = record.gid if sentence_column == "GID" else record.name
                column = sentence_column
                key = record.gid
            else:
                keyword = record.pid if sentence_column == "PID" else record.pname
                column = sentence_column
                key = record.pid
            keywords.append(keyword)
            columns.append(column)
            refs.append(
                EmbeddedReference(
                    kind=kind, key=key, keyword=keyword, column=column,
                    style=ReferenceStyle.BARE,  # fixed below for the head
                )
            )

        concept = kind if len(records) == 1 else kind + "s"
        style = self._head_style()
        if style is ReferenceStyle.TYPE1:
            head = f"{concept} {columns[0]} {keywords[0]}"
        elif style is ReferenceStyle.TYPE3:
            head = f"{columns[0]} {keywords[0]}"
        else:
            head = f"{concept} {keywords[0]}"
        refs[0] = EmbeddedReference(
            kind=kind, key=refs[0].key, keyword=keywords[0],
            column=columns[0], style=style,
        )
        tail = ""
        if len(keywords) == 2:
            tail = f" and also {keywords[1]}"
        elif len(keywords) > 2:
            middle = ", then ".join(keywords[1:-1])
            tail = f", notably {middle} and later {keywords[-1]}"
        verb = self.rng.choice(("We examined", "Results involve", "This concerns"))
        return f"{verb} {head}{tail}.", refs

    def _head_style(self) -> ReferenceStyle:
        roll = self.rng.random()
        if roll < 0.15:
            return ReferenceStyle.TYPE1
        if roll < 0.30:
            return ReferenceStyle.TYPE3
        return ReferenceStyle.TYPE2

    def _terse(
        self, genes: Sequence[GeneRecord], proteins: Sequence[ProteinRecord]
    ) -> Tuple[str, List[EmbeddedReference]]:
        """Tersest possible rendering: ``genes a, b proteins c.``"""
        parts: List[str] = []
        references: List[EmbeddedReference] = []
        if genes:
            keywords = []
            for gene in genes:
                keyword, column = _gene_keyword(gene, self.rng)
                keywords.append(keyword)
                references.append(
                    EmbeddedReference("gene", gene.gid, keyword, column, ReferenceStyle.BARE)
                )
            references[0] = EmbeddedReference(
                "gene", genes[0].gid, keywords[0],
                references[0].column, ReferenceStyle.TYPE2,
            )
            parts.append(("genes " if len(genes) > 1 else "gene ") + ", ".join(keywords))
        if proteins:
            keywords = []
            start = len(references)
            for protein in proteins:
                keyword, column = _protein_keyword(protein, self.rng)
                keywords.append(keyword)
                references.append(
                    EmbeddedReference(
                        "protein", protein.pid, keyword, column, ReferenceStyle.BARE
                    )
                )
            references[start] = EmbeddedReference(
                "protein", proteins[0].pid, keywords[0],
                references[start].column, ReferenceStyle.TYPE2,
            )
            parts.append(
                ("proteins " if len(proteins) > 1 else "protein ") + ", ".join(keywords)
            )
        return " ".join(parts) + ".", references

    def _interleave(self, sentences: List[str], filler: List[str]) -> List[str]:
        """Shuffle filler between reference sentences, references first."""
        combined = list(sentences)
        for sentence in filler:
            position = self.rng.randrange(0, len(combined) + 1)
            combined.insert(position, sentence)
        return combined
