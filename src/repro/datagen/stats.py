"""Dataset and annotated-database statistics.

Summaries used by the CLI, the benchmarks' reporting, and exploratory
sessions: table cardinalities, attachment-degree distributions, ACG
topology, and the under-annotation metrics of §3 when an ideal edge set
is known.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..annotations.engine import AnnotationManager
from ..core.acg import AnnotationsConnectivityGraph
from ..core.model import AnnotatedDatabaseModel, false_negative_ratio, false_positive_ratio
from ..storage.compat import Connection
from ..utils.sql import quote_identifier


@dataclass
class DatasetStats:
    """One snapshot of an annotated database."""

    table_rows: Dict[str, int]
    annotations: int
    true_attachments: int
    predicted_attachments: int
    #: (min, mean, max) row-level attachments per annotation.
    annotation_degree: Tuple[int, float, int]
    #: (min, mean, max) row-level attachments per annotated tuple.
    tuple_degree: Tuple[int, float, int]
    acg_nodes: int
    acg_edges: int
    #: D.F_N / D.F_P against an ideal edge set, when supplied.
    f_n: Optional[float] = None
    f_p: Optional[float] = None

    def lines(self) -> List[str]:
        """Human-readable report lines."""
        out = ["tables:"]
        for table, rows in sorted(self.table_rows.items()):
            out.append(f"  {table}: {rows} rows")
        out.append(f"annotations: {self.annotations}")
        out.append(
            f"attachments: {self.true_attachments} true, "
            f"{self.predicted_attachments} predicted"
        )
        lo, mean, hi = self.annotation_degree
        out.append(f"attachments per annotation: min {lo}, mean {mean:.2f}, max {hi}")
        lo, mean, hi = self.tuple_degree
        out.append(f"attachments per tuple: min {lo}, mean {mean:.2f}, max {hi}")
        out.append(f"ACG: {self.acg_nodes} nodes, {self.acg_edges} edges")
        if self.f_n is not None:
            out.append(f"under-annotation: F_N = {self.f_n:.4f}, F_P = {self.f_p:.4f}")
        return out


def _degree_stats(degrees: Sequence[int]) -> Tuple[int, float, int]:
    if not degrees:
        return (0, 0.0, 0)
    return (min(degrees), sum(degrees) / len(degrees), max(degrees))


def collect_stats(
    connection: Connection,
    ideal_edges: Optional[frozenset] = None,
) -> DatasetStats:
    """Compute :class:`DatasetStats` for the database on ``connection``."""
    manager = AnnotationManager(connection)
    model = AnnotatedDatabaseModel(manager)
    acg = AnnotationsConnectivityGraph.build_from_manager(manager)

    tables = [
        row[0]
        for row in connection.execute(
            "SELECT name FROM sqlite_master WHERE type = 'table' "
            "AND name NOT LIKE '_nebula_%' AND name NOT LIKE '_minidb_%' "
            "AND name NOT LIKE 'sqlite_%' ORDER BY name"
        )
    ]
    table_rows = {
        table: int(
            connection.execute(
                f"SELECT COUNT(*) FROM {quote_identifier(table)}"
            ).fetchone()[0]
        )
        for table in tables
    }

    from ..annotations.store import AttachmentKind

    f_n = f_p = None
    if ideal_edges is not None:
        actual = model.edge_keys()
        f_n = false_negative_ratio(ideal_edges, actual)
        f_p = false_positive_ratio(ideal_edges, actual)

    return DatasetStats(
        table_rows=table_rows,
        annotations=manager.store.count_annotations(),
        true_attachments=manager.store.count_attachments(AttachmentKind.TRUE),
        predicted_attachments=manager.store.count_attachments(AttachmentKind.PREDICTED),
        annotation_degree=_degree_stats(list(model.annotation_degree().values())),
        tuple_degree=_degree_stats(list(model.tuple_degree().values())),
        acg_nodes=acg.node_count,
        acg_edges=acg.edge_count,
        f_n=f_n,
        f_p=f_p,
    )
