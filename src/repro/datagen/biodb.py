"""Synthetic curated bio-database builder (the UniProt substitute).

Produces a SQLite database with the paper's schema shape:

* ``Gene(GID, Name, Length, Seq, Family)``;
* ``Protein(PID, PName, PType, GID, Mass)`` — N:1 to Gene;
* ``Publication(PubID, Title, Abstract, Year)``;
* ``ProteinPublication(PID, PubID)`` — the N:M bridge.

Every publication's abstract embeds a known set of references to gene and
protein tuples (the generator's ground truth).  Each publication is also
registered as an *annotation* attached to exactly its referenced tuples,
so the resulting annotated database is, by construction, the experiment's
ideal reference ``D_ideal`` (paper §8.1, step 1).

Publications cite within *communities* of related genes (plus occasional
strays into nearby communities), which gives the co-annotation graph the
local structure the focal-based techniques exploit.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..annotations.engine import AnnotationManager
from ..meta.concepts import ConceptRef
from ..meta.ontology import Ontology
from ..meta.repository import NebulaMeta
from ..storage.backends import StorageBackend
from ..storage.compat import Connection, open_memory_connection
from ..types import CellRef, TupleRef
from ..utils.rng import make_rng
from .text import EmbeddedReference, TextSynthesizer
from .vocab import PROTEIN_TYPES, GeneRecord, ProteinRecord, VocabularyBuilder

_DDL = """
CREATE TABLE Gene (
    GID    TEXT PRIMARY KEY,
    Name   TEXT NOT NULL,
    Length INTEGER NOT NULL,
    Seq    TEXT NOT NULL,
    Family TEXT NOT NULL
);
CREATE TABLE Protein (
    PID   TEXT PRIMARY KEY,
    PName TEXT NOT NULL,
    PType TEXT NOT NULL,
    GID   TEXT NOT NULL REFERENCES Gene(GID),
    Mass  REAL NOT NULL
);
CREATE TABLE Publication (
    PubID    TEXT PRIMARY KEY,
    Title    TEXT NOT NULL,
    Abstract TEXT NOT NULL,
    Year     INTEGER NOT NULL
);
CREATE TABLE ProteinPublication (
    PID   TEXT NOT NULL REFERENCES Protein(PID),
    PubID TEXT NOT NULL REFERENCES Publication(PubID),
    PRIMARY KEY (PID, PubID)
);
"""

#: Reference-count distribution per publication: most publications cite a
#: handful of tuples, a few cite many — covering the paper's 1-10 band.
_REF_COUNT_WEIGHTS: Tuple[Tuple[int, int], ...] = (
    (1, 18), (2, 20), (3, 18), (4, 14), (5, 10),
    (6, 8), (7, 5), (8, 3), (9, 2), (10, 2),
)


@dataclass(frozen=True)
class BioDatabaseSpec:
    """Size and shape knobs of the generated database."""

    genes: int = 240
    proteins: int = 140
    publications: int = 1400
    community_size: int = 10
    #: Probability that a publication cites one tuple outside its community.
    stray_probability: float = 0.25
    #: Abstract byte budget (min, max).
    abstract_bytes: Tuple[int, int] = (180, 420)
    seed: int = 7

    def scaled(self, factor: int) -> "BioDatabaseSpec":
        """Uniformly scale the table cardinalities (the D_small/mid/large knob)."""
        return BioDatabaseSpec(
            genes=self.genes * factor,
            proteins=self.proteins * factor,
            publications=self.publications * factor,
            community_size=self.community_size,
            stray_probability=self.stray_probability,
            abstract_bytes=self.abstract_bytes,
            seed=self.seed,
        )


@dataclass
class PublicationTruth:
    """Ground truth of one publication-annotation."""

    pub_key: str
    annotation_id: int
    references: Tuple[EmbeddedReference, ...]
    refs: Tuple[TupleRef, ...]


@dataclass
class BioDatabase:
    """The generated database plus its oracle and metadata."""

    connection: Connection
    spec: BioDatabaseSpec
    genes: List[GeneRecord]
    proteins: List[ProteinRecord]
    gene_rowids: Dict[str, int]
    protein_rowids: Dict[str, int]
    manager: AnnotationManager
    meta: NebulaMeta
    truths: Dict[int, PublicationTruth] = field(default_factory=dict)
    _gene_by_key: Dict[str, GeneRecord] = field(default_factory=dict)
    _protein_by_key: Dict[str, ProteinRecord] = field(default_factory=dict)

    # ------------------------------------------------------------------

    def resolve(self, kind: str, key: str) -> TupleRef:
        """TupleRef of a gene (by GID) or protein (by PID)."""
        if kind == "gene":
            return TupleRef("Gene", self.gene_rowids[key])
        return TupleRef("Protein", self.protein_rowids[key])

    def resolve_references(
        self, references: Sequence[EmbeddedReference]
    ) -> Tuple[TupleRef, ...]:
        ordered: List[TupleRef] = []
        seen = set()
        for reference in references:
            ref = self.resolve(reference.kind, reference.key)
            if ref not in seen:
                seen.add(ref)
                ordered.append(ref)
        return tuple(ordered)

    def gene_record(self, gid: str) -> GeneRecord:
        return self._gene_by_key[gid]

    def protein_record(self, pid: str) -> ProteinRecord:
        return self._protein_by_key[pid]

    def community_of_gene(self, index: int) -> int:
        return index // self.spec.community_size

    def community_count(self) -> int:
        return max(1, (len(self.genes) + self.spec.community_size - 1) // self.spec.community_size)

    def community_members(self, community: int) -> Tuple[List[GeneRecord], List[ProteinRecord]]:
        """Genes and proteins belonging to one community."""
        low = community * self.spec.community_size
        high = low + self.spec.community_size
        genes = self.genes[low:high]
        gids = {g.gid for g in genes}
        proteins = [p for p in self.proteins if p.gid in gids]
        return genes, proteins

    @property
    def searchable_columns(self) -> Tuple[Tuple[str, str], ...]:
        """The referencing columns of the registered concepts."""
        columns = []
        for concept in self.meta.concepts:
            for column in sorted(
                concept.referencing_columns, key=lambda c: (c.table, c.column)
            ):
                pair = (column.table, column.column)
                if pair not in columns:
                    columns.append(pair)
        return tuple(columns)

    @property
    def aliases(self) -> Dict[str, Tuple[str, Optional[str]]]:
        """Alias map handed to the keyword-search engine."""
        return {
            "genes": ("Gene", None),
            "proteins": ("Protein", None),
            "id": ("Gene", "GID"),
            "accession": ("Protein", "PID"),
        }


def generate_bio_database(
    spec: Optional[BioDatabaseSpec] = None,
    connection: Optional[Connection] = None,
    backend: Optional[StorageBackend] = None,
) -> BioDatabase:
    """Generate the full synthetic annotated database.

    The data lands on ``backend``'s primary connection when one is given,
    on ``connection`` otherwise, and on a fresh private in-memory SQLite
    database when neither is.  The returned :class:`BioDatabase` carries
    the oracle (per-publication ground truth), a bootstrapped
    :class:`NebulaMeta`, and the passive annotation manager holding the
    ideal attachment set.
    """
    spec = spec or BioDatabaseSpec()
    if backend is not None:
        connection = backend.primary
    connection = connection or open_memory_connection()
    connection.executescript(_DDL)

    vocab = VocabularyBuilder(make_rng(spec.seed, "vocab"))
    synthesizer = TextSynthesizer(vocab, make_rng(spec.seed, "text"))
    rng = make_rng(spec.seed, "structure")

    genes = [vocab.gene(i) for i in range(spec.genes)]
    proteins = [
        vocab.protein(i, _protein_gene(genes, i, spec, rng).gid)
        for i in range(spec.proteins)
    ]

    gene_rowids = _insert_genes(connection, genes)
    protein_rowids = _insert_proteins(connection, proteins)

    manager = AnnotationManager(connection)
    meta = _build_meta(connection)
    database = BioDatabase(
        connection=connection,
        spec=spec,
        genes=genes,
        proteins=proteins,
        gene_rowids=gene_rowids,
        protein_rowids=protein_rowids,
        manager=manager,
        meta=meta,
        _gene_by_key={g.gid: g for g in genes},
        _protein_by_key={p.pid: p for p in proteins},
    )
    _generate_publications(database, synthesizer, rng)
    connection.commit()
    return database


# ----------------------------------------------------------------------
# Internal generation steps
# ----------------------------------------------------------------------


def _protein_gene(
    genes: List[GeneRecord], index: int, spec: BioDatabaseSpec, rng: random.Random
) -> GeneRecord:
    """Assign protein ``index`` to a gene, keeping community locality."""
    # Spread proteins across communities proportionally, jittered.
    anchor = int(index / max(1, spec.proteins) * len(genes))
    jitter = rng.randrange(-spec.community_size // 2, spec.community_size // 2 + 1)
    position = min(len(genes) - 1, max(0, anchor + jitter))
    return genes[position]


def _insert_genes(connection: Connection, genes: Sequence[GeneRecord]) -> Dict[str, int]:
    rowids: Dict[str, int] = {}
    for gene in genes:
        cursor = connection.execute(
            "INSERT INTO Gene (GID, Name, Length, Seq, Family) VALUES (?, ?, ?, ?, ?)",
            (gene.gid, gene.name, gene.length, gene.seq, gene.family),
        )
        rowids[gene.gid] = int(cursor.lastrowid)
    return rowids


def _insert_proteins(
    connection: Connection, proteins: Sequence[ProteinRecord]
) -> Dict[str, int]:
    rowids: Dict[str, int] = {}
    for protein in proteins:
        cursor = connection.execute(
            "INSERT INTO Protein (PID, PName, PType, GID, Mass) VALUES (?, ?, ?, ?, ?)",
            (protein.pid, protein.pname, protein.ptype, protein.gid, protein.mass),
        )
        rowids[protein.pid] = int(cursor.lastrowid)
    return rowids


def _build_meta(connection: Connection) -> NebulaMeta:
    """Populate NebulaMeta as the paper's experts did (§8.1):

    the Gene and Protein concepts with their referencing columns, plus the
    Gene Family concept, equivalent names, the protein-type ontology, and
    bootstrapped samples / inferred patterns for every referencing column.
    """
    meta = NebulaMeta()
    meta.add_concept(
        ConceptRef.build(
            "Gene", "Gene", [["GID"], ["Name"]], equivalent_names=["genes", "locus"]
        )
    )
    meta.add_concept(
        ConceptRef.build(
            "Protein",
            "Protein",
            [["PID"], ["PName", "PType"]],
            equivalent_names=["proteins", "polypeptide"],
        )
    )
    meta.add_concept(
        ConceptRef.build("Gene Family", "Gene", [["Family"]], equivalent_names=["family"])
    )
    meta.add_table_equivalents("Gene", ["genes", "locus"])
    meta.add_table_equivalents("Protein", ["proteins", "polypeptide"])
    meta.add_column_equivalents("Gene", "GID", ["id", "identifier", "accession"])
    meta.add_column_equivalents("Gene", "Name", ["symbol"])
    meta.add_column_equivalents("Protein", "PID", ["id", "identifier", "accession"])
    meta.add_column_equivalents("Protein", "PName", ["symbol"])
    meta.attach_ontology("Protein", "PType", Ontology("protein-types", PROTEIN_TYPES))
    meta.bootstrap_from_connection(connection)
    return meta


def _generate_publications(
    database: BioDatabase, synthesizer: TextSynthesizer, rng: random.Random
) -> None:
    spec = database.spec
    vocab = synthesizer.vocab
    communities = database.community_count()
    for index in range(spec.publications):
        community = rng.randrange(communities)
        genes, proteins = _pick_citations(database, community, rng)
        max_bytes = rng.randrange(*spec.abstract_bytes)
        abstract, references = synthesizer.compose(genes, proteins, max_bytes)
        pub_key = vocab.publication_id(index)
        database.connection.execute(
            "INSERT INTO Publication (PubID, Title, Abstract, Year) VALUES (?, ?, ?, ?)",
            (pub_key, vocab.publication_title(), abstract, rng.randrange(1995, 2016)),
        )
        refs = database.resolve_references(references)
        for reference in references:
            if reference.kind == "protein":
                database.connection.execute(
                    "INSERT OR IGNORE INTO ProteinPublication (PID, PubID) VALUES (?, ?)",
                    (reference.key, pub_key),
                )
        annotation = database.manager.add_annotation(
            abstract,
            attach_to=[CellRef(r.table, r.rowid) for r in refs],
            author="curator",
            verify_targets=False,
        )
        database.truths[annotation.annotation_id] = PublicationTruth(
            pub_key=pub_key,
            annotation_id=annotation.annotation_id,
            references=tuple(references),
            refs=refs,
        )


def _pick_citations(
    database: BioDatabase, community: int, rng: random.Random
) -> Tuple[List[GeneRecord], List[ProteinRecord]]:
    """Choose a publication's cited tuples: community members + rare strays."""
    count = _weighted_ref_count(rng)
    genes, proteins = database.community_members(community)
    pool: List[Tuple[str, object]] = [("gene", g) for g in genes] + [
        ("protein", p) for p in proteins
    ]
    if not pool:
        raise AssertionError("empty community pool")
    rng.shuffle(pool)
    chosen = pool[:count]
    if chosen and rng.random() < database.spec.stray_probability:
        stray = _pick_stray(database, community, rng)
        if stray is not None:
            chosen[-1] = stray
    cited_genes = [record for kind, record in chosen if kind == "gene"]
    cited_proteins = [record for kind, record in chosen if kind == "protein"]
    return cited_genes, cited_proteins


def _pick_stray(
    database: BioDatabase, community: int, rng: random.Random
) -> Optional[Tuple[str, object]]:
    communities = database.community_count()
    if communities <= 1:
        return None
    offset = rng.choice((1, 1, 2, 2, 3))
    direction = rng.choice((-1, 1))
    target = (community + direction * offset) % communities
    genes, proteins = database.community_members(target)
    pool: List[Tuple[str, object]] = [("gene", g) for g in genes] + [
        ("protein", p) for p in proteins
    ]
    if not pool:
        return None
    return rng.choice(pool)


def _weighted_ref_count(rng: random.Random) -> int:
    total = sum(weight for _, weight in _REF_COUNT_WEIGHTS)
    roll = rng.randrange(total)
    cumulative = 0
    for count, weight in _REF_COUNT_WEIGHTS:
        cumulative += weight
        if roll < cumulative:
            return count
    return _REF_COUNT_WEIGHTS[-1][0]
