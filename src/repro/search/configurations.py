"""Configuration enumeration (step 2 of the search technique).

"From these mappings, the algorithm constructs what are called
*configurations*, where each configuration captures one possible semantics
of the keyword query" (paper §4).

A :class:`Configuration` assigns to each keyword at most one of its
candidate mappings.  Configurations must contain at least one VALUE mapping
(otherwise no tuples can be retrieved) and are scored by:

* the mean weight of the assigned mappings,
* coverage (unassigned keywords dilute the score),
* coherence bonuses when schema mappings corroborate value mappings — a
  TABLE mapping naming the table a value belongs to, or a COLUMN mapping
  naming the value's column (the semantics the paper's Type-1/2/3 context
  matches reward at the annotation level).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from .mapper import Mapping, MappingKind
from .metadata import SchemaGraph

TABLE_COHERENCE_BONUS = 0.10
COLUMN_COHERENCE_BONUS = 0.15
CONNECTED_COHERENCE_BONUS = 0.05


@dataclass(frozen=True)
class Configuration:
    """One possible semantics of a keyword query."""

    #: (keyword, mapping-or-None) in query order.
    assignments: Tuple[Tuple[str, Optional[Mapping]], ...]
    score: float

    @property
    def value_mappings(self) -> Tuple[Mapping, ...]:
        return tuple(
            m for _, m in self.assignments if m is not None and m.kind is MappingKind.VALUE
        )

    @property
    def schema_mappings(self) -> Tuple[Mapping, ...]:
        return tuple(
            m for _, m in self.assignments if m is not None and m.kind is not MappingKind.VALUE
        )

    @property
    def mapped_count(self) -> int:
        return sum(1 for _, m in self.assignments if m is not None)

    def describe(self) -> str:
        """Compact human-readable form, used in evidence strings."""
        parts = []
        for keyword, mapping in self.assignments:
            if mapping is None:
                parts.append(f"{keyword}:-")
            elif mapping.kind is MappingKind.VALUE:
                parts.append(f"{keyword}={mapping.table}.{mapping.column}")
            elif mapping.kind is MappingKind.TABLE:
                parts.append(f"{keyword}~table:{mapping.table}")
            else:
                parts.append(f"{keyword}~column:{mapping.table}.{mapping.column}")
        return " ".join(parts)


def enumerate_configurations(
    keyword_mappings: Dict[str, List[Mapping]],
    schema: SchemaGraph,
    max_configurations: int = 24,
) -> List[Configuration]:
    """Enumerate and score configurations, best first.

    ``keyword_mappings`` preserves query order (Python dicts do).  The
    cartesian product over per-keyword options is bounded by the mapper's
    per-keyword cap; the output is truncated to ``max_configurations``.
    """
    keywords = list(keyword_mappings)
    option_lists: List[List[Optional[Mapping]]] = [
        [None, *keyword_mappings[kw]] for kw in keywords
    ]
    configurations: List[Configuration] = []
    for combo in itertools.product(*option_lists):
        assignments = tuple(zip(keywords, combo))
        config = _score(assignments, schema)
        if config is not None:
            configurations.append(config)
    configurations.sort(key=lambda c: -c.score)
    return _dedupe(configurations)[:max_configurations]


def _score(
    assignments: Tuple[Tuple[str, Optional[Mapping]], ...],
    schema: SchemaGraph,
) -> Optional[Configuration]:
    mappings = [m for _, m in assignments if m is not None]
    values = [m for m in mappings if m.kind is MappingKind.VALUE]
    if not values:
        return None
    total = len(assignments)
    base = sum(m.weight for m in mappings) / total
    bonus = _coherence_bonus(mappings, values, schema)
    return Configuration(assignments=assignments, score=min(1.0, base + bonus))


def _coherence_bonus(
    mappings: Sequence[Mapping],
    values: Sequence[Mapping],
    schema: SchemaGraph,
) -> float:
    bonus = 0.0
    value_tables = {v.table.casefold() for v in values}
    value_columns = {(v.table.casefold(), (v.column or "").casefold()) for v in values}
    for mapping in mappings:
        if mapping.kind is MappingKind.TABLE:
            if mapping.table.casefold() in value_tables:
                bonus += TABLE_COHERENCE_BONUS
            elif any(
                schema.are_connected(mapping.table, v.table) for v in values
            ):
                bonus += CONNECTED_COHERENCE_BONUS
        elif mapping.kind is MappingKind.COLUMN:
            key = (mapping.table.casefold(), (mapping.column or "").casefold())
            if key in value_columns:
                bonus += COLUMN_COHERENCE_BONUS
            elif mapping.table.casefold() in value_tables:
                bonus += TABLE_COHERENCE_BONUS / 2
    return bonus


def _dedupe(configurations: List[Configuration]) -> List[Configuration]:
    """Drop configurations whose retrieval semantics duplicate a better one.

    Two configurations retrieve the same tuples when their value-condition
    sets coincide; schema mappings only modulate the score.
    """
    seen = set()
    kept: List[Configuration] = []
    for config in configurations:
        signature = frozenset(
            (m.keyword, m.table.casefold(), (m.column or "").casefold())
            for m in config.value_mappings
        )
        if signature in seen:
            continue
        seen.add(signature)
        kept.append(config)
    return kept
