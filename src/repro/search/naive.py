"""The Naive baseline (paper §4).

The naive approach passes the *entire annotation text* as one keyword query
to the search technique.  With dozens or hundreds of keywords the
configuration space is intractable, so — as the original degrades — the
technique effectively falls back to treating every keyword independently:
every content word is matched (exactly and as a substring) against every
text column of every table, and any row matched by any keyword joins the
answer.

This is exactly what makes the baseline useless in practice and what the
paper measures: execution touches every text column with unindexed scans
(orders of magnitude slower), and the answer set covers a significant
portion of the database with near-meaningless confidences.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..storage.compat import Connection
from ..types import ScoredTuple, TupleRef
from ..utils.sql import quote_identifier
from ..utils.tokenize import is_stopword, tokenize
from .metadata import SchemaGraph

#: Keywords shorter than this only match exactly (LIKE on 1-2 chars would
#: match virtually every row and explode the scan cost beyond usefulness).
_MIN_SUBSTRING_LENGTH = 3

#: Confidence band of naive answers: mostly low, slightly increasing with
#: the number of distinct keywords that hit the tuple.
_BASE_CONFIDENCE = 0.34
_CONFIDENCE_SLOPE = 0.45
_MAX_CONFIDENCE = 0.80


@dataclass
class NaiveResult:
    """Answer of the naive whole-annotation search."""

    tuples: List[ScoredTuple]
    keyword_count: int
    scanned_columns: int
    elapsed: float

    @property
    def refs(self) -> List[TupleRef]:
        return [t.ref for t in self.tuples]


class NaiveSearch:
    """Whole-annotation keyword search over every text column."""

    def __init__(
        self,
        connection: Connection,
        schema: Optional[SchemaGraph] = None,
        max_keywords: Optional[int] = None,
    ) -> None:
        self.connection = connection
        self.schema = schema or SchemaGraph.from_connection(connection)
        self.max_keywords = max_keywords

    def search(self, annotation_text: str) -> NaiveResult:
        """Search with the entire annotation as the query."""
        started = time.perf_counter()
        keywords = self._keywords(annotation_text)
        hits: Dict[TupleRef, Set[str]] = {}
        columns = self.schema.text_columns()
        for keyword in keywords:
            for column in columns:
                for rowid in self._scan(column.table, column.name, keyword):
                    hits.setdefault(TupleRef(column.table, rowid), set()).add(keyword)
        total = max(1, len(keywords))
        tuples = [
            ScoredTuple(
                ref=ref,
                confidence=min(
                    _MAX_CONFIDENCE,
                    _BASE_CONFIDENCE + _CONFIDENCE_SLOPE * (len(matched) / total),
                ),
                provenance=("naive",),
            )
            for ref, matched in hits.items()
        ]
        tuples.sort(key=lambda t: (-t.confidence, t.ref))
        return NaiveResult(
            tuples=tuples,
            keyword_count=len(keywords),
            scanned_columns=len(columns),
            elapsed=time.perf_counter() - started,
        )

    # ------------------------------------------------------------------

    def _keywords(self, text: str) -> List[str]:
        seen: Set[str] = set()
        ordered: List[str] = []
        for token in tokenize(text):
            word = token.word
            if not word or is_stopword(word) or word in seen:
                continue
            seen.add(word)
            ordered.append(word)
        if self.max_keywords is not None:
            ordered = ordered[: self.max_keywords]
        return ordered

    def _scan(self, table: str, column: str, keyword: str) -> List[int]:
        """Unindexed scan of one column for one keyword.

        Long-enough keywords match as substrings (the imprecision that
        floods the answer); short ones only exactly.
        """
        if len(keyword) >= _MIN_SUBSTRING_LENGTH:
            sql = (
                f"SELECT rowid FROM {quote_identifier(table)} "
                f"WHERE {quote_identifier(column)} LIKE ?"
            )
            params: Tuple[str, ...] = (f"%{keyword}%",)
        else:
            sql = (
                f"SELECT rowid FROM {quote_identifier(table)} "
                f"WHERE {quote_identifier(column)} = ? COLLATE NOCASE"
            )
            params = (keyword,)
        return [int(r[0]) for r in self.connection.execute(sql, params).fetchall()]
