"""Configuration -> SQL translation (step 3 of the search technique).

"Each configuration maps to one or more SQL queries over the database"
(paper §4).  A configuration's VALUE mappings are equality conditions; for
every table owning at least one condition we emit one SQL query that:

* selects the DISTINCT rowids of that *target table*;
* applies the target table's own conditions directly;
* reaches conditions on other tables through JOIN chains along the
  shortest FK-PK path (paper §6.1: the search "internally leverages the
  FK-PK relationships among the database tables");
* drops to a weaker variant when some other table is unreachable (the
  condition is ignored and the query confidence is scaled down).

Equality is case-insensitive (``COLLATE NOCASE``), matching the normalized
inverted index that produced the value mappings.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..observability.metrics import get_metrics
from .configurations import Configuration
from .mapper import Mapping
from .metadata import JoinStep, SchemaGraph

#: Bucket bounds for the per-statement condition-count histogram.
_CONDITION_BUCKETS = (1, 2, 3, 4, 6, 8, 12)


@dataclass(frozen=True)
class Condition:
    """One equality condition contributed by a VALUE mapping."""

    table: str
    column: str
    value: str


@dataclass(frozen=True)
class GeneratedSQL:
    """One executable SQL query derived from a configuration."""

    sql: str
    params: Tuple[str, ...]
    target_table: str
    confidence: float
    conditions: Tuple[Condition, ...]
    #: Configuration description, carried into evidence strings.
    provenance: str = ""

    @property
    def signature(self) -> Tuple[str, frozenset]:
        """Identity for shared-execution deduplication."""
        return (self.target_table.casefold(), frozenset(self.conditions))

    @property
    def is_single_local_condition(self) -> bool:
        """True for ``SELECT .. WHERE one local column = value`` queries —
        the shape the shared executor can batch into IN-lists."""
        return (
            len(self.conditions) == 1
            and self.conditions[0].table.casefold() == self.target_table.casefold()
        )


def generate_sql(
    configuration: Configuration,
    schema: SchemaGraph,
    scope_filter: Optional[Dict[str, str]] = None,
    table_map: Optional[Dict[str, str]] = None,
) -> List[GeneratedSQL]:
    """Translate one configuration into SQL queries, one per target table.

    ``table_map`` maps a casefolded table name to a *physical* substitute
    table (the materialized K-hop mini tables of the spreading search):
    the SQL then runs against the mini database directly, which is where
    its order-of-magnitude win comes from.  ``scope_filter`` maps a
    casefolded table name to a WHERE fragment (``"rowid IN (1, 2, 3)"``)
    for scoped tables that have no physical substitute.
    """
    by_table: Dict[str, List[Mapping]] = {}
    for mapping in configuration.value_mappings:
        by_table.setdefault(schema.canonical_table(mapping.table), []).append(mapping)

    queries: List[GeneratedSQL] = []
    metrics = get_metrics()
    for target_table in sorted(by_table):
        query = _build_query(
            configuration,
            schema,
            target_table,
            by_table,
            scope_filter or {},
            table_map or {},
        )
        if query is not None:
            queries.append(query)
            metrics.histogram(
                "nebula_sqlgen_conditions", _CONDITION_BUCKETS
            ).observe(len(query.conditions))
            if query.confidence < configuration.score:
                # Unreachable-table conditions were dropped (§6.1): the
                # statement answers weaker semantics than intended.
                metrics.counter("nebula_sqlgen_weakened_total").inc()
    return queries


def _build_query(
    configuration: Configuration,
    schema: SchemaGraph,
    target_table: str,
    by_table: Dict[str, List[Mapping]],
    scope_filter: Dict[str, str],
    table_map: Dict[str, str],
) -> Optional[GeneratedSQL]:
    def physical(table: str) -> str:
        return table_map.get(table.casefold(), table)

    alias_counter = 0
    target_alias = "t0"
    joins: List[str] = []
    where: List[str] = []
    params: List[str] = []
    conditions: List[Condition] = []
    dropped = 0

    for mapping in by_table[target_table]:
        where.append(f"{target_alias}.{mapping.column} = ? COLLATE NOCASE")
        params.append(mapping.keyword)
        conditions.append(Condition(target_table, str(mapping.column), mapping.keyword))

    for other_table in sorted(by_table):
        if other_table == target_table:
            continue
        path = schema.join_path(target_table, other_table)
        if path is None:
            dropped += len(by_table[other_table])
            continue
        previous_alias = target_alias
        last_alias = target_alias
        for step in path:
            alias_counter += 1
            alias = f"t{alias_counter}"
            condition = _oriented_join(step, previous_alias, alias)
            joins.append(f"JOIN {physical(step.target)} {alias} ON {condition}")
            previous_alias = alias
            last_alias = alias
        for mapping in by_table[other_table]:
            where.append(f"{last_alias}.{mapping.column} = ? COLLATE NOCASE")
            params.append(mapping.keyword)
            conditions.append(Condition(other_table, str(mapping.column), mapping.keyword))

    if not where:
        return None

    if target_table.casefold() not in table_map:
        scope_sql = scope_filter.get(target_table.casefold())
        if scope_sql:
            where.append(f"{target_alias}.{scope_sql}")

    sql = (
        f"SELECT DISTINCT {target_alias}.rowid "
        f"FROM {physical(target_table)} {target_alias} "
        + " ".join(joins)
        + " WHERE "
        + " AND ".join(where)
    )
    confidence = configuration.score
    if dropped:
        # Unreachable conditions were ignored: the query answers a weaker
        # semantics than the configuration intended.
        confidence *= 0.5**dropped
    return GeneratedSQL(
        sql=sql,
        params=tuple(params),
        target_table=target_table,
        confidence=confidence,
        conditions=tuple(conditions),
        provenance=configuration.describe(),
    )


def _oriented_join(step: JoinStep, previous_alias: str, alias: str) -> str:
    """Render the FK join condition with aliases oriented along the path."""
    fk = step.fk
    if step.source == fk.child_table and step.target == fk.parent_table:
        return f"{previous_alias}.{fk.child_column} = {alias}.{fk.parent_column}"
    return f"{previous_alias}.{fk.parent_column} = {alias}.{fk.child_column}"
