"""The keyword-search engine facade.

This is the component Nebula uses as a black box (paper §4 & §6.1, the
``KeywordSearch(q, D)`` call of Figure 5): given a short keyword query it
returns scored tuples.  Internally it chains the mapper, configuration
enumeration, and SQL generation, executes the SQL, and merges the per-
configuration answers (a tuple reached by several configurations keeps the
best confidence — Nebula's own cross-query grouping happens later).

A :class:`SearchScope` restricts execution to a subset of rowids per table;
the focal-based spreading search materializes its K-hop mini database and
passes the corresponding scope here, so the very same code path runs over
the reduced data.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Mapping as TMapping,
    Optional,
    Sequence,
    Tuple,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..meta.lexicon import Lexicon

from ..errors import EmptyQueryError
from ..observability.metrics import MetricsRegistry, TIME_BUCKETS, get_metrics
from ..observability.profiling import SqlProfiler
from ..perf.cache import AnalysisCache
from ..resilience.retry import RetryPolicy
from ..storage.compat import Connection
from ..types import ScoredTuple, TupleRef
from ..utils.sql import quote_identifier
from .configurations import enumerate_configurations
from .index import InvertedValueIndex
from .mapper import KeywordMapper, Mapping
from .metadata import SchemaGraph
from .sqlgen import GeneratedSQL, generate_sql


@dataclass(frozen=True)
class KeywordQuery:
    """A short keyword query with the weight Nebula assigned to it."""

    keywords: Tuple[str, ...]
    weight: float = 1.0
    label: str = ""

    @property
    def text(self) -> str:
        return " ".join(self.keywords)

    def describe(self) -> str:
        return self.label or self.text


@dataclass(frozen=True)
class SearchScope:
    """Per-table rowid restriction (the K-hop mini database).

    When ``physical`` maps a table to a materialized mini-table name, the
    SQL filter references that table (``rowid IN (SELECT rowid FROM
    _minidb_Gene)``) — the paper's "materialized view of the K-hop
    neighbors"; otherwise a literal rowid list is inlined.
    """

    rowids: TMapping[str, FrozenSet[int]]
    physical: TMapping[str, str] = field(default_factory=dict)

    @classmethod
    def from_refs(
        cls,
        refs: Iterable[TupleRef],
        physical: Optional[TMapping[str, str]] = None,
    ) -> "SearchScope":
        buckets: Dict[str, set] = {}
        for ref in refs:
            buckets.setdefault(ref.table.casefold(), set()).add(ref.rowid)
        return cls(
            rowids={t: frozenset(r) for t, r in buckets.items()},
            physical=dict(physical or {}),
        )

    def allows(self, table: str, rowid: int) -> bool:
        allowed = self.rowids.get(table.casefold())
        return allowed is not None and rowid in allowed

    def tables(self) -> Tuple[str, ...]:
        return tuple(sorted(self.rowids))

    def sql_filters(self) -> Dict[str, str]:
        """Per-table ``rowid IN (...)`` fragments for SQL generation."""
        fragments: Dict[str, str] = {}
        for table, rowids in self.rowids.items():
            mini = self.physical.get(table)
            if mini:
                fragments[table] = (
                    f"rowid IN (SELECT rowid FROM {quote_identifier(mini)})"
                )
            elif rowids:
                body = ", ".join(str(r) for r in sorted(rowids))
                fragments[table] = f"rowid IN ({body})"
            else:
                fragments[table] = "rowid IN (NULL)"
        return fragments

    def size(self) -> int:
        return sum(len(r) for r in self.rowids.values())


@dataclass
class SearchResult:
    """Scored answer of one keyword query."""

    query: KeywordQuery
    tuples: List[ScoredTuple]
    sql_queries: List[GeneratedSQL] = field(default_factory=list)
    elapsed: float = 0.0
    #: Generated statements actually executed (top-K early termination
    #: may skip the provably irrelevant tail; equals ``len(sql_queries)``
    #: on the exhaustive path).
    executed_statements: int = 0

    @property
    def refs(self) -> List[TupleRef]:
        return [t.ref for t in self.tuples]


class KeywordSearchEngine:
    """Metadata-driven keyword search over a SQLite database."""

    def __init__(
        self,
        connection: Connection,
        searchable_columns: Sequence[Tuple[str, str]],
        schema: Optional[SchemaGraph] = None,
        aliases: Optional[TMapping[str, Tuple[str, Optional[str]]]] = None,
        lexicon: Optional["Lexicon"] = None,
        max_configurations: int = 24,
        retry: Optional[RetryPolicy] = None,
        metrics: Optional[MetricsRegistry] = None,
        profiler: Optional[SqlProfiler] = None,
        analysis_cache: Optional[AnalysisCache] = None,
        index: Optional[InvertedValueIndex] = None,
    ) -> None:
        self.connection = connection
        #: Retry policy for transient lock errors during SQL execution.
        self.retry = retry
        self.schema = schema or SchemaGraph.from_connection(connection)
        #: The inverted value index.  Injected by the engine owner when a
        #: persisted index was opened (``repro.search.persist``); absent
        #: that, the historical in-memory rebuild-per-open.
        self.index = (
            index
            if index is not None
            else InvertedValueIndex.build(connection, searchable_columns)
        )
        #: Generation-versioned keyword-analysis memo table (optional).
        self.analysis_cache = analysis_cache
        self.mapper = KeywordMapper(
            self.schema, self.index, aliases=aliases, lexicon=lexicon,
            cache=analysis_cache,
        )
        self.max_configurations = max_configurations
        #: Per-statement timing/row-count aggregation (``repro stats``).
        self.profiler = profiler if profiler is not None else SqlProfiler()
        metrics = metrics if metrics is not None else get_metrics()
        # Instrument handles are resolved once: the execute path must not
        # pay a registry lookup per statement.
        self._m_statements = metrics.counter("nebula_sql_statements_total")
        self._m_rows = metrics.counter("nebula_sql_rows_total")
        self._m_seconds = metrics.histogram(
            "nebula_sql_statement_seconds", TIME_BUCKETS
        )
        self._m_generated = metrics.counter("nebula_sql_generated_total")

    # ------------------------------------------------------------------

    def generate(
        self, query: KeywordQuery, scope: Optional[SearchScope] = None
    ) -> List[GeneratedSQL]:
        """Produce the candidate SQL queries for ``query`` without running them."""
        if not query.keywords:
            raise EmptyQueryError("keyword query has no keywords")
        keyword_mappings = self.mapper.map_query(list(query.keywords))
        if scope is not None:
            keyword_mappings = self._prune_to_scope(keyword_mappings, scope)
        configurations = enumerate_configurations(
            keyword_mappings, self.schema, max_configurations=self.max_configurations
        )
        scope_filter = None
        table_map = None
        if scope is not None:
            table_map = dict(scope.physical)
            scope_filter = {
                table: fragment
                for table, fragment in scope.sql_filters().items()
                if table not in table_map
            }
        generated: List[GeneratedSQL] = []
        for configuration in configurations:
            generated.extend(
                generate_sql(configuration, self.schema, scope_filter, table_map)
            )
        self._m_generated.inc(len(generated))
        return generated

    def _prune_to_scope(
        self, keyword_mappings: Dict[str, List[Mapping]], scope: SearchScope
    ) -> Dict[str, List[Mapping]]:
        """Drop VALUE mappings whose postings all fall outside the scope."""
        pruned: Dict[str, List[Mapping]] = {}
        for keyword, mappings in keyword_mappings.items():
            kept = []
            for mapping in mappings:
                if mapping.kind.value != "value":
                    kept.append(mapping)
                    continue
                postings = self.index.lookup_in(keyword, mapping.table, mapping.column)
                if any(scope.allows(p.table, p.rowid) for p in postings):
                    kept.append(mapping)
            pruned[keyword] = kept
        return pruned

    def execute_sql(self, generated: GeneratedSQL) -> List[int]:
        """Run one generated query, returning target-table rowids.

        Transient lock/busy errors are retried when a policy is set.
        Every execution is profiled: per-statement wall-clock and row
        counts feed ``self.profiler`` and the metrics registry.
        """
        rows = self.execute_rows(generated.sql, generated.params)
        return [int(r[0]) for r in rows]

    def execute_rows(self, sql: str, params: Sequence = ()) -> List:
        """Run one SQL statement with retry + profiling, returning rows."""
        def run() -> List:
            return self.connection.execute(sql, params).fetchall()

        started = time.perf_counter()
        rows = self.retry.run(run, sql) if self.retry is not None else run()
        self.record_execution(sql, time.perf_counter() - started, len(rows))
        return rows

    def record_execution(self, sql: str, elapsed: float, rowcount: int) -> None:
        """Account one executed statement (profiler + metrics).

        Split out of :meth:`execute_rows` so statements executed elsewhere
        (the parallel Stage-2 worker pool) can be recorded on the main
        thread — the profiler and metric handles are not thread-safe.
        """
        self.profiler.record(sql, elapsed, rowcount)
        self._m_statements.inc()
        self._m_rows.inc(rowcount)
        self._m_seconds.observe(elapsed)

    def search(
        self,
        query: KeywordQuery,
        scope: Optional[SearchScope] = None,
        top_k: Optional[int] = None,
    ) -> SearchResult:
        """Full pipeline: map -> configure -> SQL -> execute -> merge.

        Each answered tuple's confidence is the best confidence among the
        configurations that produced it.

        ``top_k`` enables **exact** early termination: the generated
        statements run in descending confidence order (stable, so equal-
        confidence statements keep their generation order), and execution
        stops once ``top_k`` distinct tuples are held *and* the next
        statement's confidence falls strictly below the current K-th best
        score.  A statement below that bound can only add tuples scoring
        below the K-th best or re-answer tuples whose held score already
        exceeds its confidence — neither changes the top-K set nor any of
        its scores — so the result equals the exhaustive ranking truncated
        to K (ties at the K-th score keep executing, preserving the
        exhaustive tie-break by tuple ref).  ``executed_statements`` on
        the result counts how many of the generated statements ran.
        """
        started = time.perf_counter()
        generated = self.generate(query, scope)
        ordered = (
            generated
            if top_k is None
            else sorted(generated, key=lambda g: -g.confidence)
        )
        best: Dict[TupleRef, float] = {}
        executed = 0
        for sql_query in ordered:
            if top_k is not None and len(best) >= top_k:
                kth = sorted(best.values(), reverse=True)[top_k - 1]
                if sql_query.confidence < kth:
                    break
            executed += 1
            for rowid in self.execute_sql(sql_query):
                ref = TupleRef(sql_query.target_table, rowid)
                if sql_query.confidence > best.get(ref, 0.0):
                    best[ref] = sql_query.confidence
        tuples = [
            ScoredTuple(ref=ref, confidence=conf, provenance=(query.describe(),))
            for ref, conf in sorted(best.items(), key=lambda kv: (-kv[1], kv[0]))
        ]
        if top_k is not None:
            tuples = tuples[:top_k]
        return SearchResult(
            query=query,
            tuples=tuples,
            sql_queries=generated,
            elapsed=time.perf_counter() - started,
            executed_statements=executed,
        )
