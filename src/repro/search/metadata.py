"""Schema metadata graph: tables, columns, and FK-PK join paths.

The keyword-search technique "internally leverages the FK-PK relationships
among the database tables to produce meaningful related tuples" (paper
§6.1).  :class:`SchemaGraph` models the schema as an undirected graph whose
nodes are tables and whose edges are foreign keys; shortest join paths are
found by BFS and rendered into SQL joins by :mod:`repro.search.sqlgen`.

The graph can be introspected directly from a live SQLite connection
(``SchemaGraph.from_connection``) using ``PRAGMA`` metadata, so the search
engine needs no manual schema description.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..errors import UnknownTableError
from ..storage.compat import Connection
from ..utils.sql import quote_identifier


@dataclass(frozen=True)
class ColumnInfo:
    """One column of one table."""

    table: str
    name: str
    declared_type: str
    is_primary_key: bool

    @property
    def qualified(self) -> str:
        return f"{self.table}.{self.name}"

    @property
    def is_text(self) -> bool:
        kind = (self.declared_type or "TEXT").upper()
        return not any(token in kind for token in ("INT", "REAL", "FLOA", "DOUB", "NUM", "BLOB"))


@dataclass(frozen=True)
class ForeignKey:
    """A foreign-key edge: ``child.child_column -> parent.parent_column``."""

    child_table: str
    child_column: str
    parent_table: str
    parent_column: str

    def join_condition(self, child_alias: str, parent_alias: str) -> str:
        return (
            f"{child_alias}.{self.child_column} = {parent_alias}.{self.parent_column}"
        )


@dataclass(frozen=True)
class JoinStep:
    """One hop of a join path, oriented from ``source`` to ``target``."""

    source: str
    target: str
    fk: ForeignKey


class SchemaGraph:
    """Tables, columns, and FK edges, with join-path search."""

    def __init__(
        self,
        columns: Iterable[ColumnInfo],
        foreign_keys: Iterable[ForeignKey] = (),
    ) -> None:
        self._columns: Dict[str, List[ColumnInfo]] = {}
        for column in columns:
            self._columns.setdefault(column.table, []).append(column)
        self._foreign_keys: List[ForeignKey] = list(foreign_keys)
        self._adjacency: Dict[str, List[Tuple[str, ForeignKey]]] = {}
        for fk in self._foreign_keys:
            self._adjacency.setdefault(fk.child_table, []).append((fk.parent_table, fk))
            self._adjacency.setdefault(fk.parent_table, []).append((fk.child_table, fk))
        # Lazily built by normalized_names(); safe to cache because the
        # graph is immutable after construction.
        self._normalized: Optional[
            Tuple[Tuple[str, str, Tuple[Tuple[str, str], ...]], ...]
        ] = None

    # ------------------------------------------------------------------

    @classmethod
    def from_connection(cls, connection: Connection) -> "SchemaGraph":
        """Introspect every user table of a SQLite database."""
        names = [
            row[0]
            for row in connection.execute(
                "SELECT name FROM sqlite_master WHERE type = 'table' "
                "AND name NOT LIKE '_nebula_%' AND name NOT LIKE '_minidb_%' "
                "AND name NOT LIKE 'sqlite_%' ORDER BY name"
            )
        ]
        columns: List[ColumnInfo] = []
        foreign_keys: List[ForeignKey] = []
        for table in names:
            for row in connection.execute(f"PRAGMA table_info({quote_identifier(table)})"):
                columns.append(
                    ColumnInfo(
                        table=table,
                        name=row[1],
                        declared_type=row[2] or "TEXT",
                        is_primary_key=bool(row[5]),
                    )
                )
            for row in connection.execute(
                f"PRAGMA foreign_key_list({quote_identifier(table)})"
            ):
                # PRAGMA columns: id, seq, table, from, to, ...
                foreign_keys.append(
                    ForeignKey(
                        child_table=table,
                        child_column=row[3],
                        parent_table=row[2],
                        parent_column=row[4] or "rowid",
                    )
                )
        return cls(columns, foreign_keys)

    # ------------------------------------------------------------------

    @property
    def tables(self) -> Tuple[str, ...]:
        return tuple(sorted(self._columns))

    @property
    def foreign_keys(self) -> Tuple[ForeignKey, ...]:
        return tuple(self._foreign_keys)

    def has_table(self, table: str) -> bool:
        return self._resolve(table) is not None

    def _resolve(self, table: str) -> Optional[str]:
        for name in self._columns:
            if name.casefold() == table.casefold():
                return name
        return None

    def canonical_table(self, table: str) -> str:
        resolved = self._resolve(table)
        if resolved is None:
            raise UnknownTableError(table)
        return resolved

    def columns_of(self, table: str) -> Tuple[ColumnInfo, ...]:
        return tuple(self._columns[self.canonical_table(table)])

    def column(self, table: str, name: str) -> Optional[ColumnInfo]:
        for info in self.columns_of(table):
            if info.name.casefold() == name.casefold():
                return info
        return None

    def normalized_names(
        self,
    ) -> Tuple[Tuple[str, str, Tuple[Tuple[str, str], ...]], ...]:
        """``(table, normalized_table, ((column, normalized_column), ...))``
        per table, in :attr:`tables` order.

        Schema-name matching normalizes every table and column name once
        per *keyword* otherwise; this precomputes the normalized forms
        once per graph so the mapper's schema pass is pure dict work.
        """
        if self._normalized is None:
            from ..utils.tokenize import normalize_word

            self._normalized = tuple(
                (
                    table,
                    normalize_word(table),
                    tuple(
                        (info.name, normalize_word(info.name))
                        for info in self._columns[table]
                    ),
                )
                for table in self.tables
            )
        return self._normalized

    def text_columns(self) -> Tuple[ColumnInfo, ...]:
        """Every TEXT-typed column in the schema (naive baseline scans these)."""
        return tuple(
            info
            for table in self.tables
            for info in self._columns[table]
            if info.is_text
        )

    # ------------------------------------------------------------------
    # Join paths
    # ------------------------------------------------------------------

    def join_path(self, source: str, target: str) -> Optional[List[JoinStep]]:
        """Shortest FK path between two tables (BFS), or None if unconnected.

        Returns an empty list when ``source == target``.
        """
        src = self.canonical_table(source)
        dst = self.canonical_table(target)
        if src == dst:
            return []
        queue = deque([src])
        parents: Dict[str, Tuple[str, ForeignKey]] = {}
        visited = {src}
        while queue:
            current = queue.popleft()
            for neighbor, fk in self._adjacency.get(current, ()):
                if neighbor in visited:
                    continue
                visited.add(neighbor)
                parents[neighbor] = (current, fk)
                if neighbor == dst:
                    return self._unwind(src, dst, parents)
                queue.append(neighbor)
        return None

    def _unwind(
        self, src: str, dst: str, parents: Dict[str, Tuple[str, ForeignKey]]
    ) -> List[JoinStep]:
        steps: List[JoinStep] = []
        node = dst
        while node != src:
            previous, fk = parents[node]
            steps.append(JoinStep(source=previous, target=node, fk=fk))
            node = previous
        steps.reverse()
        return steps

    def are_connected(self, source: str, target: str) -> bool:
        return self.join_path(source, target) is not None
