"""Inverted value index over searchable columns.

Pre-indexing the data is the standard enabling structure of keyword search
over RDBMSs (DBXplorer-style symbol tables).  The index maps every distinct
normalized value of each *searchable* column to the posting list of rows
holding it, so the mapper can decide in O(1) whether a keyword could be a
database value and where.

Only the columns registered as searchable are indexed — Nebula registers
the referencing columns of the ConceptRefs table, mirroring the paper's
restriction of the Value-Map to "columns included in the ConceptRefs
auxiliary table".
"""

from __future__ import annotations

import sqlite3
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from ..utils.sql import quote_identifier
from ..utils.tokenize import normalize_word


@dataclass(frozen=True)
class Posting:
    """One occurrence of a value: which column of which row holds it."""

    table: str
    column: str
    rowid: int


class InvertedValueIndex:
    """Exact-match inverted index over registered (table, column) pairs."""

    def __init__(self) -> None:
        self._postings: Dict[str, List[Posting]] = {}
        self._columns: Set[Tuple[str, str]] = set()
        self._value_counts: Dict[Tuple[str, str], int] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def add_column(self, connection: sqlite3.Connection, table: str, column: str) -> int:
        """Index one column; returns the number of rows indexed."""
        key = (table.casefold(), column.casefold())
        if key in self._columns:
            return 0
        self._columns.add(key)
        count = 0
        cursor = connection.execute(
            f"SELECT rowid, {quote_identifier(column)} "
            f"FROM {quote_identifier(table)} "
            f"WHERE {quote_identifier(column)} IS NOT NULL"
        )
        for rowid, value in cursor:
            token = normalize_word(str(value))
            if not token:
                continue
            self._postings.setdefault(token, []).append(
                Posting(table=table, column=column, rowid=int(rowid))
            )
            count += 1
        self._value_counts[key] = self._value_counts.get(key, 0) + count
        return count

    @classmethod
    def build(
        cls,
        connection: sqlite3.Connection,
        columns: Iterable[Tuple[str, str]],
    ) -> "InvertedValueIndex":
        """Build an index over ``columns`` of (table, column) pairs."""
        index = cls()
        for table, column in columns:
            index.add_column(connection, table, column)
        return index

    def add_row(self, table: str, column: str, rowid: int, value: str) -> None:
        """Incrementally index one newly inserted value."""
        key = (table.casefold(), column.casefold())
        self._columns.add(key)
        token = normalize_word(str(value))
        if not token:
            return
        self._postings.setdefault(token, []).append(Posting(table, column, rowid))
        self._value_counts[key] = self._value_counts.get(key, 0) + 1

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def lookup(self, word: str) -> Tuple[Posting, ...]:
        """Exact (normalized) postings of ``word``."""
        return tuple(self._postings.get(normalize_word(word), ()))

    def lookup_in(
        self, word: str, table: str, column: Optional[str] = None
    ) -> Tuple[Posting, ...]:
        """Postings of ``word`` restricted to a table (and column)."""
        table_key = table.casefold()
        column_key = column.casefold() if column else None
        return tuple(
            p
            for p in self.lookup(word)
            if p.table.casefold() == table_key
            and (column_key is None or p.column.casefold() == column_key)
        )

    def document_frequency(self, word: str) -> int:
        """Number of rows holding ``word`` across all indexed columns."""
        return len(self.lookup(word))

    def selectivity(self, word: str, table: str, column: str) -> float:
        """1 / (matching rows in the column); 0.0 when absent.

        Rare values are more credible embedded references than values
        occurring in thousands of rows, so mapping weight scales with this.
        """
        matches = len(self.lookup_in(word, table, column))
        if matches == 0:
            return 0.0
        return 1.0 / matches

    @property
    def indexed_columns(self) -> FrozenSet[Tuple[str, str]]:
        return frozenset(self._columns)

    def __len__(self) -> int:
        """Number of distinct indexed tokens."""
        return len(self._postings)
