"""Inverted value index over searchable columns.

Pre-indexing the data is the standard enabling structure of keyword search
over RDBMSs (DBXplorer-style symbol tables).  The index maps every distinct
normalized value of each *searchable* column to the posting list of rows
holding it, so the mapper can decide in O(1) whether a keyword could be a
database value and where.

Only the columns registered as searchable are indexed — Nebula registers
the referencing columns of the ConceptRefs table, mirroring the paper's
restriction of the Value-Map to "columns included in the ConceptRefs
auxiliary table".

Lookups are hot-path: selectivity probes and scope restriction run once
per (keyword, column) pair of every annotation, so alongside the token →
postings map the index maintains derived structures kept in sync on every
mutation:

* per-``(token, table)`` and per-``(token, table, column)`` posting
  buckets, making :meth:`lookup_in` proportional to the *restricted*
  result instead of the token's full posting list;
* per-``(token, table, column)`` counts, making :meth:`selectivity` and
  :meth:`column_counts` O(1);
* cached immutable posting views, so :meth:`lookup` stops allocating a
  fresh tuple per call;
* a :attr:`generation` counter, bumped on every mutation — the version
  key of :class:`repro.perf.cache.AnalysisCache` entries derived from
  this index.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

from ..storage.compat import Connection
from ..utils.sql import quote_identifier
from ..utils.tokenize import normalize_word

#: Shared empty result so absent tokens never allocate.
_EMPTY: Tuple["Posting", ...] = ()


@dataclass(frozen=True)
class Posting:
    """One occurrence of a value: which column of which row holds it."""

    table: str
    column: str
    rowid: int


class InvertedValueIndex:
    """Exact-match inverted index over registered (table, column) pairs."""

    def __init__(self) -> None:
        self._postings: Dict[str, List[Posting]] = {}
        self._columns: set = set()
        self._value_counts: Dict[Tuple[str, str], int] = {}
        #: Cached immutable views of ``_postings``, built lazily per token
        #: and dropped when that token's posting list mutates.
        self._views: Dict[str, Tuple[Posting, ...]] = {}
        #: (token, table_key) -> postings restricted to that table.
        self._by_table: Dict[Tuple[str, str], List[Posting]] = {}
        #: (token, table_key, column_key) -> postings of that column.
        self._by_column: Dict[Tuple[str, str, str], List[Posting]] = {}
        #: (token, table_key, column_key) -> posting count (selectivity).
        self._counts: Dict[Tuple[str, str, str], int] = {}
        #: token -> {(table, column) original-case: count} in first-seen
        #: posting order (what the mapper's value weighting iterates).
        self._surface_counts: Dict[str, Dict[Tuple[str, str], int]] = {}
        #: Bumped on every mutation; versions externally cached results.
        self._generation = 0

    @property
    def generation(self) -> int:
        return self._generation

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def add_column(self, connection: Connection, table: str, column: str) -> int:
        """Index one column; returns the number of rows indexed."""
        key = (table.casefold(), column.casefold())
        if key in self._columns:
            return 0
        self._columns.add(key)
        self._generation += 1
        count = 0
        cursor = connection.execute(
            f"SELECT rowid, {quote_identifier(column)} "
            f"FROM {quote_identifier(table)} "
            f"WHERE {quote_identifier(column)} IS NOT NULL"
        )
        for rowid, value in cursor:
            token = normalize_word(str(value))
            if not token:
                continue
            self._insert(token, Posting(table=table, column=column, rowid=int(rowid)))
            count += 1
        self._value_counts[key] = self._value_counts.get(key, 0) + count
        return count

    @classmethod
    def build(
        cls,
        connection: Connection,
        columns: Iterable[Tuple[str, str]],
    ) -> "InvertedValueIndex":
        """Build an index over ``columns`` of (table, column) pairs."""
        index = cls()
        for table, column in columns:
            index.add_column(connection, table, column)
        return index

    def add_row(self, table: str, column: str, rowid: int, value: str) -> None:
        """Incrementally index one newly inserted value."""
        key = (table.casefold(), column.casefold())
        self._columns.add(key)
        token = normalize_word(str(value))
        if not token:
            return
        self._generation += 1
        self._insert(token, Posting(table, column, rowid))
        self._value_counts[key] = self._value_counts.get(key, 0) + 1

    def _insert(self, token: str, posting: Posting) -> None:
        """Append one posting, keeping every derived structure in sync."""
        self._postings.setdefault(token, []).append(posting)
        self._views.pop(token, None)
        table_key = posting.table.casefold()
        column_key = posting.column.casefold()
        self._by_table.setdefault((token, table_key), []).append(posting)
        self._by_column.setdefault((token, table_key, column_key), []).append(posting)
        counted = (token, table_key, column_key)
        self._counts[counted] = self._counts.get(counted, 0) + 1
        surface = self._surface_counts.setdefault(token, {})
        surface_key = (posting.table, posting.column)
        surface[surface_key] = surface.get(surface_key, 0) + 1

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def lookup(self, word: str) -> Tuple[Posting, ...]:
        """Exact (normalized) postings of ``word`` — a cached immutable
        view, not a fresh copy per call."""
        token = normalize_word(word)
        view = self._views.get(token)
        if view is not None:
            return view
        postings = self._postings.get(token)
        if postings is None:
            return _EMPTY
        view = tuple(postings)
        self._views[token] = view
        return view

    def lookup_in(
        self, word: str, table: str, column: Optional[str] = None
    ) -> Tuple[Posting, ...]:
        """Postings of ``word`` restricted to a table (and column)."""
        token = normalize_word(word)
        table_key = table.casefold()
        if column is None:
            bucket = self._by_table.get((token, table_key))
        else:
            bucket = self._by_column.get((token, table_key, column.casefold()))
        return tuple(bucket) if bucket else _EMPTY

    def document_frequency(self, word: str) -> int:
        """Number of rows holding ``word`` across all indexed columns."""
        postings = self._postings.get(normalize_word(word))
        return len(postings) if postings is not None else 0

    def match_count(self, word: str, table: str, column: str) -> int:
        """Rows of ``table.column`` holding ``word`` — O(1)."""
        return self._counts.get(
            (normalize_word(word), table.casefold(), column.casefold()), 0
        )

    def column_counts(self, word: str) -> Dict[Tuple[str, str], int]:
        """Per-(table, column) match counts of ``word``, in first-seen
        posting order (the mapper's value-evidence aggregation) — O(1)
        per column instead of a pass over the posting list."""
        return dict(self._surface_counts.get(normalize_word(word), {}))

    def selectivity(self, word: str, table: str, column: str) -> float:
        """1 / (matching rows in the column); 0.0 when absent.

        Rare values are more credible embedded references than values
        occurring in thousands of rows, so mapping weight scales with this.
        """
        matches = self.match_count(word, table, column)
        if matches == 0:
            return 0.0
        return 1.0 / matches

    @property
    def indexed_columns(self) -> FrozenSet[Tuple[str, str]]:
        return frozenset(self._columns)

    def __len__(self) -> int:
        """Number of distinct indexed tokens."""
        return len(self._postings)
