"""Keyword search over relational databases.

Nebula treats keyword search as a pluggable component (paper §4: "any other
technique can be used ... which can be a black box").  The paper plugs in
the metadata-driven approach of Bergamaschi et al. (SIGMOD 2011); this
package rebuilds that approach from its published description:

1. each input keyword gets weighted *mappings* onto schema items (table or
   column names) and database values (:mod:`repro.search.mapper`);
2. consistent combinations of mappings form *configurations*, each
   capturing one possible semantics of the query
   (:mod:`repro.search.configurations`);
3. each configuration translates into one or more SQL queries over the
   database, joined along FK-PK paths (:mod:`repro.search.sqlgen`);
4. executing the SQL yields tuples, each inheriting its configuration's
   confidence (:mod:`repro.search.engine`).

:mod:`repro.search.naive` is the paper's Naive baseline: the entire
annotation text submitted as one keyword query.
"""

from .metadata import SchemaGraph, ForeignKey, ColumnInfo
from .index import InvertedValueIndex, Posting
from .persist import PersistentValueIndex
from .mapper import KeywordMapper, Mapping, MappingKind
from .configurations import Configuration, enumerate_configurations
from .sqlgen import GeneratedSQL, generate_sql
from .engine import KeywordQuery, KeywordSearchEngine, SearchResult, SearchScope
from .naive import NaiveSearch

__all__ = [
    "SchemaGraph",
    "ForeignKey",
    "ColumnInfo",
    "InvertedValueIndex",
    "PersistentValueIndex",
    "Posting",
    "KeywordMapper",
    "Mapping",
    "MappingKind",
    "Configuration",
    "enumerate_configurations",
    "GeneratedSQL",
    "generate_sql",
    "KeywordQuery",
    "KeywordSearchEngine",
    "SearchResult",
    "SearchScope",
    "NaiveSearch",
]
