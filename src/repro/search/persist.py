"""Disk-resident, incrementally-maintained inverted value index.

The in-memory :class:`~repro.search.index.InvertedValueIndex` is rebuilt
from scratch on every engine open — a full scan of every searchable
column, which is the cold-start cost that caps service startup time and
the memory that caps database size (EMBANKS-style disk-based keyword
indexes are the standard answer).  This module keeps the very same index
in two backend tables instead:

``_nebula_index_postings``
    One row per posting: ``(token, tbl, col, row_id)`` plus a
    monotonically increasing ``posting_id`` that preserves build
    insertion order, so lazily loaded pages reproduce the in-memory
    index's first-seen ordering exactly (the mapper's value-evidence
    aggregation iterates it).

``_nebula_index_stats``
    Small key-value rows ``(kind, tbl, col) -> value``: the persisted
    ``generation`` counter and schema version (``kind='meta'``), the
    per-column indexed-row counts (``kind='column'``), and per-column
    *staleness stamps* (``kind='stamp_count'`` / ``'stamp_maxrow'``):
    the ``COUNT(*)`` of non-null values and ``MAX(rowid)`` of each
    indexed column at persist time.  An open revalidates the stamps
    against the live data; any mismatch (rows bulk-loaded behind the
    index's back, deletions, a changed searchable-column set) falls
    back to rebuild-and-persist.

:class:`PersistentValueIndex` satisfies the full
:class:`~repro.search.index.InvertedValueIndex` interface.  Postings are
fetched **per token** on first lookup and cached in a bounded
:class:`~repro.perf.pagecache.LruPageCache`, so a valid persisted index
opens in O(#columns) stamp probes instead of O(#rows) — and the resident
set is the working set of hot tokens, not the whole index.  Incremental
maintenance (``add_row``, the editor's ingestion hook) writes the
posting, counts, stamps, and generation inside the caller's open
transaction, so a rolled-back ingestion rolls the index back with it.

Every identifier interpolated into SQL goes through
:func:`~repro.utils.sql.quote_identifier`; the ``_nebula_*`` table names
are fixed literals, mirroring :mod:`repro.annotations.store`.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..observability.metrics import MetricsRegistry
from ..observability.tracing import NOOP_TRACER, TracerLike
from ..perf.pagecache import LruPageCache
from ..perf.cache import MISS
from ..storage.compat import Connection
from ..utils.sql import quote_identifier
from ..utils.tokenize import normalize_word
from .index import _EMPTY, InvertedValueIndex, Posting

#: Bump when the persisted layout changes; a mismatch forces a rebuild.
SCHEMA_VERSION = 1

_DDL = """
CREATE TABLE IF NOT EXISTS _nebula_index_postings (
    posting_id INTEGER PRIMARY KEY,
    token      TEXT NOT NULL,
    tbl        TEXT NOT NULL,
    col        TEXT NOT NULL,
    row_id     INTEGER NOT NULL
);
CREATE INDEX IF NOT EXISTS _nebula_index_postings_token
    ON _nebula_index_postings (token);
CREATE TABLE IF NOT EXISTS _nebula_index_stats (
    kind  TEXT NOT NULL,
    tbl   TEXT NOT NULL,
    col   TEXT NOT NULL,
    value INTEGER NOT NULL,
    PRIMARY KEY (kind, tbl, col)
);
"""


def ensure_schema(connection: Connection) -> None:
    """Create the index tables when absent (idempotent)."""
    connection.executescript(_DDL)


def _column_key(table: str, column: str) -> Tuple[str, str]:
    return (table.casefold(), column.casefold())


def _dedup_columns(
    columns: Iterable[Tuple[str, str]]
) -> List[Tuple[str, str]]:
    """Original-case column pairs, first occurrence wins (casefolded)."""
    seen: set = set()
    ordered: List[Tuple[str, str]] = []
    for table, column in columns:
        key = _column_key(table, column)
        if key not in seen:
            seen.add(key)
            ordered.append((table, column))
    return ordered


def _live_stamp(
    connection: Connection, table: str, column: str
) -> Tuple[int, int]:
    """``(COUNT(*) non-null, MAX(rowid))`` of one indexed column, live."""
    row = connection.execute(
        f"SELECT COUNT(*), COALESCE(MAX(rowid), 0) "
        f"FROM {quote_identifier(table)} "
        f"WHERE {quote_identifier(column)} IS NOT NULL"
    ).fetchone()
    return int(row[0]), int(row[1])


class _TokenPage:
    """One token's decoded posting list plus its derived lookups."""

    __slots__ = ("postings", "by_table", "by_column", "counts", "surface_counts")

    def __init__(self, rows: Sequence[Tuple[str, str, int]]) -> None:
        postings: List[Posting] = []
        by_table: Dict[str, List[Posting]] = {}
        by_column: Dict[Tuple[str, str], List[Posting]] = {}
        counts: Dict[Tuple[str, str], int] = {}
        surface: Dict[Tuple[str, str], int] = {}
        for table, column, rowid in rows:
            posting = Posting(table=table, column=column, rowid=int(rowid))
            postings.append(posting)
            table_key = table.casefold()
            column_key = column.casefold()
            by_table.setdefault(table_key, []).append(posting)
            by_column.setdefault((table_key, column_key), []).append(posting)
            counts[(table_key, column_key)] = (
                counts.get((table_key, column_key), 0) + 1
            )
            surface[(table, column)] = surface.get((table, column), 0) + 1
        self.postings: Tuple[Posting, ...] = tuple(postings)
        self.by_table: Dict[str, Tuple[Posting, ...]] = {
            key: tuple(bucket) for key, bucket in by_table.items()
        }
        self.by_column: Dict[Tuple[str, str], Tuple[Posting, ...]] = {
            key: tuple(bucket) for key, bucket in by_column.items()
        }
        self.counts = counts
        self.surface_counts = surface


class PersistentValueIndex(InvertedValueIndex):
    """The inverted value index served from backend tables.

    Satisfies the whole in-memory interface; posting lists live on disk
    and materialize lazily per token through a bounded LRU page cache.
    Construction does not touch the tables — use :meth:`open` (validate,
    then lazy-load or rebuild-and-persist) or :meth:`rebuild`.
    """

    def __init__(
        self,
        connection: Connection,
        page_cache_size: int = 4096,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        super().__init__()
        self.connection = connection
        self._pages: LruPageCache[str, _TokenPage] = LruPageCache(
            page_cache_size, metrics=metrics
        )
        #: Mirror of the ``stamp_*`` stats rows, kept for O(1) stamp
        #: maintenance on the incremental write path.
        self._stamps: Dict[Tuple[str, str, str], int] = {}

    # ------------------------------------------------------------------
    # Open protocol
    # ------------------------------------------------------------------

    @classmethod
    def open(
        cls,
        connection: Connection,
        columns: Iterable[Tuple[str, str]],
        page_cache_size: int = 4096,
        metrics: Optional[MetricsRegistry] = None,
        tracer: TracerLike = NOOP_TRACER,
    ) -> Tuple["PersistentValueIndex", str]:
        """Open the persisted index over ``columns``.

        Returns ``(index, source)`` where ``source`` is ``"loaded"``
        when a valid persisted image was adopted without reading a
        single posting, or ``"rebuilt"`` when the image was absent or
        stale and a fresh build was persisted (and committed).
        """
        requested = _dedup_columns(columns)
        ensure_schema(connection)
        index = cls(connection, page_cache_size=page_cache_size, metrics=metrics)
        with tracer.span("index.load") as span:
            loaded = index._load_if_valid(requested)
            span.set_attribute("valid", loaded)
            span.set_attribute("columns", len(requested))
        if loaded:
            return index, "loaded"
        with tracer.span("index.build") as span:
            index._rebuild(requested)
            # The rebuild must survive the caller never committing (a
            # read-only CLI command) and the service's startup rollback;
            # the manager's ``executescript`` has already folded any
            # pending caller transaction at engine-construction time, so
            # this commit finalizes only index writes.
            connection.commit()
            span.set_attribute("columns", len(requested))
        return index, "rebuilt"

    def _stored_stats(self) -> Dict[Tuple[str, str, str], int]:
        return {
            (str(kind), str(tbl), str(col)): int(value)
            for kind, tbl, col, value in self.connection.execute(
                "SELECT kind, tbl, col, value FROM _nebula_index_stats"
            )
        }

    def _load_if_valid(self, columns: Sequence[Tuple[str, str]]) -> bool:
        """Adopt the persisted image when its stamps match the live data."""
        stats = self._stored_stats()
        if stats.get(("meta", "schema_version", "")) != SCHEMA_VERSION:
            return False
        stored_columns = {
            (tbl, col)
            for kind, tbl, col in stats
            if kind == "column"
        }
        requested = {_column_key(t, c) for t, c in columns}
        if stored_columns != requested:
            return False
        for table, column in columns:
            tkey, ckey = _column_key(table, column)
            count, max_rowid = _live_stamp(self.connection, table, column)
            if stats.get(("stamp_count", tkey, ckey)) != count:
                return False
            if stats.get(("stamp_maxrow", tkey, ckey)) != max_rowid:
                return False
        self._generation = stats.get(("meta", "generation", ""), 0)
        self._columns = set(requested)
        self._value_counts = {
            (tbl, col): value
            for (kind, tbl, col), value in stats.items()
            if kind == "column"
        }
        self._stamps = {
            key: value
            for key, value in stats.items()
            if key[0] in ("stamp_count", "stamp_maxrow")
        }
        return True

    def _rebuild(self, columns: Sequence[Tuple[str, str]]) -> None:
        """Discard any persisted image and rebuild + persist from data."""
        generation = self._generation + 1
        self.connection.execute("DELETE FROM _nebula_index_postings")
        self.connection.execute("DELETE FROM _nebula_index_stats")
        self._columns = set()
        self._value_counts = {}
        self._stamps = {}
        self._pages.clear()
        self._generation = generation
        for table, column in columns:
            key = _column_key(table, column)
            self._columns.add(key)
            count = self._persist_column(table, column)
            self._value_counts[key] = count
            self._set_stat("column", key[0], key[1], count)
            self._stamp_from_data(table, column)
        self._set_stat("meta", "schema_version", "", SCHEMA_VERSION)
        self._set_stat("meta", "generation", "", self._generation)
        # Provenance: which commit of the append-only annotation log this
        # image was persisted at (0 when the log table is absent — the
        # index can run standalone on an unmigrated database).
        self._set_stat("meta", "commit", "", self._commit_head())

    def rebuild(self, columns: Iterable[Tuple[str, str]]) -> None:
        """Force a rebuild-and-persist (plus commit) regardless of stamps.

        ``repro index build`` calls this for explicit management; normal
        opens go through :meth:`open`, which rebuilds only when stale.
        """
        self._rebuild(_dedup_columns(columns))
        self.connection.commit()

    def refresh(self, columns: Iterable[Tuple[str, str]]) -> bool:
        """Revalidate the stamps; rebuild, persist and commit when stale.

        Returns True when a rebuild ran.  The service's startup recovery
        calls this (through ``Nebula.ensure_index_fresh``) before going
        ready, so data loaded behind the index's back — ``repro.datagen``
        bulk inserts, deletions, restored backups — cannot serve stale
        search results.
        """
        requested = _dedup_columns(columns)
        if self._load_if_valid(requested):
            return False
        self._rebuild(requested)
        self.connection.commit()
        return True

    def _persist_column(self, table: str, column: str) -> int:
        """Scan one column into the postings table; rows indexed."""
        cursor = self.connection.execute(
            f"SELECT rowid, {quote_identifier(column)} "
            f"FROM {quote_identifier(table)} "
            f"WHERE {quote_identifier(column)} IS NOT NULL"
        )
        rows: List[Tuple[str, str, str, int]] = []
        for rowid, value in cursor:
            token = normalize_word(str(value))
            if not token:
                continue
            rows.append((token, table, column, int(rowid)))
        if rows:
            self.connection.executemany(
                "INSERT INTO _nebula_index_postings (token, tbl, col, row_id) "
                "VALUES (?, ?, ?, ?)",
                rows,
            )
        return len(rows)

    def _set_stat(self, kind: str, tbl: str, col: str, value: int) -> None:
        self.connection.execute(
            "INSERT INTO _nebula_index_stats (kind, tbl, col, value) "
            "VALUES (?, ?, ?, ?) "
            "ON CONFLICT (kind, tbl, col) DO UPDATE SET value = excluded.value",
            (kind, tbl, col, int(value)),
        )

    def _commit_head(self) -> int:
        """Newest annotation-log commit id; 0 when the log is absent."""
        try:
            row = self.connection.execute(
                "SELECT COALESCE(MAX(commit_id), 0) FROM _nebula_commits"
            ).fetchone()
        except Exception:
            return 0
        return int(row[0])

    def _stamp_from_data(self, table: str, column: str) -> None:
        """Recompute + persist one column's staleness stamps from data."""
        tkey, ckey = _column_key(table, column)
        count, max_rowid = _live_stamp(self.connection, table, column)
        self._stamps[("stamp_count", tkey, ckey)] = count
        self._stamps[("stamp_maxrow", tkey, ckey)] = max_rowid
        self._set_stat("stamp_count", tkey, ckey, count)
        self._set_stat("stamp_maxrow", tkey, ckey, max_rowid)

    # ------------------------------------------------------------------
    # Construction interface (InvertedValueIndex parity)
    # ------------------------------------------------------------------

    def add_column(self, connection: Connection, table: str, column: str) -> int:
        """Index one more column incrementally, persisting its postings."""
        key = _column_key(table, column)
        if key in self._columns:
            return 0
        self._columns.add(key)
        self._generation += 1
        count = self._persist_column(table, column)
        self._value_counts[key] = self._value_counts.get(key, 0) + count
        self._set_stat("column", key[0], key[1], self._value_counts[key])
        self._stamp_from_data(table, column)
        self._set_stat("meta", "generation", "", self._generation)
        # New postings may belong to already-cached tokens.
        self._pages.clear()
        return count

    def add_row(self, table: str, column: str, rowid: int, value: str) -> None:
        """Incrementally index one newly inserted value.

        Runs inside the caller's open transaction (the editor calls this
        right after inserting the data row), so a rollback reverts the
        posting, the counts, the stamps, and the persisted generation
        together with the data change.
        """
        key = _column_key(table, column)
        self._columns.add(key)
        token = normalize_word(str(value))
        if not token:
            return
        self._generation += 1
        self.connection.execute(
            "INSERT INTO _nebula_index_postings (token, tbl, col, row_id) "
            "VALUES (?, ?, ?, ?)",
            (token, table, column, int(rowid)),
        )
        self._value_counts[key] = self._value_counts.get(key, 0) + 1
        self._set_stat("column", key[0], key[1], self._value_counts[key])
        count_key = ("stamp_count", key[0], key[1])
        maxrow_key = ("stamp_maxrow", key[0], key[1])
        self._stamps[count_key] = self._stamps.get(count_key, 0) + 1
        self._stamps[maxrow_key] = max(self._stamps.get(maxrow_key, 0), int(rowid))
        self._set_stat(*count_key, self._stamps[count_key])
        self._set_stat(*maxrow_key, self._stamps[maxrow_key])
        self._set_stat("meta", "generation", "", self._generation)
        self._pages.invalidate(token)

    # ------------------------------------------------------------------
    # Lookup (lazy, page-cached)
    # ------------------------------------------------------------------

    def _page(self, token: str) -> _TokenPage:
        cached = self._pages.get(token)
        if cached is not MISS:
            return cached  # type: ignore[return-value]
        rows = self.connection.execute(
            "SELECT tbl, col, row_id FROM _nebula_index_postings "
            "WHERE token = ? ORDER BY posting_id",
            (token,),
        ).fetchall()
        page = _TokenPage(rows)
        self._pages.put(token, page)
        return page

    def lookup(self, word: str) -> Tuple[Posting, ...]:
        token = normalize_word(word)
        if not token:
            return _EMPTY
        return self._page(token).postings

    def lookup_in(
        self, word: str, table: str, column: Optional[str] = None
    ) -> Tuple[Posting, ...]:
        token = normalize_word(word)
        if not token:
            return _EMPTY
        page = self._page(token)
        if column is None:
            bucket = page.by_table.get(table.casefold())
        else:
            bucket = page.by_column.get((table.casefold(), column.casefold()))
        return bucket if bucket is not None else _EMPTY

    def document_frequency(self, word: str) -> int:
        token = normalize_word(word)
        if not token:
            return 0
        return len(self._page(token).postings)

    def match_count(self, word: str, table: str, column: str) -> int:
        token = normalize_word(word)
        if not token:
            return 0
        return self._page(token).counts.get(
            (table.casefold(), column.casefold()), 0
        )

    def column_counts(self, word: str) -> Dict[Tuple[str, str], int]:
        token = normalize_word(word)
        if not token:
            return {}
        return dict(self._page(token).surface_counts)

    def __len__(self) -> int:
        row = self.connection.execute(
            "SELECT COUNT(DISTINCT token) FROM _nebula_index_postings"
        ).fetchone()
        return int(row[0])

    # ------------------------------------------------------------------
    # Introspection / verification
    # ------------------------------------------------------------------

    def posting_count(self) -> int:
        row = self.connection.execute(
            "SELECT COUNT(*) FROM _nebula_index_postings"
        ).fetchone()
        return int(row[0])

    def describe(self) -> Dict[str, object]:
        """Status document for ``repro index status`` and tests."""
        persisted_at = self.connection.execute(
            "SELECT value FROM _nebula_index_stats "
            "WHERE kind = 'meta' AND tbl = 'commit'"
        ).fetchone()
        return {
            "schema_version": SCHEMA_VERSION,
            "generation": self.generation,
            "persisted_at_commit": 0 if persisted_at is None else int(persisted_at[0]),
            "columns": sorted(self._columns),
            "tokens": len(self),
            "postings": self.posting_count(),
            "page_cache": {
                "pages": len(self._pages),
                "capacity": self._pages.capacity,
                "hits": self._pages.stats.hits,
                "misses": self._pages.stats.misses,
            },
        }

    def parity_mismatches(
        self, reference: InvertedValueIndex, sample: Optional[int] = None
    ) -> List[str]:
        """Differences vs an in-memory reference index (empty = equal).

        Compares the distinct-token count, then every persisted token's
        postings, per-column counts, and surface aggregation against the
        reference (``sample`` bounds the number of tokens checked).
        """
        problems: List[str] = []
        if len(self) != len(reference):
            problems.append(
                f"distinct tokens differ: persisted={len(self)} "
                f"memory={len(reference)}"
            )
        cursor = self.connection.execute(
            "SELECT DISTINCT token FROM _nebula_index_postings ORDER BY token"
        )
        for checked, (token,) in enumerate(cursor):
            if sample is not None and checked >= sample:
                break
            if self.lookup(token) != reference.lookup(token):
                problems.append(f"postings differ for token {token!r}")
            elif self.column_counts(token) != reference.column_counts(token):
                problems.append(f"column counts differ for token {token!r}")
            if len(problems) >= 20:
                problems.append("... (truncated)")
                break
        if self.indexed_columns != reference.indexed_columns:
            problems.append("indexed column sets differ")
        return problems
