"""Keyword -> mapping weight assignment (step 1 of the search technique).

"The algorithm starts by assigning weights to each of the input keywords
capturing whether a keyword has a potential mapping to a schema item, e.g.,
a table name or column name, or a database value" (paper §4).

For each keyword the mapper produces zero or more weighted
:class:`Mapping` objects of three kinds:

* ``TABLE`` — keyword names a table (exact name, alias, or synonym);
* ``COLUMN`` — keyword names a column;
* ``VALUE`` — keyword occurs as a value of an indexed column, weighted by
  how selective the value is there.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import (
    TYPE_CHECKING,
    Dict,
    List,
    Mapping as TMapping,
    Optional,
    Sequence,
    Tuple,
    cast,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..meta.lexicon import Lexicon

from ..perf.cache import MISS, AnalysisCache
from ..utils.tokenize import is_stopword, normalize_word
from .index import InvertedValueIndex
from .metadata import SchemaGraph

EXACT_NAME_WEIGHT = 0.95
ALIAS_NAME_WEIGHT = 0.85
SYNONYM_NAME_WEIGHT = 0.60
VALUE_BASE_WEIGHT = 0.90
#: A value seen in many rows is weak evidence; weight decays toward this.
VALUE_FLOOR_WEIGHT = 0.35


class MappingKind(str, Enum):
    TABLE = "table"
    COLUMN = "column"
    VALUE = "value"


@dataclass(frozen=True)
class Mapping:
    """One weighted interpretation of one keyword."""

    keyword: str
    kind: MappingKind
    table: str
    column: Optional[str]
    weight: float

    @property
    def target(self) -> Tuple[str, str, Optional[str]]:
        return (self.kind.value, self.table.casefold(), (self.column or "").casefold() or None)


class KeywordMapper:
    """Compute candidate mappings for the keywords of a query.

    ``aliases`` lets the caller inject domain knowledge (the same equivalent
    names NebulaMeta holds) without coupling the search engine to Nebula:
    it maps a normalized alias to a ``(table, column-or-None)`` target.
    """

    def __init__(
        self,
        schema: SchemaGraph,
        index: InvertedValueIndex,
        aliases: Optional[TMapping[str, Tuple[str, Optional[str]]]] = None,
        lexicon: Optional["Lexicon"] = None,
        max_mappings_per_keyword: int = 4,
        cache: Optional[AnalysisCache] = None,
    ) -> None:
        self.schema = schema
        self.index = index
        self.aliases = {normalize_word(k): v for k, v in (aliases or {}).items()}
        self.lexicon = lexicon
        self.max_mappings_per_keyword = max_mappings_per_keyword
        self.cache = cache

    # ------------------------------------------------------------------

    def map_keyword(self, keyword: str) -> List[Mapping]:
        """All candidate mappings of one keyword, best first.

        Memoized per exact keyword string when a cache is attached; the
        entry is versioned on the index and lexicon generations, so an
        ``add_row`` or ``add_synset`` lazily invalidates it.
        """
        if self.cache is not None:
            generation = self._generation()
            cached = self.cache.get("mapper.keyword", keyword, generation)
            if cached is not MISS:
                return list(cast(Tuple[Mapping, ...], cached))
            computed = self._map_keyword(keyword)
            self.cache.put("mapper.keyword", keyword, generation, tuple(computed))
            return computed
        return self._map_keyword(keyword)

    def _map_keyword(self, keyword: str) -> List[Mapping]:
        key = normalize_word(keyword)
        if not key or is_stopword(key):
            return []
        mappings = self._schema_mappings(keyword, key) + self._value_mappings(keyword)
        mappings.sort(key=lambda m: (-m.weight, m.table, m.column or ""))
        return mappings[: self.max_mappings_per_keyword]

    def map_query(self, keywords: Sequence[str]) -> Dict[str, List[Mapping]]:
        """Mappings for every keyword of a query (stopwords map to []).

        Duplicate keywords are mapped once — repeated words in annotation
        text previously recomputed the identical mapping per occurrence.
        """
        mapped: Dict[str, List[Mapping]] = {}
        for keyword in keywords:
            if keyword not in mapped:
                mapped[keyword] = self.map_keyword(keyword)
        return mapped

    def _generation(self) -> Tuple[int, int]:
        """Version stamp of everything ``map_keyword`` reads besides the
        immutable schema graph and construction-time aliases."""
        lexicon_generation = self.lexicon.generation if self.lexicon is not None else 0
        return (self.index.generation, lexicon_generation)

    # ------------------------------------------------------------------

    def _schema_mappings(self, keyword: str, key: str) -> List[Mapping]:
        found: List[Mapping] = []
        for table, table_key, columns in self.schema.normalized_names():
            weight = self._name_weight(key, table_key)
            if weight > 0.0:
                found.append(
                    Mapping(keyword, MappingKind.TABLE, table, None, weight)
                )
            for column, column_key in columns:
                weight = self._name_weight(key, column_key)
                if weight > 0.0:
                    found.append(
                        Mapping(keyword, MappingKind.COLUMN, table, column, weight)
                    )
        alias_target = self.aliases.get(key)
        if alias_target is not None:
            table, column = alias_target
            kind = MappingKind.COLUMN if column else MappingKind.TABLE
            found.append(Mapping(keyword, kind, table, column, ALIAS_NAME_WEIGHT))
        return found

    def _name_weight(self, key: str, name_key: str) -> float:
        if key == name_key:
            return EXACT_NAME_WEIGHT
        if self.lexicon is not None and self.lexicon.are_synonyms(key, name_key):
            return SYNONYM_NAME_WEIGHT
        return 0.0

    def _value_mappings(self, keyword: str) -> List[Mapping]:
        # Precomputed per-column counts; same (table, column) insertion
        # order as a pass over the posting list would produce.
        per_column = self.index.column_counts(keyword)
        if not per_column:
            return []
        found: List[Mapping] = []
        for (table, column), count in per_column.items():
            weight = self._value_weight(count)
            found.append(Mapping(keyword, MappingKind.VALUE, table, column, weight))
        return found

    @staticmethod
    def _value_weight(match_count: int) -> float:
        """Selectivity-weighted value evidence.

        A unique value gets the full base weight; weight decays smoothly
        toward the floor as the value becomes common (1/2 at 2 rows never
        drops below the floor).
        """
        if match_count <= 0:
            return 0.0
        decayed = VALUE_BASE_WEIGHT / (1.0 + 0.15 * (match_count - 1))
        return max(VALUE_FLOOR_WEIGHT, decayed)
