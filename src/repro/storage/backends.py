"""Pluggable storage backends behind the annotation pipeline.

A :class:`StorageBackend` is the engine's whole window onto persistent
storage: the **primary** read-write connection the pipeline runs on, a
:class:`~repro.storage.pool.ConnectionPool` of auxiliary handles, a
factory for **reader** connections that may run concurrently with the
primary (the parallel Stage-2 executor's workers), and the
:class:`~repro.storage.dialect.Dialect` describing the SQL flavor.

Three concrete engines ship with the reproduction:

* :class:`SqliteFileBackend` — a file-backed SQLite database; readers
  are ``mode=ro`` URI connections, so Stage-2 statements can run in
  parallel with the main connection's write transaction;
* :class:`SqliteMemoryBackend` — a named shared-cache in-memory SQLite
  database.  Unlike a bare ``:memory:`` connection (private to its
  opener), the shared cache lets the pool and readers open additional
  handles onto the *same* data — this replaces the bespoke per-thread
  connection logic the parallel executor used to carry;
* :class:`RawConnectionBackend` — the backward-compatibility adapter
  wrapping an externally created :class:`Connection` (the historical
  ``Nebula(connection=...)`` construction).  When the wrapped
  connection is file-backed it regains full reader/pool support by
  deriving the path; a private ``:memory:`` connection degrades to a
  single-handle backend.

Registering a fourth engine (Postgres, DuckDB, ...) means implementing
this protocol plus a :class:`Dialect` and calling
:func:`repro.storage.registry.register_backend` — the pipeline itself
never changes (see docs/storage.md).
"""

from __future__ import annotations

import itertools
import os
import threading
from pathlib import Path
from types import TracebackType
from typing import Optional, Protocol, Type, runtime_checkable

from ..errors import StorageError
from . import compat
from .compat import Connection
from .dialect import SQLITE_DIALECT, Dialect
from .pool import ConnectionPool, PooledConnection


@runtime_checkable
class StorageBackend(Protocol):
    """What every storage engine must provide to the pipeline."""

    #: Engine identifier (``"sqlite-file"``, ``"sqlite-memory"``, ...).
    name: str
    #: SQL flavor of this engine.
    dialect: Dialect

    @property
    def primary(self) -> Connection:
        """The engine's main read-write connection (stable identity)."""
        ...

    @property
    def supports_concurrent_reads(self) -> bool:
        """Whether :meth:`open_reader` can hand out live reader handles."""
        ...

    def connect(self) -> Connection:
        """Open a new read-write connection to the same database."""
        ...

    def open_reader(self) -> Optional[Connection]:
        """A connection safe for reads concurrent with the primary, or
        ``None`` when the engine cannot provide one.  The caller owns
        the handle and must close it."""
        ...

    def acquire(self, timeout: Optional[float] = None) -> PooledConnection:
        """Lease an auxiliary connection from the backend's pool."""
        ...

    def close(self) -> None:
        """Release the pool and every owned connection."""
        ...

    def __enter__(self) -> "StorageBackend":
        ...

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        ...


class _SqliteBackendBase:
    """Shared lifecycle: lazy primary, lazy pool, close bookkeeping."""

    name = "sqlite"

    def __init__(
        self,
        pool_size: int = 4,
        pool_timeout: float = 5.0,
        dialect: Dialect = SQLITE_DIALECT,
    ) -> None:
        self.dialect = dialect
        self.pool_size = pool_size
        self.pool_timeout = pool_timeout
        self._primary: Optional[Connection] = None
        self._pool: Optional[ConnectionPool] = None
        self._lock = threading.Lock()
        self._closed = False
        #: Whether ``close`` also closes the primary connection.
        self._owns_primary = True

    # -- to implement ---------------------------------------------------

    def connect(self) -> Connection:
        raise NotImplementedError

    def open_reader(self) -> Optional[Connection]:
        return None

    @property
    def supports_concurrent_reads(self) -> bool:
        return False

    # -- shared machinery ----------------------------------------------

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def primary(self) -> Connection:
        with self._lock:
            self._ensure_open()
            if self._primary is None:
                # Lazy one-time init: connect() runs PRAGMAs under the
                # backend-local lock exactly once; afterwards this path
                # is a pure dictionary read.
                self._primary = self.connect()  # nebula-lint: ignore[NBL011]
            return self._primary

    @property
    def pool(self) -> ConnectionPool:
        with self._lock:
            self._ensure_open()
            if self._pool is None:
                self._pool = ConnectionPool(
                    self.connect, size=self.pool_size, timeout=self.pool_timeout
                )
            return self._pool

    def acquire(self, timeout: Optional[float] = None) -> PooledConnection:
        return self.pool.acquire(timeout=timeout)

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            pool, self._pool = self._pool, None
            primary, self._primary = self._primary, None
        if pool is not None:
            pool.close()
        if primary is not None and self._owns_primary:
            primary.close()

    def _ensure_open(self) -> None:
        if self._closed:
            raise StorageError(f"storage backend {self.name!r} is closed")

    def __enter__(self) -> "_SqliteBackendBase":
        return self

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        self.close()


def _read_only_uri(path: str) -> str:
    return Path(path).resolve().as_uri() + "?mode=ro"


#: Journal modes :class:`SqliteFileBackend` accepts (SQLite's set).
JOURNAL_MODES = frozenset(
    {"wal", "delete", "truncate", "persist", "memory", "off"}
)


class SqliteFileBackend(_SqliteBackendBase):
    """A file-backed SQLite database with read-only reader connections.

    The backend opens every connection in ``journal_mode`` (WAL by
    default — readers proceed while a write transaction is open, the
    property the concurrent annotation service builds on) and with a
    ``busy_timeout`` so a briefly locked database waits instead of
    failing immediately.
    """

    name = "sqlite-file"

    def __init__(
        self,
        path: str,
        pool_size: int = 4,
        pool_timeout: float = 5.0,
        dialect: Dialect = SQLITE_DIALECT,
        journal_mode: str = "wal",
        busy_timeout: float = 5.0,
    ) -> None:
        super().__init__(pool_size, pool_timeout, dialect)
        if not path:
            raise StorageError("sqlite-file backend requires a database path")
        if journal_mode not in JOURNAL_MODES:
            raise StorageError(
                f"unknown journal mode {journal_mode!r} "
                f"(choose from {sorted(JOURNAL_MODES)})"
            )
        if busy_timeout < 0:
            raise StorageError("busy_timeout must be >= 0 seconds")
        self.path = str(path)
        self.journal_mode = journal_mode
        self.busy_timeout = busy_timeout

    def _apply_busy_timeout(self, connection: Connection) -> None:
        # PRAGMA takes no bound parameters; the value is a validated
        # non-negative float coerced to integer milliseconds.
        millis = int(self.busy_timeout * 1000)
        connection.execute(f"PRAGMA busy_timeout = {millis:d}")  # nebula-lint: ignore[NBL001]

    def connect(self) -> Connection:
        # check_same_thread=False: pooled handles may be leased by one
        # thread and returned (or closed at shutdown) by another; each
        # lease is still used by a single thread at a time.
        connection = compat.connect(self.path, check_same_thread=False)
        self._apply_busy_timeout(connection)
        # The journal mode is a property of the database file; setting it
        # on each read-write connection is idempotent.  The value is
        # whitelisted in __init__, never caller-interpolated.
        connection.execute(f"PRAGMA journal_mode = {self.journal_mode}")  # nebula-lint: ignore[NBL001]
        return connection

    def open_reader(self) -> Optional[Connection]:
        self._ensure_open()
        # mode=ro connections cannot change the journal mode (and need
        # not: it lives in the database file); the busy timeout still
        # applies so readers ride out checkpoint locks.
        reader = compat.connect(
            _read_only_uri(self.path), uri=True, check_same_thread=False
        )
        self._apply_busy_timeout(reader)
        return reader

    def checkpoint(self) -> None:
        """Fold the write-ahead log back into the database file.

        A no-op outside WAL mode.  Startup recovery calls this so a
        crash's WAL remnants are truncated before the service goes
        ready.
        """
        if self.journal_mode == "wal":
            self.primary.execute("PRAGMA wal_checkpoint(TRUNCATE)")

    @property
    def supports_concurrent_reads(self) -> bool:
        return not self._closed


#: Process-wide counter giving each shared-cache database a unique name.
_MEMORY_IDS = itertools.count(1)


class SqliteMemoryBackend(_SqliteBackendBase):
    """A named shared-cache in-memory SQLite database.

    The backend keeps one *anchor* connection (the primary) open for its
    whole lifetime — a shared-cache database lives exactly as long as
    its last connection — and every pooled or reader handle attaches to
    the same cache, so all of them see one database.
    """

    name = "sqlite-memory"

    def __init__(
        self,
        identifier: Optional[str] = None,
        pool_size: int = 4,
        pool_timeout: float = 5.0,
        dialect: Dialect = SQLITE_DIALECT,
    ) -> None:
        super().__init__(pool_size, pool_timeout, dialect)
        name = identifier or f"nebula-mem-{os.getpid()}-{next(_MEMORY_IDS)}"
        self.uri = f"file:{name}?mode=memory&cache=shared"
        # Materialize the anchor eagerly: a lazily created primary would
        # let an early pooled connection create (then drop) the database.
        with self._lock:
            self._primary = self.connect()

    def connect(self) -> Connection:
        return compat.connect(self.uri, uri=True, check_same_thread=False)

    def open_reader(self) -> Optional[Connection]:
        self._ensure_open()
        return self.connect()

    @property
    def supports_concurrent_reads(self) -> bool:
        return not self._closed


class RawConnectionBackend(_SqliteBackendBase):
    """Compatibility adapter over an externally created connection.

    ``close()`` releases the pool and readers but leaves the wrapped
    connection to its creator (matching the historical contract where
    callers of ``Nebula(connection, ...)`` owned the handle).
    """

    name = "sqlite-raw"

    def __init__(
        self,
        connection: Connection,
        pool_size: int = 4,
        pool_timeout: float = 5.0,
        dialect: Dialect = SQLITE_DIALECT,
    ) -> None:
        super().__init__(pool_size, pool_timeout, dialect)
        self._owns_primary = False
        self._primary = connection
        #: Filesystem path of the wrapped database; None when in-memory.
        self.path = compat.database_path(connection)

    def connect(self) -> Connection:
        if self.path is None:
            raise StorageError(
                "cannot open additional connections to a private in-memory "
                "database (use SqliteMemoryBackend for a shareable one)"
            )
        return compat.connect(self.path, check_same_thread=False)

    def open_reader(self) -> Optional[Connection]:
        self._ensure_open()
        if self.path is None:
            return None
        return compat.connect(
            _read_only_uri(self.path), uri=True, check_same_thread=False
        )

    @property
    def supports_concurrent_reads(self) -> bool:
        return self.path is not None and not self._closed


def wrap_connection(connection: Connection, pool_size: int = 4) -> RawConnectionBackend:
    """The documented adapter: a raw connection as a storage backend."""
    return RawConnectionBackend(connection, pool_size=pool_size)


def as_backend(source: object, pool_size: int = 4) -> StorageBackend:
    """Coerce ``source`` (backend or raw connection) into a backend."""
    if isinstance(source, Connection):
        return wrap_connection(source, pool_size=pool_size)
    if isinstance(source, StorageBackend):
        return source
    raise StorageError(
        f"expected a storage backend or a database connection, "
        f"got {type(source).__name__}"
    )
