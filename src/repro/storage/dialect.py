"""SQL dialect description for storage backends.

A :class:`Dialect` captures everything the pipeline's SQL construction
needs to know about the engine underneath: how values are bound
(placeholder style), how identifiers are quoted, the SAVEPOINT /
RELEASE / ROLLBACK syntax used by the resilience boundaries, and the
practical batching limits (``IN``-list width, ``executemany`` chunk
size).

The annotation layers never hard-code those facts; they ask the
backend's dialect.  A Postgres or DuckDB backend ships its own
:class:`Dialect` instance and the generated SQL adapts without touching
the pipeline (the EMBANKS-style separation of search logic from the
disk engine).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence, TypeVar

from ..utils.sql import quote_identifier as _quote_identifier
from ..utils.sql import quote_qualified as _quote_qualified

T = TypeVar("T")


@dataclass(frozen=True)
class Dialect:
    """Engine-specific SQL facts, immutable and shareable."""

    name: str = "sqlite"
    #: Positional bind-parameter marker (``?`` for SQLite, ``%s`` for
    #: Postgres drivers).
    placeholder: str = "?"
    #: Maximum bind variables per statement — the ``IN``-batch chunk
    #: limit (SQLite's historical SQLITE_MAX_VARIABLE_NUMBER default).
    max_variables: int = 999
    #: Rows per ``executemany`` flush for bulk ingestion.
    executemany_batch_size: int = 1000

    # -- value binding -------------------------------------------------

    def placeholders(self, count: int) -> str:
        """``"?, ?, ?"`` — a bind list for ``count`` values."""
        if count < 0:
            raise ValueError("placeholder count must be >= 0")
        return ", ".join(self.placeholder for _ in range(count))

    def chunked(self, values: Sequence[T]) -> Iterator[Sequence[T]]:
        """Split ``values`` into slices within the bind-variable limit."""
        limit = max(self.max_variables, 1)
        for start in range(0, len(values), limit):
            yield values[start : start + limit]

    # -- identifiers ---------------------------------------------------

    def quote_identifier(self, name: str) -> str:
        """Safely quoted identifier (validates; escapes embedded quotes)."""
        return _quote_identifier(name)

    def quote_qualified(self, table: str, column: str) -> str:
        """Safely quoted ``table.column`` pair."""
        return _quote_qualified(table, column)

    # -- transaction boundaries ----------------------------------------

    def savepoint_statement(self, name: str) -> str:
        return f"SAVEPOINT {_quote_identifier(name)}"

    def release_statement(self, name: str) -> str:
        return f"RELEASE SAVEPOINT {_quote_identifier(name)}"

    def rollback_statement(self, name: str) -> str:
        return f"ROLLBACK TO SAVEPOINT {_quote_identifier(name)}"


#: The dialect shared by every bundled SQLite backend.
SQLITE_DIALECT = Dialect()
