"""The storage backend layer.

Everything below the annotation pipeline that touches a database driver
lives here: the :mod:`sqlite3` compatibility adapter
(:mod:`repro.storage.compat` — the package's single driver import), the
SQL :class:`Dialect`, the thread-safe :class:`ConnectionPool`, the
concrete engines (:class:`SqliteFileBackend`, :class:`SqliteMemoryBackend`,
:class:`RawConnectionBackend`), and the name-based registry
(:func:`get_backend` / :func:`register_backend`).

See docs/storage.md for the protocol contract and how to add an engine.
"""

from .backends import (
    RawConnectionBackend,
    SqliteFileBackend,
    SqliteMemoryBackend,
    StorageBackend,
    as_backend,
    wrap_connection,
)
from .compat import Connection, Cursor, database_path
from .dialect import SQLITE_DIALECT, Dialect
from .pool import ConnectionPool, PooledConnection, PoolStats
from .registry import (
    BackendFactory,
    available_backends,
    get_backend,
    register_backend,
)

__all__ = [
    "Connection",
    "Cursor",
    "database_path",
    "Dialect",
    "SQLITE_DIALECT",
    "ConnectionPool",
    "PooledConnection",
    "PoolStats",
    "StorageBackend",
    "SqliteFileBackend",
    "SqliteMemoryBackend",
    "RawConnectionBackend",
    "as_backend",
    "wrap_connection",
    "BackendFactory",
    "available_backends",
    "get_backend",
    "register_backend",
]
