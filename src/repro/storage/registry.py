"""The storage-backend registry.

Backends are constructed by name through :func:`get_backend`, so the
engine choice is data (a config knob, a CLI flag, the
``NEBULA_BACKEND`` environment variable) instead of code.  The two
bundled SQLite engines register themselves below; a third engine
registers from anywhere::

    from repro.storage import register_backend

    register_backend("duckdb", lambda *, path=None, pool_size=4:
                     DuckDbBackend(path, pool_size=pool_size))

Factories are called with keyword arguments only.  Every factory must
accept ``path`` and ``pool_size`` (ignoring what it does not need), so
callers can construct any engine uniformly.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

from ..errors import StorageError
from .backends import SqliteFileBackend, SqliteMemoryBackend, StorageBackend

#: A backend constructor: keyword-only ``path`` / ``pool_size`` plus
#: whatever engine-specific options it documents.
BackendFactory = Callable[..., StorageBackend]

_REGISTRY: Dict[str, BackendFactory] = {}


def register_backend(
    name: str, factory: BackendFactory, replace: bool = False
) -> None:
    """Register ``factory`` under ``name`` (raises on collision unless
    ``replace`` is set)."""
    if not name:
        raise StorageError("backend name must be non-empty")
    if name in _REGISTRY and not replace:
        raise StorageError(f"storage backend {name!r} is already registered")
    _REGISTRY[name] = factory


def available_backends() -> Tuple[str, ...]:
    """Registered backend names, sorted."""
    return tuple(sorted(_REGISTRY))


def get_backend(
    name: str,
    path: Optional[str] = None,
    pool_size: int = 4,
    **options: object,
) -> StorageBackend:
    """Construct the backend registered under ``name``.

    ``path`` is required by file-backed engines and ignored by purely
    in-memory ones; extra keyword ``options`` pass through to the
    factory.
    """
    try:
        factory = _REGISTRY[name]
    except KeyError:
        known = ", ".join(available_backends()) or "<none>"
        raise StorageError(
            f"unknown storage backend {name!r} (registered: {known})"
        ) from None
    return factory(path=path, pool_size=pool_size, **options)


def _sqlite_file_factory(
    *, path: Optional[str] = None, pool_size: int = 4, **options: object
) -> StorageBackend:
    if path is None:
        raise StorageError("sqlite-file backend requires path=...")
    kwargs = {
        name: options[name]
        for name in ("journal_mode", "busy_timeout", "pool_timeout")
        if name in options
    }
    return SqliteFileBackend(path, pool_size=pool_size, **kwargs)  # type: ignore[arg-type]


def _sqlite_memory_factory(
    *, path: Optional[str] = None, pool_size: int = 4, **options: object
) -> StorageBackend:
    # ``path`` is accepted (and ignored) so callers can construct every
    # engine with the same keyword set.
    return SqliteMemoryBackend(pool_size=pool_size)


register_backend("sqlite-file", _sqlite_file_factory)
register_backend("sqlite-memory", _sqlite_memory_factory)
