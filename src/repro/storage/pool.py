"""A thread-safe connection pool with leases and health checks.

:class:`ConnectionPool` owns a set of driver connections created by a
backend-supplied factory.  Callers borrow one with :meth:`acquire`,
which returns a :class:`PooledConnection` *lease* — a context manager
that returns the connection to the pool on exit, so a handle can never
leak past its scope::

    with pool.acquire() as connection:
        connection.execute("SELECT 1")

Guarantees:

* **bounded** — at most ``size`` connections exist at once; an
  ``acquire`` beyond that blocks up to ``timeout`` seconds and then
  raises :class:`~repro.errors.PoolExhaustedError`;
* **healthy** — an idle connection is probed (``SELECT 1``) before
  being handed out; a probe failure discards it and opens a fresh one,
  so a handle poisoned by a crashed writer never reaches a caller;
* **thread-safe** — all state transitions happen under one condition
  variable, while health probes and connection creation run *outside*
  it (a slow sqlite round-trip never stalls other acquirers); leases
  may be acquired and released from different threads.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from types import TracebackType
from typing import Callable, List, Optional, Type

from ..errors import PoolExhaustedError, StorageError
from .compat import Connection, Error


@dataclass
class PoolStats:
    """Lifetime accounting for one pool (monotonic counters)."""

    created: int = 0
    acquired: int = 0
    reused: int = 0
    #: Idle connections discarded after a failed health probe.
    recycled: int = 0
    #: ``acquire`` calls that had to wait for a free slot.
    waited: int = 0


class PooledConnection:
    """One borrowed connection; returns itself to the pool on exit."""

    def __init__(self, pool: "ConnectionPool", connection: Connection) -> None:
        self._pool = pool
        self.connection = connection
        self._released = False

    def release(self) -> None:
        """Hand the connection back (idempotent)."""
        if not self._released:
            self._released = True
            self._pool._return(self.connection)

    def __enter__(self) -> Connection:
        return self.connection

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        self.release()


@dataclass
class _PoolState:
    idle: List[Connection] = field(default_factory=list)
    leased: int = 0
    closed: bool = False


class ConnectionPool:
    """Bounded, health-checked pool over a connection factory."""

    def __init__(
        self,
        factory: Callable[[], Connection],
        size: int = 4,
        timeout: float = 5.0,
        health_check: bool = True,
    ) -> None:
        if size < 1:
            raise StorageError("connection pool size must be >= 1")
        self._factory = factory
        self.size = size
        self.timeout = timeout
        self.health_check = health_check
        self.stats = PoolStats()
        self._state = _PoolState()
        self._condition = threading.Condition()

    # ------------------------------------------------------------------

    def acquire(self, timeout: Optional[float] = None) -> PooledConnection:
        """Borrow a connection, blocking up to ``timeout`` seconds.

        Raises :class:`~repro.errors.PoolExhaustedError` when every slot
        stays leased past the deadline, and
        :class:`~repro.errors.StorageError` on a closed pool.
        """
        deadline = self.timeout if timeout is None else timeout
        with self._condition:
            if self._state.closed:
                raise StorageError("connection pool is closed")
            while not self._state.idle and self._state.leased >= self.size:
                self.stats.waited += 1
                if not self._condition.wait(timeout=deadline):
                    raise PoolExhaustedError(
                        f"no pooled connection available within {deadline}s "
                        f"(size={self.size}, leased={self._state.leased})"
                    )
                if self._state.closed:
                    raise StorageError("connection pool is closed")
            # Claim the slot and a candidate atomically; the health probe
            # and factory call happen outside the lock so a slow sqlite
            # round-trip never stalls other acquirers or releasers.
            candidate = self._state.idle.pop() if self._state.idle else None
            self._state.leased += 1
            self.stats.acquired += 1
        try:
            connection = self._vet(candidate)
        except BaseException:
            with self._condition:
                self._state.leased -= 1
                self._condition.notify()
            raise
        return PooledConnection(self, connection)

    def close(self) -> None:
        """Close every idle connection and refuse further acquires.

        Leased connections are closed as they come back.
        """
        with self._condition:
            self._state.closed = True
            idle, self._state.idle = self._state.idle, []
            self._condition.notify_all()
        for connection in idle:
            self._close_quietly(connection)

    @property
    def idle_count(self) -> int:
        with self._condition:
            return len(self._state.idle)

    @property
    def leased_count(self) -> int:
        with self._condition:
            return self._state.leased

    def __enter__(self) -> "ConnectionPool":
        return self

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        self.close()

    # ------------------------------------------------------------------

    def _vet(self, candidate: Optional[Connection]) -> Connection:
        """Probe candidates (lock-free) until one is healthy, else create.

        The caller already owns the leased slot, so at most ``size``
        connections exist even while the probe runs unlocked; replacement
        candidates are popped back under the condition.
        """
        while candidate is not None:
            if not self.health_check or self._healthy(candidate):
                with self._condition:
                    self.stats.reused += 1
                return candidate
            self._close_quietly(candidate)
            with self._condition:
                self.stats.recycled += 1
                candidate = (
                    self._state.idle.pop() if self._state.idle else None
                )
        with self._condition:
            self.stats.created += 1
        return self._factory()

    def _return(self, connection: Connection) -> None:
        with self._condition:
            self._state.leased -= 1
            if self._state.closed:
                self._close_quietly(connection)
            else:
                self._state.idle.append(connection)
            self._condition.notify()

    @staticmethod
    def _healthy(connection: Connection) -> bool:
        try:
            connection.execute("SELECT 1").fetchone()
        except Error:
            return False
        return True

    @staticmethod
    def _close_quietly(connection: Connection) -> None:
        try:
            connection.close()
        except Error:  # pragma: no cover - close failures are best-effort
            pass
