"""The documented sqlite3 compatibility adapter.

This module is the **only** place in the ``repro`` package that imports
the :mod:`sqlite3` driver (enforced by nebula-lint rule NBL007).  Every
other layer refers to driver types and errors through the aliases
re-exported here, and obtains connections through the backends in
:mod:`repro.storage.backends` — which in turn call :func:`connect`.

Centralizing the driver import buys two things:

* a single seam where a future non-SQLite engine can swap the concrete
  ``Connection``/error types without touching twenty call sites;
* an auditable inventory of every connection the process opens — the
  pool and backends route through :func:`connect`, so nothing opens a
  database the storage layer does not know about.
"""

from __future__ import annotations

import sqlite3
from typing import Optional, Union

#: The DB-API connection type every layer annotates against.
Connection = sqlite3.Connection
#: The DB-API cursor type returned by ``execute``/``executemany``.
Cursor = sqlite3.Cursor
#: The dict-like row factory (opt-in; the engine uses plain tuples).
Row = sqlite3.Row

#: Driver exception hierarchy, re-exported under stable names.
Error = sqlite3.Error
DatabaseError = sqlite3.DatabaseError
IntegrityError = sqlite3.IntegrityError
OperationalError = sqlite3.OperationalError
ProgrammingError = sqlite3.ProgrammingError


def connect(
    database: Union[str, bytes],
    *,
    uri: bool = False,
    timeout: float = 5.0,
    check_same_thread: bool = True,
) -> Connection:
    """Open a raw driver connection (storage-layer internal).

    Call sites outside :mod:`repro.storage` must not use this directly —
    they acquire handles from a backend instead, so pooling, health
    checks, and lifecycle accounting stay in one place.
    """
    return sqlite3.connect(
        database, uri=uri, timeout=timeout, check_same_thread=check_same_thread
    )


def open_memory_connection() -> Connection:
    """A private in-memory database (visible only to this connection)."""
    return sqlite3.connect(":memory:")


def database_path(connection: Connection) -> Optional[str]:
    """Filesystem path of ``connection``'s main database, or None for
    in-memory / temporary databases."""
    for _seq, name, path in connection.execute("PRAGMA database_list"):
        if name == "main":
            return str(path) if path else None
    return None
