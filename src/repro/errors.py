"""Exception hierarchy for the Nebula reproduction.

Every error raised by this package derives from :class:`NebulaError`, so
callers can catch one base class.  Sub-classes are grouped by subsystem:
storage, metadata, search, workload, and verification.
"""

from __future__ import annotations


class NebulaError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ConfigurationError(NebulaError):
    """Raised when a configuration value is out of its documented range."""


class StorageError(NebulaError):
    """Raised by the annotation store for invalid persistence operations."""


class TransientStorageError(StorageError):
    """A transient storage failure that survived every retry attempt.

    Wraps the underlying driver error (typically ``sqlite3.OperationalError:
    database is locked``) after a :class:`repro.resilience.RetryPolicy`
    exhausted its attempts; ``attempts`` records how many were made.
    """

    def __init__(self, message: str, attempts: int = 1) -> None:
        super().__init__(f"storage still failing after {attempts} attempt(s): {message}")
        self.attempts = attempts


class PoolExhaustedError(StorageError):
    """Raised when no pooled connection frees up within the timeout.

    Every slot of a :class:`repro.storage.ConnectionPool` stayed leased
    past the acquire deadline — the pool is sized too small for the
    concurrency, or a lease leaked.
    """


class UnknownTableError(StorageError):
    """Raised when an operation references a table absent from the schema."""

    def __init__(self, table: str) -> None:
        super().__init__(f"unknown table: {table!r}")
        self.table = table


class UnknownColumnError(StorageError):
    """Raised when an operation references a column absent from a table."""

    def __init__(self, table: str, column: str) -> None:
        super().__init__(f"unknown column: {table!r}.{column!r}")
        self.table = table
        self.column = column


class UnknownAnnotationError(StorageError):
    """Raised when an annotation id does not exist in the store."""

    def __init__(self, annotation_id: int) -> None:
        super().__init__(f"unknown annotation id: {annotation_id}")
        self.annotation_id = annotation_id


class UnknownTupleError(StorageError):
    """Raised when a tuple reference does not resolve to a stored row."""

    def __init__(self, table: str, rowid: int) -> None:
        super().__init__(f"unknown tuple: {table!r} rowid {rowid}")
        self.table = table
        self.rowid = rowid


class VersioningError(NebulaError):
    """Raised by the append-only commit log for invalid operations."""


class UnknownCommitError(VersioningError):
    """Raised when a commit id is absent from ``_nebula_commits``."""

    def __init__(self, commit_id: int) -> None:
        super().__init__(f"unknown commit id: {commit_id}")
        self.commit_id = commit_id


class MigrationError(VersioningError):
    """Raised when a schema migration cannot be applied or reverted."""


class MetadataError(NebulaError):
    """Raised by the NebulaMeta repository for inconsistent metadata."""


class UnknownConceptError(MetadataError):
    """Raised when a concept name is absent from the ConceptRefs table."""

    def __init__(self, concept: str) -> None:
        super().__init__(f"unknown concept: {concept!r}")
        self.concept = concept


class SearchError(NebulaError):
    """Raised by the keyword-search engine for malformed queries."""


class EmptyQueryError(SearchError):
    """Raised when a keyword query contains no usable keywords."""


class WorkloadError(NebulaError):
    """Raised by the workload generator for unsatisfiable workload specs."""


class VerificationError(NebulaError):
    """Raised by the verification subsystem."""


class UnknownVerificationTaskError(VerificationError):
    """Raised when a verification task id is unknown or already resolved."""

    def __init__(self, task_id: int) -> None:
        super().__init__(f"unknown or resolved verification task: {task_id}")
        self.task_id = task_id


class CommandError(NebulaError):
    """Raised by the extended-SQL command parser for invalid statements."""


class PipelineStageError(NebulaError):
    """A Stage 0-3 pipeline failure that could not be degraded around.

    Raised by :meth:`repro.core.nebula.Nebula.insert_annotation` after the
    Stage 0 writes were rolled back; ``stage`` names the fault point,
    ``original`` carries the underlying exception, and ``dead_letter_id``
    (when set) points at the captured dead-letter row.
    """

    def __init__(self, stage: str, original: BaseException) -> None:
        super().__init__(f"pipeline stage {stage!r} failed: {original}")
        self.stage = stage
        self.original = original
        self.dead_letter_id = None


class DeadLetterError(NebulaError):
    """Raised for invalid dead-letter-queue operations."""

    def __init__(self, letter_id: int, reason: str = "unknown dead letter") -> None:
        super().__init__(f"{reason}: {letter_id}")
        self.letter_id = letter_id


class ServiceError(NebulaError):
    """Raised by the concurrent annotation service layer."""


class ServiceOverloadedError(ServiceError):
    """Admission control rejected a submission: the bounded queue is full.

    The 429 of the service layer — the client should back off and retry;
    ``queue_depth`` / ``capacity`` describe the pressure at reject time.
    """

    def __init__(self, queue_depth: int, capacity: int) -> None:
        super().__init__(
            f"submission queue full ({queue_depth}/{capacity}); "
            "back off and retry"
        )
        self.queue_depth = queue_depth
        self.capacity = capacity


class ServiceUnavailableError(ServiceError):
    """The service is stopped (or stopping) and cannot take the request."""


class DeadlineExceededError(ServiceError):
    """A submission's deadline elapsed before the writer reached it.

    The annotation was *not* ingested — deadline expiry happens strictly
    before the Stage 0 write, so an expired request leaves no state.
    """

    def __init__(self, waited: float, deadline: float) -> None:
        super().__init__(
            f"deadline of {deadline:.3f}s exceeded after waiting {waited:.3f}s"
        )
        self.waited = waited
        self.deadline = deadline
