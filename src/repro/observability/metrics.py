"""Dependency-free metrics: counters, gauges, fixed-bucket histograms.

The registry is the pipeline's flight recorder.  Components increment
named instruments (optionally with a small, fixed label set — query type,
degradation label, fault point); ``snapshot()`` turns the whole registry
into a plain JSON-serializable dict that ``DiscoveryReport.metrics``, the
``repro stats`` command, and the benchmark harness persist.

Instrument identity is ``name`` plus canonically-encoded labels
(``nebula_queries_generated_total{type="type1"}``), so snapshots read
like a Prometheus exposition without needing the dependency.  Histogram
buckets are *non-cumulative*: each upper bound counts only the
observations that fell at or below it and above the previous bound.

A module-level default registry serves the whole process — the pipeline,
the resilience layer, and the CLI all meet at :func:`get_metrics` — and
tests swap it out with :func:`set_metrics`.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

#: Default histogram bounds for durations, in seconds (0.5 ms .. 5 s).
TIME_BUCKETS: Tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0,
)

#: Default histogram bounds for per-annotation cardinalities.
COUNT_BUCKETS: Tuple[float, ...] = (1, 2, 5, 10, 20, 50, 100, 200, 500, 1000)

_INF = "+Inf"


class Counter:
    """Monotonically increasing value."""

    __slots__ = ("value",)

    def __init__(self, value: float = 0.0) -> None:
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount


class Gauge:
    """Point-in-time value that can move both ways."""

    __slots__ = ("value",)

    def __init__(self, value: float = 0.0) -> None:
        self.value = value

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram:
    """Fixed-bucket histogram with per-bucket (non-cumulative) counts.

    An observation equal to a bucket's upper bound lands in that bucket
    (``le`` semantics); anything above the last bound lands in ``+Inf``.
    """

    __slots__ = ("bounds", "counts", "sum", "count")

    def __init__(self, buckets: Sequence[float]) -> None:
        if not buckets:
            raise ValueError("histogram needs at least one bucket bound")
        bounds = tuple(float(b) for b in buckets)
        if list(bounds) != sorted(set(bounds)):
            raise ValueError("histogram bounds must be strictly increasing")
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)  # last slot is +Inf
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1

    def bucket_counts(self) -> Dict[str, int]:
        labels = [str(bound) for bound in self.bounds] + [_INF]
        return dict(zip(labels, self.counts))

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0


def encode_key(name: str, labels: Optional[Mapping[str, str]] = None) -> str:
    """Canonical instrument key: ``name{k1="v1",k2="v2"}``."""
    if not labels:
        return name
    body = ",".join(f'{key}="{labels[key]}"' for key in sorted(labels))
    return f"{name}{{{body}}}"


class MetricsRegistry:
    """Named instruments, created on first use, snapshotted as a dict."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- instrument access (get-or-create) -----------------------------

    def counter(
        self, name: str, labels: Optional[Mapping[str, str]] = None
    ) -> Counter:
        key = encode_key(name, labels)
        instrument = self._counters.get(key)
        if instrument is None:
            instrument = self._counters[key] = Counter()
        return instrument

    def gauge(self, name: str, labels: Optional[Mapping[str, str]] = None) -> Gauge:
        key = encode_key(name, labels)
        instrument = self._gauges.get(key)
        if instrument is None:
            instrument = self._gauges[key] = Gauge()
        return instrument

    def histogram(
        self,
        name: str,
        buckets: Sequence[float] = TIME_BUCKETS,
        labels: Optional[Mapping[str, str]] = None,
    ) -> Histogram:
        key = encode_key(name, labels)
        instrument = self._histograms.get(key)
        if instrument is None:
            instrument = self._histograms[key] = Histogram(buckets)
        return instrument

    # -- snapshots ------------------------------------------------------

    def snapshot(self) -> Dict[str, Dict]:
        """The whole registry as a JSON-serializable dict."""
        return {
            "counters": {key: c.value for key, c in sorted(self._counters.items())},
            "gauges": {key: g.value for key, g in sorted(self._gauges.items())},
            "histograms": {
                key: {
                    "count": h.count,
                    "sum": h.sum,
                    "buckets": h.bucket_counts(),
                }
                for key, h in sorted(self._histograms.items())
            },
        }

    def restore(self, snapshot: Mapping[str, Dict]) -> None:
        """Seed instruments from a prior :meth:`snapshot` (CLI continuity).

        Existing instruments are overwritten; unknown snapshot sections
        are ignored so older files stay loadable.
        """
        for key, value in snapshot.get("counters", {}).items():
            self._counters[key] = Counter(float(value))
        for key, value in snapshot.get("gauges", {}).items():
            self._gauges[key] = Gauge(float(value))
        for key, dump in snapshot.get("histograms", {}).items():
            buckets = dump.get("buckets", {})
            bounds = [float(b) for b in buckets if b != _INF]
            if not bounds:
                continue
            histogram = Histogram(sorted(bounds))
            histogram.counts = [
                int(buckets.get(str(bound), 0)) for bound in histogram.bounds
            ] + [int(buckets.get(_INF, 0))]
            histogram.sum = float(dump.get("sum", 0.0))
            histogram.count = int(dump.get("count", 0))
            self._histograms[key] = histogram

    def reset(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()

    # -- reporting helpers ----------------------------------------------

    def lines(self) -> Iterator[str]:
        """Human-readable exposition, one instrument per line."""
        snap = self.snapshot()
        for key, value in snap["counters"].items():
            yield f"counter    {key} = {value:g}"
        for key, value in snap["gauges"].items():
            yield f"gauge      {key} = {value:g}"
        for key, dump in snap["histograms"].items():
            mean = dump["sum"] / dump["count"] if dump["count"] else 0.0
            yield (
                f"histogram  {key}: count={dump['count']} "
                f"sum={dump['sum']:.6g} mean={mean:.6g}"
            )


def non_zero_counters(snapshot: Mapping[str, Dict]) -> List[str]:
    """Keys of every counter with a non-zero value (assertion helper)."""
    return [key for key, value in snapshot.get("counters", {}).items() if value]


_DEFAULT_REGISTRY = MetricsRegistry()


def get_metrics() -> MetricsRegistry:
    """The process-wide default registry."""
    return _DEFAULT_REGISTRY


def set_metrics(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the default registry (tests); returns the previous one."""
    global _DEFAULT_REGISTRY
    previous = _DEFAULT_REGISTRY
    _DEFAULT_REGISTRY = registry
    return previous
