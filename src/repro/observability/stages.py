"""Canonical registry of pipeline stage (span) names.

Every literal name passed to ``Tracer.span(...)`` anywhere in the
pipeline must appear here — the static analyzer (``repro.analysis``,
rule NBL005) enforces it, so a typo'd stage name fails CI instead of
silently fragmenting the Figure 16 trace taxonomy documented in
``docs/observability.md``.

Composite helpers (``PhaseTimer``) build span names from this registry
via mappings like ``repro.core.query_generation.SPAN_NAMES``; those
mapping *values* are validated the same way.
"""

from __future__ import annotations

from typing import FrozenSet

#: The Figure 16 stage taxonomy: one entry per span name the pipeline emits.
CANONICAL_STAGES: FrozenSet[str] = frozenset(
    {
        # Root span of one annotation's pass through the pipeline.
        "insert_annotation",
        # Engine open: persisted-index stamp validation + lazy adoption.
        "index.load",
        # Engine open: full index rebuild persisted to the backend tables.
        "index.build",
        # Stage 0: persist the annotation + manual attachments.
        "stage0.store",
        # The analysis umbrella span (stage 1 + stage 2).
        "analyze",
        # Stage 1 phases (Figure 11a): signature maps, context adjustment,
        # query formation.
        "stage1.maps",
        "stage1.context",
        "stage1.queries",
        # Stage 2: SQL execution of the generated queries.
        "stage2.execute",
        # Stage 3: triage of candidates into auto-accept / verify / reject.
        "stage3.curate",
        # Root span of one batch's pass through the pipeline.
        "insert_annotations",
        # Stage 0 bulk path: executemany over annotations + focal edges.
        "stage0.bulk_store",
        # Cross-annotation shared execution of the whole batch's SQL.
        "stage2.batch_execute",
        # Service layer (repro.service): one request isolated on the
        # per-item fallback path after a poisoned batch.
        "service.request",
        # Service layer: one coalesced batch flushed by the writer loop.
        "service.batch_flush",
        # Service layer: startup crash recovery (rollback, checkpoint,
        # dead-letter replay).
        "service.recover",
        # Service layer: one /metrics render served by the telemetry
        # HTTP endpoint.
        "service.export",
        # Service layer: the durability point of one flush — the commit
        # that makes a batch's ``_nebula_commits`` row(s) visible.
        "service.commit",
    }
)


def is_canonical_stage(name: str) -> bool:
    """Whether ``name`` is a registered pipeline stage name."""
    return name in CANONICAL_STAGES
