"""Structured, correlated event log for the service telemetry plane.

Metrics aggregate and traces nest, but neither answers "what happened
to request ``req-1f03-00000007``?"  The event log does: every lifecycle
transition of a submission (admitted, rejected, expired, flushed,
failed, dead-lettered), every batch flush, shed engage/release, and any
operation slower than the configured threshold becomes one flat record
carrying the correlation ids (``request_id`` and/or ``batch_id``) that
also appear on the spans, the ``DiscoveryReport``, and the dead-letter
rows — so the three planes join on the same keys.

Records are dicts with a fixed envelope::

    {"ts": <unix seconds>, "seq": <monotonic int>, "kind": "...", ...}

and live in a bounded in-memory ring (``tail()`` feeds tests and the
``repro top`` dashboard).  With a ``path`` every record is also
appended as one JSON line — the same crash-safe open/append/close
discipline as :class:`~repro.observability.tracing.JsonlExporter`.

Emission is thread-safe (client threads and the writer thread both
emit) and never raises: a full disk or malformed field must not sink
the request it was describing.
"""

from __future__ import annotations

import json
import logging
import os
import threading
import time
from collections import deque
from typing import Any, Deque, Dict, List, Optional

logger = logging.getLogger("repro.observability")

#: Event kinds the service emits (the schema's closed vocabulary).
EVENT_KINDS = frozenset(
    {
        "request_admitted",
        "request_rejected",
        "request_expired",
        "request_flushed",
        "request_failed",
        "request_dead_lettered",
        "batch_flushed",
        "shed_engaged",
        "shed_released",
        "slow_op",
    }
)


class EventLog:
    """Bounded, thread-safe ring of structured events (+ optional JSONL)."""

    def __init__(
        self,
        capacity: int = 512,
        path: Optional[str] = None,
        clock: Any = time.time,
    ) -> None:
        if capacity < 1:
            raise ValueError("event log capacity must be >= 1")
        self.capacity = capacity
        self.path = path
        self._clock = clock
        self._ring: Deque[Dict[str, Any]] = deque(maxlen=capacity)
        self._seq = 0
        self._dropped = 0
        self._lock = threading.Lock()
        if path:
            directory = os.path.dirname(path)
            if directory:
                os.makedirs(directory, exist_ok=True)

    def emit(self, kind: str, **fields: Any) -> Dict[str, Any]:
        """Record one event; returns the full record.

        Unknown kinds are recorded too (forward compatibility), but the
        service itself only emits :data:`EVENT_KINDS`.
        """
        with self._lock:
            self._seq += 1
            record: Dict[str, Any] = {
                "ts": float(self._clock()),
                "seq": self._seq,
                "kind": kind,
            }
            record.update(fields)
            if len(self._ring) == self.capacity:
                self._dropped += 1
            self._ring.append(record)
        if self.path:
            try:
                with open(self.path, "a") as handle:
                    handle.write(json.dumps(record, default=str) + "\n")
            except OSError as error:  # pragma: no cover - disk trouble
                logger.warning("event log append failed: %s", error)
        return record

    def tail(
        self, n: Optional[int] = None, kind: Optional[str] = None
    ) -> List[Dict[str, Any]]:
        """The most recent ``n`` events (oldest first), optionally by kind."""
        with self._lock:
            records = list(self._ring)
        if kind is not None:
            records = [r for r in records if r["kind"] == kind]
        if n is not None:
            records = records[-max(n, 0):]
        return records

    def for_request(self, request_id: str) -> List[Dict[str, Any]]:
        """Every retained event correlated to one request id.

        Matches both direct ``request_id`` fields and membership in a
        batch event's ``request_ids`` list.
        """
        with self._lock:
            records = list(self._ring)
        return [
            r
            for r in records
            if r.get("request_id") == request_id
            or request_id in (r.get("request_ids") or ())
        ]

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)

    @property
    def emitted(self) -> int:
        """Lifetime emission count (ring may retain fewer)."""
        with self._lock:
            return self._seq

    @property
    def dropped(self) -> int:
        """Events evicted from the ring by newer ones."""
        with self._lock:
            return self._dropped


def read_jsonl_events(path: str) -> List[Dict[str, Any]]:
    """Load every event from a JSONL event file (oldest first).

    Raises ``ValueError`` on malformed lines or records missing the
    envelope fields — smoke jobs fail loudly instead of skipping.
    """
    events: List[Dict[str, Any]] = []
    with open(path) as handle:
        for number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as error:
                raise ValueError(f"{path}:{number}: malformed event line: {error}")
            if not isinstance(record, dict) or "kind" not in record or "seq" not in record:
                raise ValueError(f"{path}:{number}: event record missing envelope")
            events.append(record)
    return events
