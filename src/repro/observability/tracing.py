"""Structured tracing for the Nebula pipeline.

One annotation's pass through the pipeline becomes a *trace*: a tree of
named spans mirroring the Figure 16 stages::

    insert_annotation
    ├── stage0.store
    ├── analyze
    │   ├── stage1.maps
    │   ├── stage1.context
    │   ├── stage1.queries
    │   └── stage2.execute
    └── stage3.curate

Each span carries wall-clock duration and a flat attribute map (annotation
id, query count, candidate-tuple count, ACG edge deltas, ...).  When the
outermost span of a tracer closes, the finished tree is handed to every
registered *exporter*:

* :class:`RingBufferExporter` keeps the last N traces in memory (what
  ``DiscoveryReport.trace`` and ``repro trace --last N`` read);
* :class:`JsonlExporter` appends one JSON object per trace to a file.

The default pipeline runs with :data:`NOOP_TRACER`: ``span()`` hands back
a process-wide singleton context manager, so the hot path performs no
allocation and no exporter ever sees a record.
"""

from __future__ import annotations

import json
import logging
import os
import time
from collections import deque
from types import TracebackType
from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence, Type, Union

logger = logging.getLogger("repro.observability")


class Span:
    """One named, timed region of the pipeline (a node of a trace tree)."""

    __slots__ = ("name", "start", "end", "attributes", "children", "links")

    def __init__(self, name: str, start: float) -> None:
        self.name = name
        self.start = start
        self.end: Optional[float] = None
        self.attributes: Dict[str, Any] = {}
        self.children: List["Span"] = []
        #: Cross-trace correlations: ids of *other* units of work this
        #: span relates to without nesting under them — e.g. the service
        #: batch-flush span links every member submission's request_id.
        self.links: List[Dict[str, Any]] = []

    def set_attribute(self, key: str, value: Any) -> None:
        self.attributes[key] = value

    def add_link(self, **attributes: Any) -> None:
        """Attach one correlation link (a flat id/attribute dict)."""
        self.links.append(dict(attributes))

    @property
    def duration(self) -> float:
        """Elapsed seconds (0.0 while the span is still open)."""
        if self.end is None:
            return 0.0
        return self.end - self.start

    def to_dict(self) -> Dict[str, Any]:
        record = {
            "name": self.name,
            "duration_ms": round(self.duration * 1e3, 4),
            "attributes": dict(self.attributes),
            "children": [child.to_dict() for child in self.children],
        }
        # Only linked spans carry the key, so pre-link trace files and
        # their consumers keep working unchanged.
        if self.links:
            record["links"] = [dict(link) for link in self.links]
        return record


class Tracer:
    """Produces nested spans and exports each finished root-span tree.

    >>> ring = RingBufferExporter()
    >>> tracer = Tracer([ring])
    >>> with tracer.span("outer") as outer:
    ...     with tracer.span("inner") as inner:
    ...         inner.set_attribute("rows", 3)
    >>> ring.last(1)[0]["children"][0]["attributes"]
    {'rows': 3}
    """

    enabled = True

    def __init__(self, exporters: Iterable[Any] = ()) -> None:
        self.exporters = list(exporters)
        self._stack: List[Span] = []
        #: The most recently exported trace record (root-span dict).
        self.last_trace: Optional[Dict[str, Any]] = None
        self._root_timestamp: float = 0.0

    @property
    def depth(self) -> int:
        return len(self._stack)

    def span(self, name: str) -> "_SpanContext":
        return _SpanContext(self, name)

    # -- used by _SpanContext ------------------------------------------

    def _open(self, name: str) -> Span:
        span = Span(name, time.perf_counter())
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self._root_timestamp = time.time()
        self._stack.append(span)
        return span

    def _close(self, span: Span) -> None:
        span.end = time.perf_counter()
        # Tolerate unbalanced exits (an inner span leaked past its scope):
        # pop back to the span being closed rather than corrupting nesting.
        while self._stack and self._stack[-1] is not span:
            self._stack.pop()
        if self._stack:
            self._stack.pop()
        if not self._stack:
            record = span.to_dict()
            record["timestamp"] = self._root_timestamp
            self.last_trace = record
            for exporter in self.exporters:
                try:
                    exporter.export(record)
                except Exception as error:
                    # A broken exporter must never sink the pipeline.
                    logger.warning("trace exporter failed: %s", error)


class _SpanContext:
    """Context manager pairing one ``Span`` with its tracer bookkeeping."""

    __slots__ = ("_tracer", "_name", "_span")

    def __init__(self, tracer: Tracer, name: str) -> None:
        self._tracer = tracer
        self._name = name
        self._span: Optional[Span] = None

    def __enter__(self) -> Span:
        self._span = self._tracer._open(self._name)
        return self._span

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> bool:
        if self._span is not None:
            if exc is not None:
                self._span.attributes["error"] = repr(exc)
            self._tracer._close(self._span)
        return False


class _NoopSpan:
    """Shared do-nothing span/context-manager (the disabled hot path)."""

    __slots__ = ()

    def set_attribute(self, key: str, value: Any) -> None:
        pass

    def add_link(self, **attributes: Any) -> None:
        pass

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> bool:
        return False


_NOOP_SPAN = _NoopSpan()


class NoopTracer:
    """Tracer whose spans are free: no allocation, no exports, no state."""

    enabled = False
    last_trace: Optional[Dict[str, Any]] = None
    depth = 0

    def span(self, name: str) -> _NoopSpan:
        return _NOOP_SPAN


#: Process-wide disabled tracer; the default for every pipeline component.
NOOP_TRACER = NoopTracer()

#: Either kind of tracer / span — the pipeline treats them structurally.
TracerLike = Union[Tracer, NoopTracer]
SpanLike = Union[Span, _NoopSpan]


# ----------------------------------------------------------------------
# Exporters
# ----------------------------------------------------------------------


class RingBufferExporter:
    """Keeps the last ``capacity`` finished traces in memory."""

    def __init__(self, capacity: int = 64) -> None:
        self._buffer: deque = deque(maxlen=capacity)

    def export(self, record: Dict[str, Any]) -> None:
        self._buffer.append(record)

    def last(self, n: int = 1) -> List[Dict[str, Any]]:
        """The most recent ``n`` traces, oldest first."""
        if n <= 0:
            return []
        return list(self._buffer)[-n:]

    def __len__(self) -> int:
        return len(self._buffer)


class JsonlExporter:
    """Appends one JSON object per finished trace to ``path``."""

    def __init__(self, path: str) -> None:
        self.path = path
        directory = os.path.dirname(path)
        if directory:
            os.makedirs(directory, exist_ok=True)

    def export(self, record: Dict[str, Any]) -> None:
        with open(self.path, "a") as handle:
            handle.write(json.dumps(record, default=str) + "\n")


def read_jsonl_traces(path: str) -> List[Dict[str, Any]]:
    """Load every trace from a JSONL trace file (oldest first).

    Raises ``ValueError`` on a malformed line — the CI smoke job relies on
    this to fail loudly instead of silently skipping garbage.
    """
    traces: List[Dict[str, Any]] = []
    with open(path) as handle:
        for number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as error:
                raise ValueError(f"{path}:{number}: malformed trace line: {error}")
            if not isinstance(record, dict) or "name" not in record:
                raise ValueError(f"{path}:{number}: trace record missing 'name'")
            traces.append(record)
    return traces


def format_trace(record: Dict[str, Any], indent: int = 0) -> List[str]:
    """Render one trace record as an indented span tree."""
    attributes = " ".join(
        f"{key}={value}" for key, value in sorted(record.get("attributes", {}).items())
    )
    line = f"{'  ' * indent}{record['name']}  {record.get('duration_ms', 0.0)}ms"
    if attributes:
        line += f"  [{attributes}]"
    lines = [line]
    for child in record.get("children", ()):
        lines.extend(format_trace(child, indent + 1))
    return lines


def span_names(record: Dict[str, Any]) -> List[str]:
    """Flatten a trace record into depth-first span names (test helper)."""
    names = [record["name"]]
    for child in record.get("children", ()):
        names.extend(span_names(child))
    return names


def iter_spans(record: Dict[str, Any]) -> Iterator[Dict[str, Any]]:
    """Yield every span dict of a trace record, depth-first."""
    yield record
    for child in record.get("children", ()):
        yield from iter_spans(child)


def validate_trace_file(path: str, minimum: int = 1) -> Sequence[Dict[str, Any]]:
    """Ensure ``path`` holds at least ``minimum`` well-formed traces.

    Returns the traces; raises ``ValueError`` when the file is missing,
    empty, malformed, or every trace is a childless stub.
    """
    if not os.path.exists(path):
        raise ValueError(f"trace file {path} does not exist")
    traces = read_jsonl_traces(path)
    if len(traces) < minimum:
        raise ValueError(
            f"trace file {path} holds {len(traces)} trace(s), expected >= {minimum}"
        )
    if not any(trace.get("children") for trace in traces):
        raise ValueError(f"trace file {path} holds no nested spans")
    return traces
