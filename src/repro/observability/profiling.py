"""Per-SQL-statement profiling for the keyword-search engine.

The paper's execution-time figures (12a/13) are built from *per
statement* costs; :class:`SqlProfiler` aggregates every statement the
engine runs — calls, total/max wall-clock seconds, rows returned — keyed
by the statement text.  The table is bounded: once ``max_statements``
distinct statements are tracked, further novel statements fold into a
single ``<other>`` bucket so a pathological workload cannot grow the
profiler without bound.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

OVERFLOW_KEY = "<other>"


@dataclass
class StatementProfile:
    """Aggregate cost of one SQL statement shape."""

    sql: str
    calls: int = 0
    total_seconds: float = 0.0
    max_seconds: float = 0.0
    rows: int = 0

    @property
    def mean_seconds(self) -> float:
        return self.total_seconds / self.calls if self.calls else 0.0

    def to_dict(self) -> Dict[str, object]:
        return {
            "sql": self.sql,
            "calls": self.calls,
            "total_seconds": self.total_seconds,
            "max_seconds": self.max_seconds,
            "mean_seconds": self.mean_seconds,
            "rows": self.rows,
        }


class SqlProfiler:
    """Bounded per-statement timing and row-count aggregation."""

    def __init__(self, max_statements: int = 256) -> None:
        if max_statements < 1:
            raise ValueError("max_statements must be >= 1")
        self.max_statements = max_statements
        self._profiles: Dict[str, StatementProfile] = {}

    def record(self, sql: str, elapsed: float, rows: int) -> None:
        profile = self._profiles.get(sql)
        if profile is None:
            if len(self._profiles) >= self.max_statements:
                sql = OVERFLOW_KEY
                profile = self._profiles.get(sql)
            if profile is None:
                profile = self._profiles[sql] = StatementProfile(sql)
        profile.calls += 1
        profile.total_seconds += elapsed
        profile.max_seconds = max(profile.max_seconds, elapsed)
        profile.rows += rows

    def top(self, n: int = 10) -> List[StatementProfile]:
        """The ``n`` most expensive statements by total time."""
        ranked = sorted(
            self._profiles.values(), key=lambda p: (-p.total_seconds, p.sql)
        )
        return ranked[:n]

    def snapshot(self) -> List[Dict[str, object]]:
        return [profile.to_dict() for profile in self.top(len(self._profiles))]

    @property
    def statement_count(self) -> int:
        return len(self._profiles)

    @property
    def total_calls(self) -> int:
        return sum(profile.calls for profile in self._profiles.values())

    def reset(self) -> None:
        self._profiles.clear()
