"""Prometheus text exposition (format 0.0.4) over stdlib HTTP.

Three pieces, still zero dependencies:

* :func:`render_metrics` turns a :class:`MetricsRegistry` snapshot into
  the Prometheus text format.  The registry stores *non-cumulative*
  histogram buckets; the renderer converts them to the cumulative
  ``_bucket{le=...}`` series (plus ``_sum``/``_count``) the format
  requires, and groups labeled series under one ``# TYPE`` family line.
* :func:`parse_exposition` / :func:`validate_exposition` — a small
  parser for the same format, used by ``repro top``, the tests, and the
  CI scrape-smoke job to type-check every line and verify histogram
  buckets are cumulative, monotone, and capped by ``+Inf == _count``.
* :class:`TelemetryServer` — a ``ThreadingHTTPServer`` on a daemon
  thread serving ``/metrics`` (the exposition), ``/healthz`` (a JSON
  health document, 503 when the writer crashed), and ``/readyz``.

The server takes callables, not a service object, so it composes with
anything: ``AnnotationService.serve_metrics`` wires its own registry,
``health()``, and ``ready()`` in (wrapping each render in a
``service.export`` span), and ``repro serve --metrics-port`` exposes
the result on the wire — the first HTTP surface of the roadmap's
network front-end.
"""

from __future__ import annotations

import json
import re
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

from .metrics import MetricsRegistry

#: The content type Prometheus scrapers expect.
EXPOSITION_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_KEY_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
_VALUE_RE = re.compile(r"^[+-]?(\d+\.?\d*([eE][+-]?\d+)?|\.\d+([eE][+-]?\d+)?|Inf)$|^NaN$")


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------


def _split_key(key: str) -> Tuple[str, str]:
    """``name{k="v"}`` -> (name, 'k="v"'); bare names get ``""``."""
    if key.endswith("}") and "{" in key:
        name, _, labels = key.partition("{")
        return name, labels[:-1]
    return key, ""


def _merge_labels(labels: str, extra: str) -> str:
    if not labels:
        return extra
    return f"{labels},{extra}" if extra else labels


def _fmt(value: float) -> str:
    """Render a sample value: integers stay integral, floats use repr."""
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _sample(name: str, labels: str, value: float) -> str:
    if labels:
        return f"{name}{{{labels}}} {_fmt(value)}"
    return f"{name} {_fmt(value)}"


def _families(section: Mapping[str, Any]) -> Dict[str, List[Tuple[str, Any]]]:
    """Group instrument keys by family name, preserving sorted order."""
    families: Dict[str, List[Tuple[str, Any]]] = {}
    for key, value in section.items():
        name, labels = _split_key(key)
        families.setdefault(name, []).append((labels, value))
    return families


def render_metrics(registry: MetricsRegistry) -> str:
    """The whole registry as Prometheus text exposition (format 0.0.4)."""
    return render_snapshot(registry.snapshot())


def render_snapshot(snapshot: Mapping[str, Any]) -> str:
    """Render a :meth:`MetricsRegistry.snapshot` dict (same format)."""
    lines: List[str] = []
    for family, samples in _families(snapshot.get("counters", {})).items():
        lines.append(f"# TYPE {family} counter")
        for labels, value in samples:
            lines.append(_sample(family, labels, float(value)))
    for family, samples in _families(snapshot.get("gauges", {})).items():
        lines.append(f"# TYPE {family} gauge")
        for labels, value in samples:
            lines.append(_sample(family, labels, float(value)))
    for family, samples in _families(snapshot.get("histograms", {})).items():
        lines.append(f"# TYPE {family} histogram")
        for labels, dump in samples:
            buckets: Mapping[str, Any] = dump.get("buckets", {})
            bounds = sorted(float(b) for b in buckets if b != "+Inf")
            cumulative = 0
            for bound in bounds:
                cumulative += int(buckets.get(str(bound), 0))
                lines.append(
                    _sample(
                        f"{family}_bucket",
                        _merge_labels(labels, f'le="{bound:g}"'),
                        cumulative,
                    )
                )
            cumulative += int(buckets.get("+Inf", 0))
            lines.append(
                _sample(
                    f"{family}_bucket",
                    _merge_labels(labels, 'le="+Inf"'),
                    cumulative,
                )
            )
            lines.append(_sample(f"{family}_sum", labels, float(dump.get("sum", 0.0))))
            lines.append(_sample(f"{family}_count", labels, int(dump.get("count", 0))))
    return "\n".join(lines) + "\n"


def render_health_gauges(health: Mapping[str, Any]) -> str:
    """Service health as synthetic gauges appended to the exposition.

    ``nebula_service_info`` is a constant-1 info gauge carrying the
    textual states as labels; the numeric probes get their own gauges.
    """
    status = str(health.get("status", "unknown"))
    backend = str(health.get("backend", "unknown"))
    lines = [
        "# TYPE nebula_service_info gauge",
        f'nebula_service_info{{backend="{backend}",status="{status}"}} 1',
        "# TYPE nebula_service_up gauge",
        f"nebula_service_up {0 if status in ('crashed', 'stopped') else 1}",
        "# TYPE nebula_service_ready gauge",
        f"nebula_service_ready {1 if health.get('ready') else 0}",
    ]
    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# Parsing / validation (the scrape-smoke contract)
# ----------------------------------------------------------------------


class ExpositionError(ValueError):
    """A line of exposition text violated the format."""


def _parse_labels(body: str, lineno: int) -> Dict[str, str]:
    """Parse 'k1="v1",k2="v2"' with escaped quotes/backslashes."""
    labels: Dict[str, str] = {}
    i = 0
    while i < len(body):
        eq = body.index("=", i)
        key = body[i:eq]
        if not _LABEL_KEY_RE.match(key):
            raise ExpositionError(f"line {lineno}: bad label name {key!r}")
        if eq + 1 >= len(body) or body[eq + 1] != '"':
            raise ExpositionError(f"line {lineno}: unquoted label value")
        j = eq + 2
        value: List[str] = []
        while j < len(body):
            ch = body[j]
            if ch == "\\" and j + 1 < len(body):
                value.append(body[j + 1])
                j += 2
                continue
            if ch == '"':
                break
            value.append(ch)
            j += 1
        else:
            raise ExpositionError(f"line {lineno}: unterminated label value")
        labels[key] = "".join(value)
        i = j + 1
        if i < len(body):
            if body[i] != ",":
                raise ExpositionError(f"line {lineno}: expected ',' in labels")
            i += 1
    return labels


class MetricFamily:
    """One parsed family: declared type plus its samples."""

    def __init__(self, name: str, kind: str) -> None:
        self.name = name
        self.kind = kind
        #: sample name -> list of (labels dict, value)
        self.samples: Dict[str, List[Tuple[Dict[str, str], float]]] = {}

    def values(self, sample: Optional[str] = None) -> List[float]:
        return [v for _, v in self.samples.get(sample or self.name, [])]

    def value(self, labels: Optional[Mapping[str, str]] = None) -> Optional[float]:
        """The single sample matching ``labels`` exactly (None if absent)."""
        wanted = dict(labels or {})
        for have, value in self.samples.get(self.name, []):
            if have == wanted:
                return value
        return None


def parse_exposition(text: str) -> Dict[str, MetricFamily]:
    """Parse exposition text into families; raises on malformed lines."""
    families: Dict[str, MetricFamily] = {}
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split()
            if len(parts) >= 2 and parts[1] == "TYPE":
                if len(parts) != 4:
                    raise ExpositionError(f"line {lineno}: malformed TYPE line")
                _, _, name, kind = parts
                if not _NAME_RE.match(name):
                    raise ExpositionError(f"line {lineno}: bad family name {name!r}")
                if kind not in ("counter", "gauge", "histogram", "summary", "untyped"):
                    raise ExpositionError(f"line {lineno}: bad family type {kind!r}")
                if name in families:
                    raise ExpositionError(f"line {lineno}: duplicate TYPE for {name}")
                families[name] = MetricFamily(name, kind)
            continue  # other comments (HELP etc.) are legal and ignored
        match = re.match(r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{(.*)\})?\s+(\S+)$", line)
        if not match:
            raise ExpositionError(f"line {lineno}: malformed sample: {raw!r}")
        sample_name, _, label_body, value_text = match.groups()
        if not _VALUE_RE.match(value_text):
            raise ExpositionError(f"line {lineno}: malformed value {value_text!r}")
        labels = _parse_labels(label_body, lineno) if label_body else {}
        family = _family_of(families, sample_name)
        if family is None:
            raise ExpositionError(
                f"line {lineno}: sample {sample_name!r} precedes its TYPE line"
            )
        if family.kind != "histogram" and sample_name != family.name:
            raise ExpositionError(
                f"line {lineno}: sample {sample_name!r} does not match "
                f"family {family.name!r}"
            )
        if family.kind == "histogram" and sample_name not in (
            f"{family.name}_bucket",
            f"{family.name}_sum",
            f"{family.name}_count",
        ):
            raise ExpositionError(
                f"line {lineno}: {sample_name!r} is not a histogram series "
                f"of {family.name!r}"
            )
        if sample_name.endswith("_bucket") and "le" not in labels:
            raise ExpositionError(f"line {lineno}: bucket sample without le label")
        family.samples.setdefault(sample_name, []).append(
            (labels, float(value_text))
        )
    return families


def _family_of(
    families: Mapping[str, MetricFamily], sample_name: str
) -> Optional[MetricFamily]:
    if sample_name in families:
        return families[sample_name]
    for suffix in ("_bucket", "_sum", "_count"):
        if sample_name.endswith(suffix):
            base = sample_name[: -len(suffix)]
            family = families.get(base)
            if family is not None and family.kind == "histogram":
                return family
    return None


def validate_exposition(text: str) -> Dict[str, MetricFamily]:
    """Parse *and* enforce the semantic invariants scrapers depend on.

    Beyond :func:`parse_exposition`'s line grammar: counters are
    non-negative, and every histogram label-set has cumulative monotone
    non-decreasing buckets, a ``+Inf`` bucket, and ``+Inf`` equal to its
    ``_count``.  Returns the parsed families; raises
    :class:`ExpositionError` on any violation.
    """
    families = parse_exposition(text)
    for family in families.values():
        if family.kind == "counter":
            for labels, value in family.samples.get(family.name, []):
                if value < 0:
                    raise ExpositionError(
                        f"counter {family.name}{labels} is negative"
                    )
        if family.kind != "histogram":
            continue
        grouped: Dict[Tuple[Tuple[str, str], ...], List[Tuple[float, float]]] = {}
        for labels, value in family.samples.get(f"{family.name}_bucket", []):
            le = labels["le"]
            rest = tuple(sorted((k, v) for k, v in labels.items() if k != "le"))
            bound = float("inf") if le == "+Inf" else float(le)
            grouped.setdefault(rest, []).append((bound, value))
        counts = {
            tuple(sorted(labels.items())): value
            for labels, value in family.samples.get(f"{family.name}_count", [])
        }
        for rest, buckets in grouped.items():
            buckets.sort()
            previous = -1.0
            for bound, value in buckets:
                if value < previous:
                    raise ExpositionError(
                        f"histogram {family.name}{dict(rest)} buckets are "
                        "not cumulative/monotone"
                    )
                previous = value
            if not buckets or buckets[-1][0] != float("inf"):
                raise ExpositionError(
                    f"histogram {family.name}{dict(rest)} lacks a +Inf bucket"
                )
            count = counts.get(rest)
            if count is None:
                raise ExpositionError(
                    f"histogram {family.name}{dict(rest)} lacks a _count series"
                )
            if buckets[-1][1] != count:
                raise ExpositionError(
                    f"histogram {family.name}{dict(rest)}: +Inf bucket "
                    f"{buckets[-1][1]:g} != count {count:g}"
                )
    return families


# ----------------------------------------------------------------------
# The HTTP server
# ----------------------------------------------------------------------


class _TelemetryHandler(BaseHTTPRequestHandler):
    def _telemetry(self) -> "_TelemetryHTTPServer":
        server = self.server
        assert isinstance(server, _TelemetryHTTPServer)
        return server

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        path = self.path.split("?", 1)[0]
        try:
            if path == "/metrics":
                body = self._telemetry().render_metrics().encode("utf-8")
                self._respond(200, EXPOSITION_CONTENT_TYPE, body)
            elif path == "/healthz":
                health = self._telemetry().render_health()
                code = 503 if health.get("status") == "crashed" else 200
                body = json.dumps(health, default=str).encode("utf-8")
                self._respond(code, "application/json", body)
            elif path == "/readyz":
                ready = self._telemetry().render_ready()
                self._respond(
                    200 if ready else 503,
                    "text/plain; charset=utf-8",
                    b"ready\n" if ready else b"not ready\n",
                )
            else:
                self._respond(404, "text/plain; charset=utf-8", b"not found\n")
        except Exception as error:  # pragma: no cover - defensive
            self._respond(
                500, "text/plain; charset=utf-8", f"error: {error}\n".encode()
            )

    def _respond(self, code: int, content_type: str, body: bytes) -> None:
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format: str, *args: Any) -> None:
        """Scrape traffic must not spam stderr."""


class _TelemetryHTTPServer(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True

    def __init__(
        self,
        address: Tuple[str, int],
        metrics_fn: Callable[[], str],
        health_fn: Callable[[], Mapping[str, Any]],
        ready_fn: Callable[[], bool],
    ) -> None:
        super().__init__(address, _TelemetryHandler)
        self._metrics_fn = metrics_fn
        self._health_fn = health_fn
        self._ready_fn = ready_fn

    def render_metrics(self) -> str:
        return self._metrics_fn()

    def render_health(self) -> Dict[str, Any]:
        return dict(self._health_fn())

    def render_ready(self) -> bool:
        return bool(self._ready_fn())


class TelemetryServer:
    """The metrics/health endpoint: ``/metrics``, ``/healthz``, ``/readyz``.

    ::

        server = TelemetryServer(lambda: "nebula_up 1\\n").start()
        scrape(server.url + "metrics")   # -> "nebula_up 1\\n"
        server.stop()

    ``port=0`` binds an ephemeral port (tests and parallel CI jobs);
    the bound port is available as :attr:`port` after :meth:`start`.
    """

    def __init__(
        self,
        metrics_fn: Callable[[], str],
        health_fn: Optional[Callable[[], Mapping[str, Any]]] = None,
        ready_fn: Optional[Callable[[], bool]] = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.host = host
        self._requested_port = port
        self._metrics_fn = metrics_fn
        self._health_fn = health_fn or (lambda: {"status": "ok", "ready": True})
        self._ready_fn = ready_fn or (lambda: True)
        self._server: Optional[_TelemetryHTTPServer] = None
        self._thread: Optional[threading.Thread] = None

    def start(self) -> "TelemetryServer":
        if self._server is not None:
            return self
        self._server = _TelemetryHTTPServer(
            (self.host, self._requested_port),
            self._metrics_fn,
            self._health_fn,
            self._ready_fn,
        )
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="nebula-telemetry",
            daemon=True,
        )
        self._thread.start()
        return self

    @property
    def port(self) -> int:
        if self._server is None:
            raise RuntimeError("telemetry server is not running")
        return int(self._server.server_address[1])

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}/"

    def stop(self) -> None:
        server, thread = self._server, self._thread
        self._server = self._thread = None
        if server is not None:
            server.shutdown()
            server.server_close()
        if thread is not None:
            thread.join(timeout=5.0)

    def __enter__(self) -> "TelemetryServer":
        return self.start()

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        self.stop()


def scrape(url: str, timeout: float = 5.0) -> str:
    """GET one telemetry endpoint; returns the body text.

    Stdlib-only HTTP client shared by ``repro top``, the tests, and the
    scrape-smoke driver.  Raises ``urllib.error`` exceptions on failure
    (including HTTP error statuses).
    """
    from urllib.request import urlopen

    with urlopen(url, timeout=timeout) as response:
        return str(response.read().decode("utf-8"))
