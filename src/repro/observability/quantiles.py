"""Streaming latency quantiles over a bounded sliding window.

The service layer needs p50/p95/p99 of queue-wait, flush, and
end-to-end latency *while running*, without unbounded memory and
without external dependencies.  :class:`StreamingQuantiles` keeps the
last ``window`` observations in a ring buffer; a quantile query sorts a
copy of the window (queries are rare — a stats call or a scrape — while
observations are the hot path and stay O(1)).

Accuracy bound: the estimate is **exact over the retained window** (the
most recent ``window`` observations) and approximates the lifetime
distribution only as well as the window represents it.  With the
default window of 1024 the p99 rank sits ~10 observations from the top,
so single outliers move it visibly — which is exactly what a live
dashboard wants.  Memory is O(window) floats, forever.

:class:`PhaseQuantiles` bundles one estimator per named phase and
publishes ``<metric>{phase=...,quantile=...}`` gauges into a
:class:`~repro.observability.metrics.MetricsRegistry`, which is how the
estimates reach the Prometheus exposition and ``repro stats``.

Both classes snapshot/restore like the registry, so CLI runs can
accumulate across processes.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from .metrics import Gauge, MetricsRegistry

#: The percentiles the service publishes, as (label, q) pairs.
SERVICE_PERCENTILES: Tuple[Tuple[str, float], ...] = (
    ("p50", 0.50),
    ("p95", 0.95),
    ("p99", 0.99),
)


def _interpolate(ordered: Sequence[float], q: float) -> float:
    """The q-quantile of an already-sorted sample (0.0 when empty)."""
    if not 0.0 <= q <= 1.0:
        raise ValueError("quantile must be in [0, 1]")
    if not ordered:
        return 0.0
    if len(ordered) == 1:
        return ordered[0]
    position = q * (len(ordered) - 1)
    lower = int(position)
    upper = min(lower + 1, len(ordered) - 1)
    fraction = position - lower
    return ordered[lower] + (ordered[upper] - ordered[lower]) * fraction


class StreamingQuantiles:
    """Bounded ring-buffer quantile estimator (thread-safe).

    >>> est = StreamingQuantiles(window=4)
    >>> for v in (1.0, 2.0, 3.0, 4.0):
    ...     est.observe(v)
    >>> est.quantile(0.5)
    2.5
    """

    def __init__(self, window: int = 1024) -> None:
        if window < 1:
            raise ValueError("quantile window must be >= 1")
        self.window = window
        self._values: List[float] = []
        self._next = 0  # ring cursor once the window is full
        self._count = 0  # lifetime observations
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            if len(self._values) < self.window:
                self._values.append(value)
            else:
                self._values[self._next] = value
                self._next = (self._next + 1) % self.window
            self._count += 1

    @property
    def count(self) -> int:
        """Lifetime observation count (retained window may be smaller)."""
        with self._lock:
            return self._count

    def __len__(self) -> int:
        with self._lock:
            return len(self._values)

    def quantile(self, q: float) -> float:
        """The q-quantile of the retained window (0.0 when empty).

        Linear interpolation between the two closest ranks — the same
        convention as ``statistics.quantiles`` with inclusive method.
        """
        with self._lock:
            ordered = sorted(self._values)
        return _interpolate(ordered, q)

    def percentiles(
        self, points: Iterable[Tuple[str, float]] = SERVICE_PERCENTILES
    ) -> Dict[str, float]:
        """Named percentiles of the window, e.g. ``{"p50": ..., ...}``.

        One sort serves every requested point (the publish hot path).
        """
        with self._lock:
            ordered = sorted(self._values)
        return {label: _interpolate(ordered, q) for label, q in points}

    # -- persistence ----------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """JSON-serializable state: window size, values, lifetime count."""
        with self._lock:
            # Oldest-first so restore() refills in arrival order.
            values = self._values[self._next:] + self._values[: self._next]
            return {
                "window": self.window,
                "values": list(values),
                "count": self._count,
            }

    def restore(self, snapshot: Mapping[str, Any]) -> None:
        """Reload a prior :meth:`snapshot` (excess values are dropped)."""
        values = [float(v) for v in snapshot.get("values", [])]
        with self._lock:
            self._values = values[-self.window:]
            self._next = 0 if len(self._values) < self.window else 0
            self._count = max(int(snapshot.get("count", len(values))), len(values))


class PhaseQuantiles:
    """Per-phase estimators published as ``{phase,quantile}`` gauges.

    The service observes one duration per (request, phase); a
    :meth:`publish` refreshes the registry gauges — one per
    (phase, percentile) — that the Prometheus exporter and
    ``repro stats`` read.
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        metric_name: str,
        phases: Sequence[str],
        window: int = 1024,
    ) -> None:
        self.metric_name = metric_name
        self.phases = tuple(phases)
        self.estimators: Dict[str, StreamingQuantiles] = {
            phase: StreamingQuantiles(window) for phase in self.phases
        }
        self._gauges: Dict[Tuple[str, str], Gauge] = {}
        for phase in self.phases:
            for label, _ in SERVICE_PERCENTILES:
                self._gauges[(phase, label)] = registry.gauge(
                    metric_name, {"phase": phase, "quantile": label}
                )

    def observe(self, phase: str, value: float) -> None:
        self.estimators[phase].observe(value)

    def publish(self) -> None:
        """Push every (phase, percentile) estimate into its gauge."""
        for phase, estimator in self.estimators.items():
            for label, value in estimator.percentiles().items():
                self._gauges[(phase, label)].set(value)

    def percentiles(self, phase: str) -> Dict[str, float]:
        return self.estimators[phase].percentiles()

    def counts(self) -> Dict[str, int]:
        """Lifetime observations per phase (test/debug helper)."""
        return {phase: est.count for phase, est in self.estimators.items()}

    def snapshot(self) -> Dict[str, Any]:
        return {phase: est.snapshot() for phase, est in self.estimators.items()}

    def restore(self, snapshot: Mapping[str, Any]) -> None:
        for phase, dump in snapshot.items():
            estimator = self.estimators.get(phase)
            if estimator is not None and isinstance(dump, Mapping):
                estimator.restore(dump)
        self.publish()


def merged_percentiles(
    estimators: Iterable[StreamingQuantiles],
    points: Iterable[Tuple[str, float]] = SERVICE_PERCENTILES,
) -> Optional[Dict[str, float]]:
    """Percentiles over the union of several windows (None when empty).

    Used by benchmarks that shard observations across client threads.
    """
    values: List[float] = []
    for estimator in estimators:
        values.extend(estimator.snapshot()["values"])
    if not values:
        return None
    merged = StreamingQuantiles(window=max(len(values), 1))
    for value in values:
        merged.observe(value)
    return merged.percentiles(points)
