"""Observability for the Nebula pipeline: tracing, metrics, profiling.

Three cooperating pieces, none needing external dependencies:

* :mod:`~repro.observability.tracing` — nested spans over the Figure 16
  stages, exported per-trace to an in-memory ring buffer and/or a JSONL
  file; :data:`NOOP_TRACER` keeps the default hot path allocation-free;
* :mod:`~repro.observability.metrics` — counters, gauges, and
  fixed-bucket histograms in a process-wide registry
  (:func:`get_metrics`), covering ingestion, query generation per type,
  SQL execution, scoring, shared-execution savings, and every
  resilience event (retries, degradations, dead letters);
* :mod:`~repro.observability.profiling` — bounded per-SQL-statement
  timing and row counts inside the keyword-search engine.

See ``docs/observability.md`` for the span taxonomy and metric catalog,
and how each metric maps back to the paper's figures.
"""

from .events import EVENT_KINDS, EventLog, read_jsonl_events
from .exporter import (
    EXPOSITION_CONTENT_TYPE,
    ExpositionError,
    MetricFamily,
    TelemetryServer,
    parse_exposition,
    render_health_gauges,
    render_metrics,
    render_snapshot,
    scrape,
    validate_exposition,
)
from .metrics import (
    COUNT_BUCKETS,
    TIME_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    encode_key,
    get_metrics,
    non_zero_counters,
    set_metrics,
)
from .profiling import SqlProfiler, StatementProfile
from .quantiles import (
    SERVICE_PERCENTILES,
    PhaseQuantiles,
    StreamingQuantiles,
    merged_percentiles,
)
from .stages import CANONICAL_STAGES, is_canonical_stage
from .tracing import (
    NOOP_TRACER,
    SpanLike,
    TracerLike,
    JsonlExporter,
    NoopTracer,
    RingBufferExporter,
    Span,
    Tracer,
    format_trace,
    iter_spans,
    read_jsonl_traces,
    span_names,
    validate_trace_file,
)

__all__ = [
    # stages
    "CANONICAL_STAGES",
    "is_canonical_stage",
    # tracing
    "Tracer",
    "NoopTracer",
    "NOOP_TRACER",
    "Span",
    "SpanLike",
    "TracerLike",
    "RingBufferExporter",
    "JsonlExporter",
    "format_trace",
    "read_jsonl_traces",
    "span_names",
    "validate_trace_file",
    # metrics
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "get_metrics",
    "set_metrics",
    "encode_key",
    "non_zero_counters",
    "TIME_BUCKETS",
    "COUNT_BUCKETS",
    # profiling
    "SqlProfiler",
    "StatementProfile",
    # quantiles
    "StreamingQuantiles",
    "PhaseQuantiles",
    "SERVICE_PERCENTILES",
    "merged_percentiles",
    # events
    "EventLog",
    "EVENT_KINDS",
    "read_jsonl_events",
    # exporter
    "TelemetryServer",
    "render_metrics",
    "render_snapshot",
    "render_health_gauges",
    "parse_exposition",
    "validate_exposition",
    "scrape",
    "MetricFamily",
    "ExpositionError",
    "EXPOSITION_CONTENT_TYPE",
    "iter_spans",
]
