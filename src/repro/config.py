"""Engine-wide configuration for Nebula.

All tunable parameters from the paper live in :class:`NebulaConfig` so that
experiments can sweep them without touching the pipeline code.  The names
mirror the paper's symbols:

========================  =====================================================
``epsilon``               cutoff threshold for signature-map generation (§5.2.1)
``alpha``                 influence-range radius, in words (§5.2.2)
``beta1/beta2/beta3``     context-match rewards for Type-1/2/3 matches (§5.2.2)
``beta_lower/beta_upper`` verification bands (§7, Figure 8)
``batch_size``            ACG stability batch size ``B`` (Def. 6.1)
``stability_mu``          ACG stability threshold ``mu`` (Def. 6.1)
``spreading_hops``        radius ``K`` of the focal-based spreading search
``target_recall``         desired coverage when the profile auto-selects ``K``
========================  =====================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from .errors import ConfigurationError
from .resilience.faults import FaultInjector


#: SQLite journal modes a file backend may be configured with.
JOURNAL_MODES = frozenset(
    {"wal", "delete", "truncate", "persist", "memory", "off"}
)


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ConfigurationError(message)


@dataclass(frozen=True)
class NebulaConfig:
    """Immutable bag of Nebula's tunable parameters.

    The defaults follow the values the paper found to work well: a cutoff of
    ``epsilon = 0.6`` (zero false negatives, moderate false positives), an
    influence range of three words, Type-1 > Type-2 > Type-3 rewards, and the
    verification bands the BoundsSetting algorithm converged to
    (``beta_lower = 0.32``, ``beta_upper = 0.86``).
    """

    #: Cutoff threshold for admitting a word into a signature map.
    epsilon: float = 0.6
    #: Influence-range radius (words to each side) for context matching.
    alpha: int = 3
    #: Percent reward for a Type-1 match (table + column + value).
    beta1: float = 0.50
    #: Percent reward for a Type-2 match (table + value).
    beta2: float = 0.30
    #: Percent reward for a Type-3 match (column + value).
    beta3: float = 0.15
    #: Lower verification band; below it predictions auto-reject.
    beta_lower: float = 0.32
    #: Upper verification band; above it predictions auto-accept.
    beta_upper: float = 0.86
    #: ACG stability batch size ``B`` (number of annotations per batch).
    batch_size: int = 50
    #: ACG stability threshold ``mu`` (new-edge ratio below which stable).
    stability_mu: float = 0.10
    #: Radius ``K`` of the focal-based spreading search, when fixed.
    spreading_hops: int = 2
    #: Desired candidate coverage when the profile auto-selects ``K``.
    target_recall: float = 0.90
    #: Enable the ACG focal-based confidence adjustment (§6.2).
    focal_adjustment: bool = True
    #: Focal reward mode: ``"direct"`` (the paper's choice) or ``"path"``
    #: (the multi-hop extension the paper rejects — kept for ablations).
    focal_mode: str = "direct"
    #: Hop bound of the ``"path"`` focal mode.
    focal_max_hops: int = 4
    #: Enable shared execution of the generated SQL queries (§6, Fig. 13).
    shared_execution: bool = False
    #: Worker threads for parallel Stage-2 statement execution; 0 or 1
    #: keeps the sequential path.  Only effective when the storage backend
    #: can hand out concurrent reader connections (file-backed databases
    #: and the shared-cache memory backend).
    executor_workers: int = 0
    #: Name of the storage backend to construct when the engine opens its
    #: own database (see :mod:`repro.storage.registry`): ``"sqlite-file"``
    #: or ``"sqlite-memory"``, plus anything registered at runtime.
    storage_backend: str = "sqlite-file"
    #: Connection-pool size of the storage backend (auxiliary handles
    #: leased by tools and readers; the primary is not pooled).
    pool_size: int = 4
    #: SQLite journal mode of file-backed engines.  ``"wal"`` (the
    #: default) lets readers run concurrently with an open write
    #: transaction — the design the concurrent annotation service
    #: depends on; the other modes exist for ablations and debugging.
    journal_mode: str = "wal"
    #: Seconds a connection waits on a locked database before failing
    #: (``PRAGMA busy_timeout``); applied to every connection the
    #: file backend opens, readers included.
    busy_timeout: float = 5.0
    #: LRU capacity of the keyword-analysis memo cache; 0 disables it.
    analysis_cache_size: int = 2048
    #: Persist the inverted value index + hop profile as backend tables
    #: (``_nebula_index_postings`` / ``_nebula_index_stats`` /
    #: ``_nebula_hop_profile``): engine open adopts a valid persisted
    #: image instead of rebuilding, and ingestion maintains it
    #: incrementally inside the data transaction.  Off -> the historical
    #: in-memory rebuild-per-open.
    persist_index: bool = True
    #: LRU capacity (in tokens) of the persistent index's posting-page
    #: cache; 0 reads every page from the backend (uncached).
    index_page_cache_size: int = 4096
    #: Enable the backward concept search special case (§5.2.3, lines 8-12).
    backward_concept_search: bool = True
    #: Enable the context-based weight adjustment (§5.2.2) — ablation knob.
    context_adjustment: bool = True
    #: Maximum keywords forwarded to the search engine per query.
    max_query_keywords: int = 3
    #: Seed for any internal randomized tie-breaking (sampling, etc.).
    seed: Optional[int] = field(default=7)
    #: Retry attempts for transient storage errors ("database is locked").
    retry_max_attempts: int = 3
    #: Base backoff delay (seconds) of the storage retry policy.
    retry_base_delay: float = 0.005
    #: Backoff ceiling (seconds) of the storage retry policy.
    retry_max_delay: float = 0.25
    #: Capture failed ingestions in the ``_nebula_dead_letters`` table.
    dead_letters: bool = True
    #: Enable structured tracing of the pipeline (ring-buffer exporter,
    #: plus a JSONL exporter when ``trace_path`` is set).  Off by default:
    #: the no-op tracer keeps the hot path allocation-free.
    tracing: bool = False
    #: When tracing, also append each finished trace to this JSONL file.
    trace_path: Optional[str] = None
    #: Capacity of the in-memory trace ring buffer (last-N traces).
    trace_buffer_size: int = 64
    #: Default port of the service telemetry endpoint (``/metrics``,
    #: ``/healthz``, ``/readyz``): None = not served, 0 = ephemeral.
    #: ``repro serve --metrics-port`` overrides it per run.
    metrics_port: Optional[int] = None
    #: Test seam: raise scripted faults at the pipeline's named fault
    #: points (``store.add``, ``spreading.scope``, ``executor.run``,
    #: ``queue.triage``).  None in production.
    fault_injector: Optional[FaultInjector] = field(
        default=None, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        _require(0.0 < self.epsilon <= 1.0, "epsilon must be in (0, 1]")
        _require(self.alpha >= 1, "alpha must be >= 1")
        _require(
            self.beta1 > self.beta2 > self.beta3 > 0.0,
            "rewards must satisfy beta1 > beta2 > beta3 > 0",
        )
        _require(
            0.0 <= self.beta_lower <= self.beta_upper <= 1.0,
            "verification bands must satisfy 0 <= beta_lower <= beta_upper <= 1",
        )
        _require(self.batch_size >= 1, "batch_size must be >= 1")
        _require(0.0 < self.stability_mu < 1.0, "stability_mu must be in (0, 1)")
        _require(self.spreading_hops >= 1, "spreading_hops must be >= 1")
        _require(0.0 < self.target_recall <= 1.0, "target_recall must be in (0, 1]")
        _require(self.max_query_keywords >= 2, "max_query_keywords must be >= 2")
        _require(
            self.focal_mode in ("direct", "path"),
            "focal_mode must be 'direct' or 'path'",
        )
        _require(self.focal_max_hops >= 1, "focal_max_hops must be >= 1")
        _require(self.retry_max_attempts >= 1, "retry_max_attempts must be >= 1")
        _require(
            0.0 <= self.retry_base_delay <= self.retry_max_delay,
            "retry delays must satisfy 0 <= retry_base_delay <= retry_max_delay",
        )
        _require(self.trace_buffer_size >= 1, "trace_buffer_size must be >= 1")
        _require(
            self.metrics_port is None or 0 <= self.metrics_port <= 65535,
            "metrics_port must be None or in [0, 65535]",
        )
        _require(self.executor_workers >= 0, "executor_workers must be >= 0")
        _require(self.analysis_cache_size >= 0, "analysis_cache_size must be >= 0")
        _require(
            self.index_page_cache_size >= 0, "index_page_cache_size must be >= 0"
        )
        _require(bool(self.storage_backend), "storage_backend must be non-empty")
        _require(self.pool_size >= 1, "pool_size must be >= 1")
        _require(
            self.journal_mode in JOURNAL_MODES,
            f"journal_mode must be one of {sorted(JOURNAL_MODES)}",
        )
        _require(self.busy_timeout >= 0.0, "busy_timeout must be >= 0")

    def with_updates(self, **changes: object) -> "NebulaConfig":
        """Return a copy of this config with ``changes`` applied.

        >>> NebulaConfig().with_updates(epsilon=0.8).epsilon
        0.8
        """
        return replace(self, **changes)  # type: ignore[arg-type]


#: Configuration used by the paper's "Nebula-0.6" variant.
NEBULA_06 = NebulaConfig(epsilon=0.6)

#: Configuration used by the paper's "Nebula-0.8" variant.
NEBULA_08 = NebulaConfig(epsilon=0.8)
