"""E1 — Figure 11(a): query-generation time split across the three phases.

Paper shape: map generation takes ~2/3 of the time; larger cutoff
thresholds do less downstream work; time grows with annotation size m.
"""

import pytest

from repro.core.query_generation import (
    PHASE_CONTEXT,
    PHASE_MAPS,
    PHASE_QUERIES,
    generate_queries,
)

from conftest import EPSILONS, SIZE_GROUPS, dump_metrics, make_nebula, report, table


@pytest.mark.benchmark(group="fig11a")
@pytest.mark.parametrize("epsilon", EPSILONS)
def test_fig11a_query_generation_time(benchmark, dataset_large, epsilon):
    db, workload = dataset_large
    nebula = make_nebula(db, epsilon)

    rows = []
    for size in SIZE_GROUPS:
        annotations = workload.group(size)
        totals = {PHASE_MAPS: 0.0, PHASE_CONTEXT: 0.0, PHASE_QUERIES: 0.0}
        for annotation in annotations:
            result = generate_queries(annotation.text, nebula.meta, nebula.config)
            for phase, elapsed in result.phase_times.items():
                totals[phase] += elapsed
        n = len(annotations)
        total = sum(totals.values())
        rows.append(
            [
                f"eps={epsilon}",
                f"L^{size}",
                totals[PHASE_MAPS] / n * 1e3,
                totals[PHASE_CONTEXT] / n * 1e3,
                totals[PHASE_QUERIES] / n * 1e3,
                total / n * 1e3,
                totals[PHASE_MAPS] / total if total else 0.0,
            ]
        )
    report(
        f"fig11a_eps{epsilon}",
        table(
            ["config", "set", "maps_ms", "context_ms", "queries_ms",
             "total_ms", "maps_share"],
            rows,
        ),
    )

    # Benchmark the full generation over a representative mid-size text.
    sample = workload.group(500)[0]
    benchmark(generate_queries, sample.text, nebula.meta, nebula.config)

    # Per-phase histograms + per-type query counters next to the table.
    dump_metrics("fig11a_metrics")
