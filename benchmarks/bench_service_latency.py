"""Service latency under concurrent load (the telemetry plane's numbers).

Not a paper figure: the operational companion to the Figure 16 stage
breakdown.  Drives concurrent client threads through the annotation
service's admission-controlled queue and reports the streaming latency
percentiles the telemetry plane measures in production — p50/p95/p99 of
queue wait, writer flush, and end-to-end submit→ack — plus the
sustained ingestion rate.  The percentiles come from the service's own
:class:`~repro.observability.quantiles.PhaseQuantiles` estimators (the
same numbers ``/metrics`` and ``repro top`` render), so the benchmark
doubles as a check that the measurement plane agrees with client-side
wall-clock accounting.

Exports the machine-readable summary CI tracks to
``benchmarks/results/BENCH_service_latency.json``.  Set ``BENCH_SMOKE=1``
for the small CI world with relaxed assertions.

Honors ``NEBULA_BACKEND``; defaults to the shared-cache memory engine.

Run::

    PYTHONPATH=src python -m pytest benchmarks/bench_service_latency.py -q
"""

import json
import os
import tempfile
import threading
import time

from repro import (
    AnnotationService,
    BioDatabaseSpec,
    Nebula,
    NebulaConfig,
    ServiceConfig,
    generate_bio_database,
    get_backend,
)
from repro.errors import ServiceOverloadedError
from repro.observability import StreamingQuantiles, merged_percentiles

from conftest import RESULTS_DIR, report, table

BENCH_SMOKE = os.environ.get("BENCH_SMOKE") == "1"

CLIENTS = 4 if BENCH_SMOKE else 8
REQUESTS_PER_CLIENT = 10 if BENCH_SMOKE else 50
SPEC = (
    BioDatabaseSpec(genes=80, proteins=48, publications=300, seed=41)
    if BENCH_SMOKE
    else BioDatabaseSpec(genes=300, proteins=180, publications=1200, seed=41)
)

PHASES = ("queue", "flush", "e2e")


def _build_world():
    engine = os.environ.get("NEBULA_BACKEND", "sqlite-memory")
    path = None
    if engine == "sqlite-file":
        handle = tempfile.NamedTemporaryFile(
            suffix=".db", prefix="nebula-bench-service-", delete=False
        )
        handle.close()
        path = handle.name
    backend = get_backend(engine, path=path)
    db = generate_bio_database(SPEC, backend=backend)
    nebula = Nebula(
        backend, db.meta, NebulaConfig(epsilon=0.6), aliases=db.aliases
    )
    return backend, path, db, nebula


def test_service_latency_percentiles():
    backend, path, db, nebula = _build_world()
    service = AnnotationService(
        nebula,
        ServiceConfig(
            queue_capacity=max(CLIENTS * 4, 16),
            max_batch=8,
            flush_interval=0.005,
            latency_window=4096,
        ),
    ).start()

    counts = {"ok": 0, "failed": 0, "retries": 0}
    lock = threading.Lock()
    # Client-side wall-clock e2e, sharded per thread and merged at the
    # end — the independent check against the service's own estimator.
    client_e2e = [StreamingQuantiles(window=4096) for _ in range(CLIENTS)]

    def client(c):
        estimator = client_e2e[c]
        for i in range(REQUESTS_PER_CLIENT):
            gene = db.genes[(c * REQUESTS_PER_CLIENT + i) % len(db.genes)]
            text = f"bench client {c} note {i}: gene {gene.gid} under load"
            started = time.perf_counter()
            while True:
                try:
                    ticket = service.submit(text, author=f"client-{c}")
                    break
                except ServiceOverloadedError:
                    # Sustained-load convention: overloaded clients back
                    # off and retry rather than dropping the request.
                    with lock:
                        counts["retries"] += 1
                    time.sleep(0.002)
            try:
                ticket.result(timeout=120.0)
                outcome = "ok"
            except Exception:
                outcome = "failed"
            estimator.observe(time.perf_counter() - started)
            with lock:
                counts[outcome] += 1

    threads = [
        threading.Thread(target=client, args=(c,), name=f"bench-client-{c}")
        for c in range(CLIENTS)
    ]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - started

    stats = service.stats()
    clean = service.stop()
    nebula.close()
    backend.close()
    if path is not None and os.path.exists(path):
        os.unlink(path)

    attempts = CLIENTS * REQUESTS_PER_CLIENT
    rate = counts["ok"] / elapsed if elapsed > 0 else float("inf")
    percentiles = {
        "queue": dict(stats.queue_wait_seconds),
        "flush": dict(stats.flush_seconds),
        "e2e": dict(stats.e2e_seconds),
    }
    observed = merged_percentiles(client_e2e)

    rows = [
        [phase] + [percentiles[phase][q] * 1e3 for q in ("p50", "p95", "p99")]
        for phase in PHASES
    ]
    if observed is not None:
        rows.append(
            ["e2e (client-side)"]
            + [observed[q] * 1e3 for q in ("p50", "p95", "p99")]
        )
    report(
        "service_latency",
        table(["phase", "p50_ms", "p95_ms", "p99_ms"], rows)
        + [
            f"clients: {CLIENTS}, requests: {attempts}, "
            f"retries after overload: {counts['retries']}",
            f"sustained rate: {rate:.1f} ann/s "
            f"({stats.batches} writer batches)",
        ],
    )
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(
        os.path.join(RESULTS_DIR, "BENCH_service_latency.json"), "w"
    ) as handle:
        json.dump(
            {
                "mode": "smoke" if BENCH_SMOKE else "full",
                "clients": CLIENTS,
                "requests": attempts,
                "retries": counts["retries"],
                "annotations_per_sec": rate,
                "batches": stats.batches,
                "percentiles_seconds": percentiles,
                "client_e2e_seconds": observed,
            },
            handle,
            indent=2,
            sort_keys=True,
        )

    # Accounting closes: every request acked (retries notwithstanding).
    assert counts["ok"] + counts["failed"] == attempts
    assert counts["failed"] == 0
    assert clean is True
    assert stats.ingested == counts["ok"]
    # The estimators are ordered and populated for every phase.
    for phase in PHASES:
        p = percentiles[phase]
        assert 0.0 <= p["p50"] <= p["p95"] <= p["p99"]
    assert percentiles["e2e"]["p50"] > 0.0
    assert rate > 0.0
    # The service's e2e estimate and the client-side wall clock agree on
    # ordering: the service measures submit→complete, which can only be
    # at or below what clients observe through the ticket round-trip.
    assert observed is not None
    assert percentiles["e2e"]["p50"] <= observed["p50"] * 1.5
