"""E16 — §6.2 ablation: the ACG focal-based confidence adjustment.

Runs the L^100 workload with and without the focal adjustment and
compares how candidate confidences separate true missing attachments from
junk.  Expected shape: with the adjustment, true candidates (which share
annotations with the focal's neighborhood) climb relative to junk, so the
mean confidence margin — and the resulting assessment — improve or hold.
"""

import pytest

from repro.core.assessment import assess, average_assessments

from conftest import make_nebula, report, table


def _margin(result, missing):
    """Mean confidence of true candidates minus mean of junk candidates."""
    true_conf = [c.confidence for c in result.candidates if c.ref in missing]
    junk_conf = [c.confidence for c in result.candidates if c.ref not in missing]
    if not true_conf or not junk_conf:
        return None
    return sum(true_conf) / len(true_conf) - sum(junk_conf) / len(junk_conf)


@pytest.mark.benchmark(group="ablation")
def test_ablation_focal_adjustment(benchmark, dataset_large):
    db, workload = dataset_large
    annotations = workload.group(100)

    rows = []
    margins = {}
    assessments = {}
    for label, enabled in (("with-focal", True), ("without-focal", False)):
        nebula = make_nebula(db, 0.6, focal_adjustment=enabled)
        collected = []
        per_annotation = []
        for annotation in annotations:
            focal = annotation.focal(2)
            missing = set(annotation.missing(focal))
            result = nebula.analyze(annotation.text, focal=focal, shared=False)
            margin = _margin(result, missing)
            if margin is not None:
                collected.append(margin)
            per_annotation.append(
                assess(result.candidates, set(annotation.ideal_refs), focal,
                       0.32, 0.86)
            )
        margins[label] = sum(collected) / len(collected) if collected else 0.0
        assessments[label] = average_assessments(per_annotation)
        rows.append(
            [label, margins[label], assessments[label].f_n,
             assessments[label].f_p, assessments[label].m_f]
        )
    report(
        "ablation_focal",
        table(["variant", "true_junk_margin", "F_N", "F_P", "M_F"], rows),
    )

    # The adjustment must not hurt the separation, and typically helps.
    assert margins["with-focal"] >= margins["without-focal"] - 1e-9
    assert assessments["with-focal"].f_p <= assessments["without-focal"].f_p + 0.05

    nebula = make_nebula(db, 0.6)
    sample = annotations[0]
    benchmark(lambda: nebula.analyze(sample.text, focal=sample.focal(2)))
