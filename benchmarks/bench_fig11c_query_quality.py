"""E3 — Figure 11(c): false-positive / false-negative queries per (ε, L^m).

Judged against the generator's oracle instead of the paper's manual
investigation.  Paper shape: ε = 0.4 and ε = 0.6 have zero false
negatives; ε = 0.4 has the largest false-positive share (up to ~91% on
L^1000); ε = 0.8 has the smallest false-positive share but misses a few
references.
"""

import pytest

from repro.core.query_generation import generate_queries

from conftest import EPSILONS, SIZE_GROUPS, make_nebula, query_quality, report, table


@pytest.mark.benchmark(group="fig11c")
def test_fig11c_query_quality(benchmark, dataset_large):
    db, workload = dataset_large
    rows = []
    fp_share = {}
    fn_share = {}
    for epsilon in EPSILONS:
        nebula = make_nebula(db, epsilon)
        for size in SIZE_GROUPS:
            tp_total = fp_total = missed_total = refs_total = 0
            for annotation in workload.group(size):
                generation = generate_queries(
                    annotation.text, nebula.meta, nebula.config
                )
                tp, fp, missed = query_quality(annotation, generation)
                tp_total += tp
                fp_total += fp
                missed_total += missed
                refs_total += len(annotation.ideal_keywords)
            queries_total = tp_total + fp_total
            fp_share[(epsilon, size)] = (
                fp_total / queries_total if queries_total else 0.0
            )
            fn_share[(epsilon, size)] = missed_total / refs_total
            rows.append(
                [
                    f"eps={epsilon}",
                    f"L^{size}",
                    queries_total,
                    fp_share[(epsilon, size)],
                    fn_share[(epsilon, size)],
                ]
            )
    report(
        "fig11c_query_quality",
        table(["config", "set", "queries", "FP_pct", "FN_pct"], rows),
    )

    for size in SIZE_GROUPS:
        # Paper: epsilon <= 0.6 misses (almost) nothing.
        assert fn_share[(0.4, size)] <= 0.05
        assert fn_share[(0.6, size)] <= 0.05
        # Tighter thresholds have no more false positives than looser ones.
        assert fp_share[(0.8, size)] <= fp_share[(0.4, size)] + 1e-9
    # The loose threshold over-generates noticeably on the big set.
    assert fp_share[(0.4, 1000)] > fp_share[(0.8, 1000)]

    nebula = make_nebula(db, 0.6)
    sample = workload.group(1000)[0]
    benchmark(generate_queries, sample.text, nebula.meta, nebula.config)
