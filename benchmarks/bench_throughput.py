"""E17 — end-to-end throughput of the full proactive pipeline.

Not a paper figure: an operational summary of what Nebula costs per
inserted annotation (Stages 0-3 with persistence) under the execution
strategies — full search, full search with shared execution, and the
focal-based spreading search.  This is the number a deployment would care
about; it aggregates everything the individual figure benchmarks measure.
"""

import time

import pytest

from repro import Nebula, NebulaConfig
from repro.datagen.workload import WorkloadSpec, generate_workload

from conftest import report, table


@pytest.mark.benchmark(group="throughput")
def test_insert_throughput(benchmark, dataset_mid):
    db, _ = dataset_mid
    # Fresh workloads per strategy so insertions never collide.
    rows = []
    rates = {}
    for label, kwargs, config_updates in (
        ("full", {"use_spreading": False}, {}),
        ("full+shared", {"use_spreading": False}, {"shared_execution": True}),
        ("spreading K=2", {"use_spreading": True, "radius": 2}, {}),
    ):
        nebula = Nebula(
            db.connection,
            db.meta,
            NebulaConfig(epsilon=0.6).with_updates(**config_updates),
            aliases=db.aliases,
        )
        workload = generate_workload(db, WorkloadSpec(seed=61))
        annotations = workload.group(100) + workload.group(500)
        started = time.perf_counter()
        tasks_created = 0
        for annotation in annotations:
            result = nebula.insert_annotation(
                annotation.text,
                attach_to=annotation.focal(1),
                **kwargs,
            )
            tasks_created += len(result.tasks)
        elapsed = time.perf_counter() - started
        rate = len(annotations) / elapsed
        rates[label] = rate
        rows.append(
            [label, len(annotations), elapsed * 1e3 / len(annotations),
             rate, tasks_created]
        )
    report(
        "throughput",
        table(
            ["strategy", "annotations", "ms_per_annotation",
             "annotations_per_sec", "tasks"],
            rows,
        ),
    )

    # Sanity: every strategy sustains a usable interactive rate.
    assert all(rate > 10 for rate in rates.values())

    nebula = Nebula(db.connection, db.meta, NebulaConfig(epsilon=0.6),
                    aliases=db.aliases)
    workload = generate_workload(db, WorkloadSpec(seed=67))
    samples = iter(workload.annotations * 50)

    def insert_one():
        annotation = next(samples)
        nebula.insert_annotation(annotation.text, attach_to=annotation.focal(1))

    benchmark(insert_one)
