"""E17 — end-to-end throughput of the full proactive pipeline.

Not a paper figure: an operational summary of what Nebula costs per
inserted annotation (Stages 0-3 with persistence) under the execution
strategies — full search, full search with shared execution, and the
focal-based spreading search.  This is the number a deployment would care
about; it aggregates everything the individual figure benchmarks measure.

``test_batched_ingestion_speedup`` additionally measures the batched
ingestion API (``insert_annotations``) against per-annotation loops on
identically generated worlds — the sustained-traffic regime where
cross-annotation sharing pays — and exports the machine-readable summary CI tracks to
``benchmarks/results/BENCH_throughput.json``.  Set ``BENCH_SMOKE=1`` to
run it on a small world with a relaxed threshold (the CI smoke job).
"""

import gc
import json
import os
import time

import pytest

from repro import BioDatabaseSpec, Nebula, NebulaConfig
from repro.datagen.workload import WorkloadSpec, generate_workload
from repro.perf import AnnotationRequest

from conftest import RESULTS_DIR, build_database, report, table

#: Smoke mode: small world, relaxed speedup bar — used by CI's bench-smoke
#: job where the point is "the fast path works and is not a regression",
#: not a stable absolute number.
BENCH_SMOKE = os.environ.get("BENCH_SMOKE") == "1"

SMOKE_SPEC = BioDatabaseSpec(genes=150, proteins=90, publications=700, seed=7)
FULL_SPEC = BioDatabaseSpec(
    genes=1000, proteins=600, publications=3000, community_size=8
)


@pytest.mark.benchmark(group="throughput")
def test_insert_throughput(benchmark, dataset_mid):
    db, _ = dataset_mid
    # Fresh workloads per strategy so insertions never collide.
    rows = []
    rates = {}
    for label, kwargs, config_updates in (
        ("full", {"use_spreading": False}, {}),
        ("full+shared", {"use_spreading": False}, {"shared_execution": True}),
        ("spreading K=2", {"use_spreading": True, "radius": 2}, {}),
    ):
        nebula = Nebula(
            db.connection,
            db.meta,
            NebulaConfig(epsilon=0.6).with_updates(**config_updates),
            aliases=db.aliases,
        )
        workload = generate_workload(db, WorkloadSpec(seed=61))
        annotations = workload.group(100) + workload.group(500)
        started = time.perf_counter()
        tasks_created = 0
        for annotation in annotations:
            result = nebula.insert_annotation(
                annotation.text,
                attach_to=annotation.focal(1),
                **kwargs,
            )
            tasks_created += len(result.tasks)
        elapsed = time.perf_counter() - started
        rate = len(annotations) / elapsed
        rates[label] = rate
        rows.append(
            [label, len(annotations), elapsed * 1e3 / len(annotations),
             rate, tasks_created]
        )
    report(
        "throughput",
        table(
            ["strategy", "annotations", "ms_per_annotation",
             "annotations_per_sec", "tasks"],
            rows,
        ),
    )

    # Sanity: every strategy sustains a usable interactive rate.
    assert all(rate > 10 for rate in rates.values())

    nebula = Nebula(db.connection, db.meta, NebulaConfig(epsilon=0.6),
                    aliases=db.aliases)
    workload = generate_workload(db, WorkloadSpec(seed=67))
    samples = iter(workload.annotations * 50)

    def insert_one():
        annotation = next(samples)
        nebula.insert_annotation(annotation.text, attach_to=annotation.focal(1))

    benchmark(insert_one)


# ----------------------------------------------------------------------
# Batched ingestion (sustained-traffic regime)
# ----------------------------------------------------------------------


def _fresh_ingestion_world(**config_updates):
    """A fresh database + engine + request list, deterministic per mode.

    Full mode replays eight workload seeds (480 annotations) over the
    benchmark suite's D_small-scale world — sustained traffic, where the
    cross-annotation vocabulary saturates and batching pays; smoke mode
    keeps one seed on a small world.
    """
    spec = SMOKE_SPEC if BENCH_SMOKE else FULL_SPEC
    seeds = (61,) if BENCH_SMOKE else tuple(range(61, 69))
    db = build_database(spec)
    nebula = Nebula(
        db.connection,
        db.meta,
        NebulaConfig(epsilon=0.6).with_updates(**config_updates),
        aliases=db.aliases,
    )
    requests = []
    for seed in seeds:
        workload = generate_workload(db, WorkloadSpec(seed=seed))
        requests.extend(
            AnnotationRequest.build(a.text, a.focal(1))
            for a in workload.annotations
        )
    return nebula, requests


@pytest.mark.benchmark(group="throughput")
def test_batched_ingestion_speedup(benchmark):
    """Batched vs per-annotation ingestion on identical fresh worlds.

    Four strategies over the same workload: the pre-optimization pipeline
    (an ``insert_annotation`` loop with all memoization disabled — every
    call re-resolves its keyword mappings, exactly the baseline this
    ISSUE set out to beat), the same loop with the analysis caches, the
    cached loop with per-annotation shared execution (Fig. 13), and one
    ``insert_annotations`` batch (cross-annotation sharing).
    Results are proven identical by the equivalence test suite; here only
    the rates and sharing ratios are measured.
    """
    rows = []
    rates = {}
    hit_ratios = {}

    def timed(label, run, hit_ratio=None):
        # Collector pauses land arbitrarily across strategies (the heap is
        # already warm from earlier benchmarks); keep them out of the
        # timed sections so the rates compare ingestion work only.
        gc.collect()
        gc.disable()
        try:
            started = time.perf_counter()
            run()
            elapsed = time.perf_counter() - started
        finally:
            gc.enable()
        count = len(requests)
        rates[label] = count / elapsed
        if hit_ratio is not None:
            hit_ratios[label] = hit_ratio()
        rows.append([label, count, elapsed * 1e3 / count, rates[label],
                     hit_ratios.get(label, "")])

    # The per-annotation baseline of the speedup claim: the pipeline as
    # it stood before this optimization pass — no keyword-analysis memo,
    # no estimator memo, isolated Stage-2 SQL.
    nebula, requests = _fresh_ingestion_world(analysis_cache_size=0)
    nebula.meta.configure_cache(0)
    timed("per-annotation", lambda: [
        nebula.insert_annotation(r.text, attach_to=r.focal, use_spreading=False)
        for r in requests
    ])

    nebula, requests = _fresh_ingestion_world()
    timed("per-annotation+cache", lambda: [
        nebula.insert_annotation(r.text, attach_to=r.focal, use_spreading=False)
        for r in requests
    ])

    nebula, requests = _fresh_ingestion_world(shared_execution=True)
    ratios = []

    def shared_loop():
        for r in requests:
            nebula.insert_annotation(
                r.text, attach_to=r.focal, use_spreading=False
            )
            ratios.append(nebula.executor.last_stats.hit_ratio)

    timed("per-annotation+cache+shared", shared_loop,
          hit_ratio=lambda: sum(ratios) / len(ratios))

    nebula, requests = _fresh_ingestion_world()
    timed(
        "batched",
        lambda: nebula.insert_annotations(requests, use_spreading=False),
        hit_ratio=lambda: nebula.executor.last_stats.hit_ratio,
    )

    speedup = rates["batched"] / rates["per-annotation"]
    report(
        "batched_throughput",
        table(
            ["strategy", "annotations", "ms_per_annotation",
             "annotations_per_sec", "hit_ratio"],
            rows,
        ) + [f"speedup (batched / per-annotation): {speedup:.2f}x"],
    )
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, "BENCH_throughput.json"), "w") as handle:
        json.dump(
            {
                "mode": "smoke" if BENCH_SMOKE else "full",
                "annotations": len(requests),
                "annotations_per_sec": rates,
                "hit_ratio": hit_ratios,
                "speedup": speedup,
            },
            handle,
            indent=2,
            sort_keys=True,
        )

    # Pooling every annotation's SQL shares strictly more than the
    # per-annotation pass can (batch-wide vs within-annotation Fig. 13).
    assert hit_ratios["batched"] > hit_ratios["per-annotation+cache+shared"]
    assert speedup >= (1.2 if BENCH_SMOKE else 2.0)

    nebula, requests = _fresh_ingestion_world()
    chunks = iter([requests[i:i + 10] for i in range(0, len(requests), 10)] * 50)

    def insert_chunk():
        nebula.insert_annotations(next(chunks), use_spreading=False)

    benchmark(insert_chunk)
