"""E11 — §8.2 text: assessment of the Naive approach on L^50.

The paper reports {F_N, F_P, M_F, M_H} = {0, 0.93, 318427, 1.6e-5} for a
single L^50 annotation: the naive search returns a database-scale answer
whose verification would require examining hundreds of thousands of
candidates for a handful of acceptances — "clear evidence that Nebula
enables a new functionality ... that is not possible otherwise".

Shape reproduced: M_F for Naive is thousands of times Nebula's, M_H is
minuscule, and F_P (with everything in the pending band auto-judged) is
near 1.
"""

import pytest

from repro.core.assessment import assess, average_assessments
from repro.search.naive import NaiveSearch

from conftest import make_nebula, report, table


@pytest.mark.benchmark(group="naive")
def test_naive_assessment(benchmark, dataset_large):
    db, workload = dataset_large
    annotations = workload.group(50)
    naive = NaiveSearch(db.connection)
    nebula = make_nebula(db, 0.6)

    lower, upper = 0.32, 0.86
    naive_assessments = []
    nebula_assessments = []
    for annotation in annotations:
        focal = annotation.focal(1)
        ideal = set(annotation.ideal_refs)
        naive_result = naive.search(annotation.text)
        naive_assessments.append(
            assess(naive_result.tuples, ideal, focal, lower, upper)
        )
        result = nebula.analyze(annotation.text, focal=focal)
        nebula_assessments.append(
            assess(result.candidates, ideal, focal, lower, upper)
        )
    naive_avg = average_assessments(naive_assessments)
    nebula_avg = average_assessments(nebula_assessments)
    rows = [
        ["Naive", naive_avg.f_n, naive_avg.f_p, naive_avg.m_f, naive_avg.m_h],
        ["Nebula-0.6", nebula_avg.f_n, nebula_avg.f_p,
         nebula_avg.m_f, nebula_avg.m_h],
    ]
    report(
        "naive_assessment",
        table(["approach", "F_N", "F_P", "M_F", "M_H"], rows),
    )

    # The naive verification burden is orders of magnitude larger...
    assert naive_avg.m_f > 100 * max(1, nebula_avg.m_f)
    # ...and almost all of it is wasted effort.
    assert naive_avg.m_h < 0.02

    sample = annotations[0]
    benchmark(lambda: naive.search(sample.text))
