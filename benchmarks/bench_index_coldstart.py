"""Cold-start cost of the persisted search index (rebuild vs load).

Not a paper figure: the operational companion to the EMBANKS-style
persistence layer (``repro.search.persist``).  The in-memory inverted
index is rebuilt from a full scan of every searchable column on every
engine open; a valid persisted image is adopted after O(#columns) stamp
probes instead.  This benchmark measures both paths on the same world at
~10x and ~100x the figure-dataset size, then checks that the lazy
page-cached index does not regress steady-state Stage-1/Stage-2 latency
(``Nebula.analyze``) against the in-memory build.

Exports the machine-readable summary CI tracks to
``benchmarks/results/BENCH_index.json``.  Set ``BENCH_SMOKE=1`` for the
small CI world with relaxed assertions.

Honors ``NEBULA_BACKEND``; defaults to the shared-cache memory engine.

Run::

    PYTHONPATH=src python -m pytest benchmarks/bench_index_coldstart.py -q
"""

import json
import os
import tempfile
import time

from repro import (
    BioDatabaseSpec,
    Nebula,
    NebulaConfig,
    generate_bio_database,
    get_backend,
)

from conftest import RESULTS_DIR, report, table

BENCH_SMOKE = os.environ.get("BENCH_SMOKE") == "1"

#: The tests' figure-dataset shape (tests/conftest.py SMALL_SPEC ratio);
#: gene count stays below 10,000 at 100x to keep JW#### identifiers.
FIGURE_SPEC = BioDatabaseSpec(genes=96, proteins=56, publications=300, seed=13)

SCALES = {"10x": 2, "100x": 4} if BENCH_SMOKE else {"10x": 10, "100x": 100}

#: Stage-1/Stage-2 probe annotations per engine configuration.
PROBES = 4 if BENCH_SMOKE else 12

#: Acceptance floor for persisted-load vs rebuild on the 10x world.
MIN_SPEEDUP = 2.0 if BENCH_SMOKE else 5.0


def _build_world(factor):
    engine = os.environ.get("NEBULA_BACKEND", "sqlite-memory")
    path = None
    if engine == "sqlite-file":
        handle = tempfile.NamedTemporaryFile(
            suffix=".db", prefix="nebula-bench-index-", delete=False
        )
        handle.close()
        path = handle.name
    backend = get_backend(engine, path=path)
    db = generate_bio_database(FIGURE_SPEC.scaled(factor), backend=backend)
    return backend, path, db


def _analyze_ms(nebula, db):
    """Mean Stage-1 + Stage-2 latency over PROBES analyze() passes."""
    texts = [
        f"this gene interacts with gene {db.genes[(7 * i) % len(db.genes)].gid}"
        for i in range(PROBES)
    ]
    nebula.analyze(texts[0])  # warm the analysis cache's cold misses
    started = time.perf_counter()
    for text in texts:
        nebula.analyze(text)
    return (time.perf_counter() - started) * 1e3 / PROBES


def _measure_scale(factor):
    backend, path, db = _build_world(factor)
    try:
        config = NebulaConfig(epsilon=0.6)
        # First open: no persisted image exists, so the engine scans
        # every searchable column and persists the postings.
        cold = Nebula(db.connection, db.meta, config, aliases=db.aliases)
        assert cold.index_source == "rebuilt"
        rebuild_seconds = cold.index_cold_start_seconds
        description = cold.engine.index.describe()
        cold.close()
        # Second open: the stamps match, so the image is adopted after
        # O(#columns) probes without reading a single posting.
        warm = Nebula(db.connection, db.meta, config, aliases=db.aliases)
        assert warm.index_source == "loaded"
        loaded_seconds = warm.index_cold_start_seconds
        persistent_ms = _analyze_ms(warm, db)
        warm.close()
        memory = Nebula(
            db.connection,
            db.meta,
            config.with_updates(persist_index=False),
            aliases=db.aliases,
        )
        assert memory.index_source == "memory"
        memory_ms = _analyze_ms(memory, db)
        memory.close()
        return {
            "factor": factor,
            "genes": len(db.genes),
            "publications": FIGURE_SPEC.publications * factor,
            "tokens": description["tokens"],
            "postings": description["postings"],
            "rebuild_seconds": rebuild_seconds,
            "loaded_seconds": loaded_seconds,
            "speedup": rebuild_seconds / loaded_seconds
            if loaded_seconds > 0
            else float("inf"),
            "stage12_persistent_ms": persistent_ms,
            "stage12_memory_ms": memory_ms,
        }
    finally:
        backend.close()
        if path is not None and os.path.exists(path):
            os.unlink(path)


def test_index_cold_start():
    results = {name: _measure_scale(factor) for name, factor in SCALES.items()}

    rows = [
        [
            name,
            r["postings"],
            r["rebuild_seconds"] * 1e3,
            r["loaded_seconds"] * 1e3,
            f"{r['speedup']:.1f}x",
            r["stage12_memory_ms"],
            r["stage12_persistent_ms"],
        ]
        for name, r in results.items()
    ]
    report(
        "index_coldstart",
        table(
            [
                "scale",
                "postings",
                "rebuild_ms",
                "load_ms",
                "speedup",
                "stage12_mem_ms",
                "stage12_disk_ms",
            ],
            rows,
        ),
    )
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, "BENCH_index.json"), "w") as handle:
        json.dump(
            {
                "mode": "smoke" if BENCH_SMOKE else "full",
                "backend": os.environ.get("NEBULA_BACKEND", "sqlite-memory"),
                "scales": results,
            },
            handle,
            indent=2,
            sort_keys=True,
        )

    for name, r in results.items():
        # The persisted image must actually shortcut the scan ...
        assert r["loaded_seconds"] < r["rebuild_seconds"], name
        # ... and the lazy page-cached index must stay in the same
        # latency regime as the in-memory build for Stages 1-2 (4x is a
        # generous noise bound; the steady-state numbers track closely).
        assert r["stage12_persistent_ms"] < max(
            r["stage12_memory_ms"] * 4.0, r["stage12_memory_ms"] + 20.0
        ), name
    assert results["10x"]["speedup"] >= MIN_SPEEDUP
