"""E5 — Figure 12(b): number of produced candidate tuples.

Paper shape: Naive returns a significant portion of the database even for
the smallest annotations (hundreds of thousands at their scale); Nebula's
counts stay near the true reference counts and do not grow proportionally
with the database (most probes hit unique-valued columns).
"""

import pytest

from repro.search.naive import NaiveSearch

from conftest import make_nebula, report, table

SIZE_GROUPS = (50, 100, 500, 1000)


@pytest.mark.benchmark(group="fig12b")
def test_fig12b_candidate_tuples(benchmark, all_datasets):
    rows = []
    naive_avg = {}
    nebula_avg = {}
    for scale, (db, workload) in all_datasets.items():
        naive = NaiveSearch(db.connection)
        annotations_50 = workload.group(50)
        counts = [len(naive.search(a.text).tuples) for a in annotations_50]
        naive_avg[scale] = sum(counts) / len(counts)
        rows.append([scale, "L^50", "Naive", naive_avg[scale]])
        for epsilon in (0.6, 0.8):
            nebula = make_nebula(db, epsilon)
            for size in SIZE_GROUPS:
                annotations = workload.group(size)
                produced = [
                    len(nebula.analyze(a.text).candidates) for a in annotations
                ]
                nebula_avg[(scale, epsilon, size)] = sum(produced) / len(produced)
                rows.append(
                    [scale, f"L^{size}", f"Nebula-{epsilon}",
                     nebula_avg[(scale, epsilon, size)]]
                )
    report(
        "fig12b_candidate_tuples",
        table(["dataset", "set", "approach", "avg_tuples"], rows),
    )

    for scale in all_datasets:
        # Naive floods: at least 20x more candidates than Nebula-0.6.
        assert naive_avg[scale] > 20 * max(1.0, nebula_avg[(scale, 0.6, 50)])
    # Nebula counts grow sub-linearly with database size (8x data must not
    # mean 8x candidates).
    small = nebula_avg[("small", 0.6, 1000)]
    large = nebula_avg[("large", 0.6, 1000)]
    assert large < 8 * max(1.0, small)

    db, workload = all_datasets["large"]
    naive = NaiveSearch(db.connection)
    sample = workload.group(50)[0]
    benchmark(lambda: naive.search(sample.text))
