"""E15 — §5.2.2/§5.2.3 ablation: context adjustment & backward search.

Three Stage-1 variants on the L^500 set:

* the full pipeline;
* without the context-based weight adjustment (mappings keep their raw
  p/d estimates);
* without the backward concept search (list-tail references lose their
  concept partner).

Measured: query-level FP/FN vs the oracle, plus end recall of the missing
attachments.  Expected shapes: disabling backward search introduces
false-negative queries (the list case is common in the generator, as in
human writing per the paper); disabling context adjustment flattens the
weight separation between true and junk queries.
"""

import pytest

from repro.core.query_generation import generate_queries

from conftest import make_nebula, query_quality, report, table

VARIANTS = [
    ("full", {}),
    ("no-context-adjust", {"context_adjustment": False}),
    ("no-backward", {"backward_concept_search": False}),
]


@pytest.mark.benchmark(group="ablation")
def test_ablation_stage1(benchmark, dataset_large):
    db, workload = dataset_large
    annotations = workload.group(500)

    rows = []
    fn_rates = {}
    weight_gaps = {}
    for label, overrides in VARIANTS:
        nebula = make_nebula(db, 0.6, **overrides)
        tp_total = fp_total = missed_total = refs_total = 0
        true_weights = []
        junk_weights = []
        for annotation in annotations:
            generation = generate_queries(annotation.text, nebula.meta, nebula.config)
            tp, fp, missed = query_quality(annotation, generation)
            tp_total += tp
            fp_total += fp
            missed_total += missed
            refs_total += len(annotation.ideal_keywords)
            ideal = annotation.ideal_keywords
            for query in generation.queries:
                normalized = {k.casefold() for k in query.keywords}
                if normalized & set(ideal):
                    true_weights.append(query.weight)
                else:
                    junk_weights.append(query.weight)
        fn_rates[label] = missed_total / refs_total
        gap = (
            (sum(true_weights) / len(true_weights))
            - (sum(junk_weights) / len(junk_weights))
            if true_weights and junk_weights
            else float("nan")
        )
        weight_gaps[label] = gap
        rows.append(
            [label, tp_total + fp_total,
             fp_total / max(1, tp_total + fp_total),
             fn_rates[label], gap]
        )
    report(
        "ablation_stage1",
        table(["variant", "queries", "FP_pct", "FN_pct", "true_junk_weight_gap"],
              rows),
    )

    # Backward search is load-bearing: removing it loses references.
    assert fn_rates["no-backward"] > fn_rates["full"]
    # Context adjustment separates true queries from junk by weight.
    if weight_gaps["full"] == weight_gaps["full"]:  # not NaN
        assert weight_gaps["full"] >= weight_gaps["no-context-adjust"] - 1e-9

    nebula = make_nebula(db, 0.6)
    sample = annotations[0]
    benchmark(generate_queries, sample.text, nebula.meta, nebula.config)
