"""Shared benchmark fixtures and reporting helpers.

The benchmark suite regenerates every table and figure of the paper's
Section 8 (see DESIGN.md's experiment index).  Three dataset scales mirror
``D_small`` / ``D_mid`` / ``D_large`` at laptop size (1x / 4x / 8x of the
base spec — same ratio structure as the paper's 2 / 9 / 18 GB extracts).

Every benchmark both:

* exercises a representative operation under ``pytest-benchmark`` (so
  ``--benchmark-only`` reports wall-clock comparisons), and
* writes the paper-style table into ``benchmarks/results/<name>.txt``
  (and stdout), which is what EXPERIMENTS.md is compiled from.
"""

from __future__ import annotations

import json
import os
import sys
import tempfile
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import pytest

from repro import (
    Nebula,
    NebulaConfig,
    generate_bio_database,
    generate_workload,
    get_backend,
)
from repro.core.bounds import TrainingSample
from repro.datagen.biodb import BioDatabase, BioDatabaseSpec
from repro.datagen.workload import AnnotationWorkload, WorkloadSpec
from repro.observability import get_metrics
from repro.utils.tokenize import normalize_word

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

# Base spec scaled 1x / 4x / 8x for D_small / D_mid / D_large — the same
# ratio structure as the paper's 2 / 9 / 18 GB extracts.  The searchable
# Gene/Protein tables are sized so full-database scans dominate execution
# at the large scale (the regime Figures 12-14 live in); gene count stays
# below 10,000 to keep the JW#### identifier scheme intact.
BASE_SPEC = BioDatabaseSpec(
    genes=1000, proteins=600, publications=3000, community_size=8
)
SCALES = {"small": 1, "mid": 4, "large": 8}

EPSILONS = (0.4, 0.6, 0.8)
SIZE_GROUPS = (50, 100, 500, 1000)


def report(name: str, lines: Iterable[str]) -> str:
    """Write a result table to benchmarks/results/<name>.txt and stdout."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    text = "\n".join(lines) + "\n"
    path = os.path.join(RESULTS_DIR, f"{name}.txt")
    with open(path, "w") as handle:
        handle.write(text)
    sys.stdout.write(f"\n=== {name} ===\n{text}")
    return path


def table(header: Sequence[str], rows: Iterable[Sequence[object]]) -> List[str]:
    """Render an aligned text table."""
    rendered_rows = [[_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in header]
    for row in rendered_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def line(cells):
        return "  ".join(c.ljust(widths[i]) for i, c in enumerate(cells))
    out = [line(header), line(["-" * w for w in widths])]
    out.extend(line(row) for row in rendered_rows)
    return out


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4f}"
    return str(value)


def dump_metrics(name: str) -> str:
    """Write the process metrics snapshot to benchmarks/results/<name>.json.

    Benchmarks call this after their measured section so the counters the
    pipeline accumulated (queries per type, SQL executed, sharing ratios)
    land next to the paper-style tables; EXPERIMENTS.md cross-checks them
    against Figures 11(a) / 12(a) / 13.
    """
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.json")
    with open(path, "w") as handle:
        json.dump(get_metrics().snapshot(), handle, indent=2, sort_keys=True)
    return path


@pytest.fixture(scope="session", autouse=True)
def metrics_session_snapshot():
    """Persist the whole benchmark session's metrics on teardown."""
    yield
    dump_metrics("metrics_session")


# ----------------------------------------------------------------------
# Datasets (session scope: built once per benchmark run)
# ----------------------------------------------------------------------


#: Backends created for NEBULA_BACKEND-pinned datasets, closed (with
#: their throwaway database files) at session end.
_SESSION_BACKENDS: List[Tuple[object, Optional[str]]] = []


def build_database(spec: BioDatabaseSpec) -> BioDatabase:
    """Generate ``spec`` on the engine pinned by ``NEBULA_BACKEND``.

    Unset (the default benchmarking configuration), the world lives in a
    private in-memory database; the CI bench-smoke job pins an engine so
    the measured pipeline runs through the storage backend layer.
    """
    pinned = os.environ.get("NEBULA_BACKEND")
    if not pinned:
        return generate_bio_database(spec)
    path: Optional[str] = None
    if pinned == "sqlite-file":
        handle = tempfile.NamedTemporaryFile(
            suffix=".db", prefix="nebula-bench-", delete=False
        )
        handle.close()
        path = handle.name
    backend = get_backend(pinned, path=path)
    _SESSION_BACKENDS.append((backend, path))
    return generate_bio_database(spec, backend=backend)


def pytest_sessionfinish(session, exitstatus):
    for backend, path in _SESSION_BACKENDS:
        backend.close()  # type: ignore[attr-defined]
        if path is not None and os.path.exists(path):
            os.unlink(path)
    _SESSION_BACKENDS.clear()


def _build(scale_name: str) -> Tuple[BioDatabase, AnnotationWorkload]:
    db = build_database(BASE_SPEC.scaled(SCALES[scale_name]))
    workload = generate_workload(db, WorkloadSpec(seed=29))
    return db, workload


@pytest.fixture(scope="session")
def dataset_small():
    return _build("small")


@pytest.fixture(scope="session")
def dataset_mid():
    return _build("mid")


@pytest.fixture(scope="session")
def dataset_large():
    return _build("large")


@pytest.fixture(scope="session")
def all_datasets(dataset_small, dataset_mid, dataset_large):
    return {"small": dataset_small, "mid": dataset_mid, "large": dataset_large}


# ----------------------------------------------------------------------
# Engines
# ----------------------------------------------------------------------

_ENGINE_CACHE: Dict[Tuple[int, float, Tuple], Nebula] = {}


def make_nebula(db: BioDatabase, epsilon: float = 0.6, **config_updates) -> Nebula:
    """Engine over ``db`` (cached per db + config across benches)."""
    key = (id(db), epsilon, tuple(sorted(config_updates.items())))
    if key not in _ENGINE_CACHE:
        _ENGINE_CACHE[key] = Nebula(
            db.connection,
            db.meta,
            NebulaConfig(epsilon=epsilon).with_updates(**config_updates),
            aliases=db.aliases,
        )
    return _ENGINE_CACHE[key]


# ----------------------------------------------------------------------
# Oracle helpers
# ----------------------------------------------------------------------


def query_quality(annotation, generation) -> Tuple[int, int, int]:
    """(true-positive queries, false-positive queries, missed references).

    A generated query is a true-positive when one of its keywords is one of
    the annotation's embedded-reference keywords; a reference is missed
    when no query covers its keyword — the mechanical version of the
    paper's "manual investigation" for Figure 11(c).
    """
    ideal = set(annotation.ideal_keywords)
    tp = fp = 0
    covered = set()
    for query in generation.queries:
        keywords = {normalize_word(k) for k in query.keywords}
        hit = keywords & ideal
        if hit:
            tp += 1
            covered |= hit
        else:
            fp += 1
    missed = len(ideal - covered)
    return tp, fp, missed


def training_samples(
    db: BioDatabase,
    nebula: Nebula,
    count: int = 100,
    delta: int = 1,
    seed: int = 5,
) -> List[TrainingSample]:
    """Build BoundsSetting training samples from the database's own
    publications (the paper's D_Training: annotations with known complete
    attachments, distorted to ``delta`` surviving links)."""
    from repro.utils.rng import make_rng

    rng = make_rng(seed, "training")
    truths = list(db.truths.values())
    rng.shuffle(truths)
    samples: List[TrainingSample] = []
    for truth in truths:
        if len(samples) >= count:
            break
        if len(truth.refs) <= delta:
            continue
        focal = tuple(sorted(rng.sample(list(truth.refs), delta)))
        annotation = db.manager.annotation(truth.annotation_id)
        report = nebula.analyze(annotation.content, focal=focal)
        samples.append(
            TrainingSample(
                candidates=tuple(report.candidates),
                ideal=frozenset(truth.refs),
                focal=focal,
            )
        )
    return samples
