"""E6 — Figure 13: multi-query shared execution.

Paper shape: enabling shared execution among the SQL queries generated
from one annotation yields ~40-50% execution-time speedup while producing
exactly the same output tuples.  Per the paper, the measured quantity is
the *query execution* time (Stage 2), not the annotation analysis.
"""

import pytest

from conftest import make_nebula, report, table

SIZE_GROUPS = (100, 500, 1000)
REPEATS = 5


def _execution_time(nebula, annotations, shared):
    """Average per-annotation Stage-2 time; answers collected for equality."""
    elapsed = 0.0
    refs = []
    for _ in range(REPEATS):
        elapsed = 0.0
        refs = []
        for annotation in annotations:
            result = nebula.analyze(annotation.text, shared=shared)
            elapsed += result.identified.elapsed
            refs.append(tuple(result.identified.refs))
    return elapsed / len(annotations), refs


@pytest.mark.benchmark(group="fig13")
@pytest.mark.parametrize("epsilon", [0.6, 0.8])
def test_fig13_shared_execution(benchmark, dataset_large, epsilon):
    db, workload = dataset_large
    nebula = make_nebula(db, epsilon)
    rows = []
    savings = []
    for size in SIZE_GROUPS:
        annotations = workload.group(size)
        isolated_time, isolated_refs = _execution_time(nebula, annotations, False)
        shared_time, shared_refs = _execution_time(nebula, annotations, True)
        # Identical answers, per the paper.
        assert isolated_refs == shared_refs
        saved = 1.0 - shared_time / isolated_time if isolated_time else 0.0
        savings.append(saved)
        rows.append(
            [f"Nebula-{epsilon}", f"L^{size}",
             isolated_time * 1e3, shared_time * 1e3, saved]
        )
    report(
        f"fig13_shared_execution_eps{epsilon}",
        table(
            ["config", "set", "isolated_ms", "shared_ms", "time_saved"],
            rows,
        ),
    )
    # Sharing must produce a solid speedup on multi-reference annotations.
    assert max(savings) > 0.25

    sample = workload.group(500)[0]
    benchmark(lambda: nebula.analyze(sample.text, shared=True))
