"""E7/E8 — Figure 14(a, b): approximate focal-based spreading search.

Setup per the paper: D_large, ε = 0.6, the L^100 set, no shared
execution.  The distortion degree Δ (focal links kept) varies over the
x-axis; each Δ runs under several radii K.  The measured quantity is the
Stage-2 execution time (including building the K-hop mini database).

Paper shapes reproduced:

* spreading is several times faster than the basic full search, and the
  advantage *grows with database size* (the paper's 18 GB setting shows
  ~15x; at laptop scale the gap is smaller but widens monotonically);
* time and candidate counts grow with Δ and K;
* spreading returns no more candidates than the full search.
"""

import time

import pytest

from conftest import make_nebula, report, table

DELTAS = (1, 2, 3)
RADII = (1, 2, 3, 4)
REPEATS = 4


def _measure(nebula, annotations, delta, use_spreading, radius=None):
    """(avg Stage-2 seconds incl. scope building, avg candidate count).

    The minimum over the repeats is reported — the standard way to damp
    scheduler noise in micro-benchmarks.
    """
    best = float("inf")
    tuples = 0
    for _ in range(REPEATS):
        elapsed = 0.0
        tuples = 0
        for annotation in annotations:
            focal = annotation.focal(delta)
            started = time.perf_counter()
            result = nebula.analyze(
                annotation.text,
                focal=focal,
                use_spreading=use_spreading,
                radius=radius,
                shared=False,
            )
            # Stage-2 cost: scope building + execution. Subtract Stage 1.
            elapsed += (time.perf_counter() - started) - result.generation.total_time
            tuples += len(result.candidates)
        best = min(best, elapsed)
    return best / len(annotations), tuples / len(annotations)


@pytest.mark.benchmark(group="fig14")
def test_fig14_spreading_matrix(benchmark, dataset_large):
    db, workload = dataset_large
    nebula = make_nebula(db, 0.6)
    annotations = workload.group(100)

    rows = []
    full_time, full_tuples = _measure(nebula, annotations, 2, use_spreading=False)
    rows.append(["full-search", "-", full_time * 1e3, full_tuples, 1.0])
    spread = {}
    for delta in DELTAS:
        for radius in RADII:
            avg_time, avg_tuples = _measure(
                nebula, annotations, delta, use_spreading=True, radius=radius
            )
            spread[(delta, radius)] = (avg_time, avg_tuples)
            rows.append(
                [f"delta={delta}", f"K={radius}", avg_time * 1e3, avg_tuples,
                 full_time / avg_time if avg_time else float("inf")]
            )
    report(
        "fig14_spreading",
        table(
            ["distortion", "radius", "avg_time_ms", "avg_tuples", "speedup_vs_full"],
            rows,
        ),
    )

    # Spreading beats the full search at the profile-relevant radii; at
    # the widest radius the scope approaches a sizable graph fraction and
    # the advantage flattens (it returns at larger database scales — see
    # test_fig14_speedup_grows_with_scale).
    for (delta, radius), (avg_time, _) in spread.items():
        if radius <= 2:
            assert avg_time < full_time
        else:
            assert avg_time < full_time * 1.4
    # Candidate counts never exceed the full search and grow weakly with K.
    assert all(tuples <= full_tuples for _, tuples in spread.values())
    for delta in DELTAS:
        counts = [spread[(delta, radius)][1] for radius in RADII]
        assert counts == sorted(counts)

    sample = annotations[0]
    focal = sample.focal(2)
    benchmark(
        lambda: nebula.analyze(
            sample.text, focal=focal, use_spreading=True, radius=3, shared=False
        )
    )


@pytest.mark.benchmark(group="fig14")
def test_fig14_speedup_grows_with_scale(benchmark, all_datasets):
    """The spreading advantage widens as the database grows — the scaling
    argument behind the paper's 15x at 18 GB."""
    rows = []
    speedups = {}
    for scale in ("small", "mid", "large"):
        db, workload = all_datasets[scale]
        nebula = make_nebula(db, 0.6)
        annotations = workload.group(100)
        full_time, _ = _measure(nebula, annotations, 2, use_spreading=False)
        spread_time, _ = _measure(
            nebula, annotations, 2, use_spreading=True, radius=2
        )
        speedups[scale] = full_time / spread_time if spread_time else float("inf")
        rows.append(
            [scale, full_time * 1e3, spread_time * 1e3, speedups[scale]]
        )
    report(
        "fig14_speedup_by_scale",
        table(["dataset", "full_ms", "spreading_ms", "speedup"], rows),
    )
    assert speedups["large"] > speedups["small"]
    assert speedups["large"] > 1.2

    db, workload = all_datasets["large"]
    nebula = make_nebula(db, 0.6)
    sample = workload.group(100)[0]
    focal = sample.focal(2)
    benchmark(
        lambda: nebula.analyze(
            sample.text, focal=focal, use_spreading=True, radius=3, shared=False
        )
    )
